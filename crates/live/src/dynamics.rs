//! Best-response re-delegation dynamics over a [`LiveEngine`].
//!
//! The rest of the workspace treats a delegation graph as the output of a
//! *one-shot* mechanism. This module iterates it: each round, every voter
//! computes the utility-maximizing delegation move — keep the current
//! action, switch to an approved neighbour, or reclaim the vote — against
//! an **immutable snapshot** of the previous round, and the round is
//! applied as one [`LiveEngine`] batch in canonical voter order. The loop
//! runs to a fixpoint (no voter wants to move), a detected cycle (a
//! previously-seen action state recurs), or a round cap.
//!
//! # Utility: one-step deviation under the voter's local view
//!
//! A voter's utility for a candidate move is the probability that the
//! election decides correctly if *only that voter* deviates from the
//! snapshot: the voter's carried subtree weight `w` is moved from its
//! current sink to the candidate's snapshot sink, and the weighted
//! normal-approximation tally
//!
//! ```text
//! P = 1 − Φ((T/2 − μ)/σ),   μ = Σ wₛ pₛ,   σ² = Σ wₛ² pₛ(1−pₛ)
//! ```
//!
//! is re-evaluated in `O(1)` from the snapshot sums (`T` = tallied
//! ballots; `σ = 0` degenerates to `P = [μ > T/2]`). Because the utility
//! depends on sink *weights*, simultaneous rounds can genuinely cycle:
//! two voters piling onto the same heavy sink can overshoot and both
//! regret the move next round — the anti-coordination pattern of
//! iterative-delegation games (Escoffier–Gilbert–Pass-Lanneau).
//!
//! # Determinism contract
//!
//! Every round is a pure function of the previous action state: there is
//! no RNG anywhere in the loop, candidate moves are evaluated against the
//! immutable [`RoundSnapshot`], and the round is applied in canonical
//! (ascending) voter order, so a trajectory is bit-for-bit replayable
//! from its initial state. The conformance oracle in `ld-testkit`
//! re-implements the *exact* arithmetic of [`deviation_probability`]
//! against the naive `O(n²)` resolver, so the operation order documented
//! there is normative — do not reassociate it.

use crate::{LiveEngine, RejectReason, Update};
use ld_core::delegation::{Action, DelegationGraph};
use ld_prob::normal::std_normal_cdf;

/// How a voter scores candidate moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveRule {
    /// Maximize the one-step-deviation decision probability (honest
    /// best response).
    BestResponse,
    /// Coalition manipulator: minimize the one-step-deviation tally
    /// variance `σ²` — re-delegate toward low-variance sinks, the
    /// paper's titular manipulation.
    VarianceSeeking,
    /// Never move (abstainers, and voters pinned by an experiment).
    Frozen,
}

/// How score ties between candidate moves are broken.
///
/// `Canonical` is the production rule; `SkewedForTests` is the deliberate
/// bug injected by `--mutate br-tiebreak` so CI can prove the
/// `dynamics-oracle` differential actually detects a wrong tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreakRule {
    /// Keep the current action, else prefer voting directly, else the
    /// lowest-index target (candidates scanned in ascending order; a
    /// later candidate must be *strictly* better to win).
    Canonical,
    /// Mutant: approved targets are scanned in descending index order,
    /// so score ties resolve to the highest-index target instead.
    SkewedForTests,
}

/// Immutable view of one round's starting state: the action vector, its
/// resolution, and the precomputed tally sums every candidate evaluation
/// deltas against.
#[derive(Debug, Clone)]
pub struct RoundSnapshot {
    /// Action per voter.
    pub actions: Vec<Action>,
    /// Sink each voter's ballot reaches (`None` = discarded).
    pub sink_of: Vec<Option<usize>>,
    /// Ballots carried by each voter: itself plus every voter whose
    /// delegation chain passes through it. This is what a one-step
    /// deviation moves; for a sink it equals the resolution's tallied
    /// weight (discarded chains never reach a sink).
    pub weight: Vec<usize>,
    /// Ballots reaching a sink (`n` − discarded).
    pub tallied: usize,
    /// `μ = Σ wₛ pₛ` over sinks, accumulated in ascending sink order.
    pub mu: f64,
    /// `σ² = Σ wₛ² pₛ(1−pₛ)` over sinks, same order.
    pub var: f64,
}

impl RoundSnapshot {
    /// Snapshots a live engine (the engine already maintains the
    /// resolution; the carried weights and tally sums are recomputed in
    /// canonical order, so they are bit-identical to
    /// [`RoundSnapshot::from_parts`] of the same action vector).
    pub fn from_engine(engine: &LiveEngine) -> RoundSnapshot {
        Self::from_resolution(
            engine.actions().to_vec(),
            engine.sink_assignments().to_vec(),
            engine.tallied(),
            engine.competences(),
        )
    }

    /// Snapshots a bare action vector by resolving it from scratch.
    ///
    /// # Errors
    ///
    /// Returns the resolver's message for cyclic or out-of-range graphs.
    pub fn from_parts(actions: &[Action], ps: &[f64]) -> Result<RoundSnapshot, String> {
        let dg = DelegationGraph::new(actions.to_vec());
        dg.validate_targets().map_err(|e| e.to_string())?;
        let res = dg.resolve().map_err(|e| e.to_string())?;
        Ok(Self::from_resolution(
            actions.to_vec(),
            res.sink_assignments().to_vec(),
            res.tallied(),
            ps,
        ))
    }

    fn from_resolution(
        actions: Vec<Action>,
        sink_of: Vec<Option<usize>>,
        tallied: usize,
        ps: &[f64],
    ) -> RoundSnapshot {
        let n = actions.len();
        // Carried weight per voter (subtree size in the delegation
        // forest), by a Kahn pass over the single-target edges. The
        // result is a sum of integers, so it is independent of the
        // processing order.
        let mut weight = vec![1usize; n];
        let mut indeg = vec![0usize; n];
        for v in 0..n {
            if let Action::Delegate(t) = actions[v] {
                if t != v {
                    indeg[t] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        while let Some(v) = ready.pop() {
            if let Action::Delegate(t) = actions[v] {
                if t != v {
                    weight[t] += weight[v];
                    indeg[t] -= 1;
                    if indeg[t] == 0 {
                        ready.push(t);
                    }
                }
            }
        }
        let mut mu = 0.0f64;
        let mut var = 0.0f64;
        for s in 0..n {
            if sink_of[s] == Some(s) {
                let w = weight[s] as f64;
                let p = ps[s];
                mu += w * p;
                var += w * w * p * (1.0 - p);
            }
        }
        RoundSnapshot {
            actions,
            sink_of,
            weight,
            tallied,
            mu,
            var,
        }
    }

    /// The snapshot's own decision probability (the "keep" utility).
    pub fn decision_probability(&self) -> f64 {
        normal_majority(self.mu, self.var, self.tallied)
    }

    /// Whether voter `i` sits on the snapshot chain from `j` (so `i`
    /// delegating to `j` would be a cycle against the snapshot).
    pub fn chain_passes_through(&self, j: usize, i: usize) -> bool {
        let mut v = j;
        for _ in 0..=self.actions.len() {
            if v == i {
                return true;
            }
            match self.actions[v] {
                Action::Delegate(t) if t != v => v = t,
                _ => return false,
            }
        }
        false
    }
}

/// `P[correct] = 1 − Φ((T/2 − μ)/σ)` with the `σ = 0` degenerate case
/// `P = [μ > T/2]` (exact ties lose, matching `TieBreak::Incorrect`).
///
/// This expression is normative for the dynamics: the testkit oracle
/// re-evaluates it with naively recomputed `μ`, `σ²`, `T`.
pub fn normal_majority(mu: f64, var: f64, tallied: usize) -> f64 {
    let half = tallied as f64 / 2.0;
    if tallied == 0 {
        return 0.0;
    }
    if var <= 0.0 {
        return if mu > half { 1.0 } else { 0.0 };
    }
    1.0 - std_normal_cdf((half - mu) / var.sqrt())
}

/// Where voter `i`'s one-step deviation sends its carried weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deviation {
    /// Delegate into the chain whose snapshot sink is given (`None` =
    /// the chain ends in an abstainer and the ballots are discarded).
    ToSink(Option<usize>),
    /// Reclaim the vote: voter `i` becomes its own sink.
    SelfVote,
}

/// The `(μ′, σ²′, T′)` of voter `i`'s one-step deviation from the
/// snapshot, evaluated in `O(1)`.
///
/// Operation order is normative (the oracle copies it verbatim): first
/// the voter's `w` ballots leave their current sink, if any
/// (`μ −= w·p_old`, `σ² −= (W² − (W−w)²)·p_old(1−p_old)`, `T −= w`;
/// ballots already discarded contribute nothing to remove), then they
/// arrive at the destination (`μ += w·p_new`,
/// `σ² += ((W+w)² − W²)·p_new(1−p_new)`, `T += w`; a destination chain
/// ending in an abstainer discards them instead).
pub fn deviation_sums(
    snap: &RoundSnapshot,
    ps: &[f64],
    i: usize,
    dest: Deviation,
) -> (f64, f64, usize) {
    let w = snap.weight[i];
    let wf = w as f64;
    let mut mu = snap.mu;
    let mut var = snap.var;
    let mut tallied = snap.tallied;

    // Departure: remove `w` ballots from the current sink, if any.
    if let Some(s) = snap.sink_of[i] {
        let cap = snap.weight[s] as f64;
        let p = ps[s];
        mu -= wf * p;
        var -= (cap * cap - (cap - wf) * (cap - wf)) * p * (1.0 - p);
        tallied -= w;
    }

    // Arrival.
    match dest {
        Deviation::SelfVote => {
            mu += wf * ps[i];
            var += wf * wf * ps[i] * (1.0 - ps[i]);
            tallied += w;
        }
        Deviation::ToSink(Some(s)) => {
            // The destination sink's weight net of anything `i` was
            // already contributing to it (the keep case: same sink).
            let base = if snap.sink_of[i] == Some(s) {
                (snap.weight[s] - w) as f64
            } else {
                snap.weight[s] as f64
            };
            let p = ps[s];
            mu += wf * p;
            var += ((base + wf) * (base + wf) - base * base) * p * (1.0 - p);
            tallied += w;
        }
        Deviation::ToSink(None) => {}
    }
    (mu, var, tallied)
}

/// Utility of voter `i`'s one-step deviation: the decision probability
/// of the deviated tally.
pub fn deviation_probability(snap: &RoundSnapshot, ps: &[f64], i: usize, dest: Deviation) -> f64 {
    let (mu, var, tallied) = deviation_sums(snap, ps, i, dest);
    normal_majority(mu, var, tallied)
}

/// The approval structure moves are restricted to: who each voter may
/// delegate to (`p_i + α ≤ p_j` among neighbours).
///
/// Kept separate from `ld_core::ProblemInstance` so adversarial (shrunk,
/// relabeled) states with arbitrary competency order remain expressible.
#[derive(Debug, Clone)]
pub struct DynamicsView {
    ps: Vec<f64>,
    neighbors: Vec<Vec<usize>>,
    alpha: f64,
}

impl DynamicsView {
    /// Wraps per-voter competencies and sorted adjacency lists.
    ///
    /// # Errors
    ///
    /// Rejects mismatched lengths, out-of-range neighbours, and a
    /// non-positive `alpha` (the strictness is what keeps every
    /// approval edge ascending and the candidate graphs acyclic).
    pub fn new(
        ps: Vec<f64>,
        neighbors: Vec<Vec<usize>>,
        alpha: f64,
    ) -> Result<DynamicsView, String> {
        let n = ps.len();
        if neighbors.len() != n {
            return Err(format!("{} adjacency rows for {n} voters", neighbors.len()));
        }
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(format!("alpha {alpha} must be strictly positive"));
        }
        for (i, row) in neighbors.iter().enumerate() {
            if row.iter().any(|&j| j >= n || j == i) {
                return Err(format!("bad neighbour in row {i}"));
            }
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("row {i} not strictly ascending"));
            }
        }
        Ok(DynamicsView {
            ps,
            neighbors,
            alpha,
        })
    }

    /// The complete-graph view: every other voter is a neighbour. The
    /// conformance checks use this as the carrier for bare
    /// `(actions, ps)` pairs.
    pub fn complete(ps: &[f64], alpha: f64) -> DynamicsView {
        let n = ps.len();
        let neighbors = (0..n)
            .map(|i| (0..n).filter(|&j| j != i).collect())
            .collect();
        DynamicsView {
            ps: ps.to_vec(),
            neighbors,
            alpha,
        }
    }

    /// Electorate size.
    pub fn n(&self) -> usize {
        self.ps.len()
    }

    /// Competencies.
    pub fn ps(&self) -> &[f64] {
        &self.ps
    }

    /// Approval margin.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Voter `i`'s neighbours, ascending.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.neighbors[i]
    }

    /// Whether `i` approves `j` (adjacent and `p_i + α ≤ p_j`).
    pub fn approves(&self, i: usize, j: usize) -> bool {
        self.neighbors[i].binary_search(&j).is_ok() && self.ps[i] + self.alpha <= self.ps[j]
    }
}

/// The best move for voter `i` against the snapshot, or `None` if the
/// voter stays put (frozen, non-single-target, or already optimal).
///
/// Candidates are scanned in canonical order — keep, vote directly,
/// approved targets ascending (descending under
/// [`TieBreakRule::SkewedForTests`]) — and a later candidate must be
/// *strictly* better to displace an earlier one.
pub fn best_move(
    view: &DynamicsView,
    snap: &RoundSnapshot,
    i: usize,
    rule: MoveRule,
    tiebreak: TieBreakRule,
) -> Option<Action> {
    let current = &snap.actions[i];
    if rule == MoveRule::Frozen || matches!(current, Action::Abstain | Action::DelegateMany(_)) {
        return None;
    }
    let ps = view.ps();
    // Higher is better for both rules: best response maximizes the
    // deviated P[correct]; a manipulator maximizes −σ²′.
    let score = |dest: Deviation| -> f64 {
        match rule {
            MoveRule::BestResponse => deviation_probability(snap, ps, i, dest),
            MoveRule::VarianceSeeking => {
                let (_, var, _) = deviation_sums(snap, ps, i, dest);
                -var
            }
            MoveRule::Frozen => unreachable!("filtered above"),
        }
    };

    // Keep is always the first candidate: its deviation is wherever the
    // current action already sends the ballots.
    let keep_dest = match *current {
        Action::Vote => Deviation::SelfVote,
        Action::Delegate(t) if t == i => Deviation::SelfVote,
        Action::Delegate(t) => Deviation::ToSink(snap.sink_of[t]),
        _ => unreachable!("filtered above"),
    };
    let mut best = score(keep_dest);
    let mut chosen: Option<Action> = None;

    let consider =
        |action: Action, dest: Deviation, best: &mut f64, chosen: &mut Option<Action>| {
            let s = score(dest);
            if s > *best {
                *best = s;
                *chosen = Some(action);
            }
        };

    if !matches!(*current, Action::Vote) {
        consider(Action::Vote, Deviation::SelfVote, &mut best, &mut chosen);
    }
    let targets = view.neighbors(i);
    let scan = |j: usize, best: &mut f64, chosen: &mut Option<Action>| {
        if ps[i] + view.alpha() > ps[j] {
            return;
        }
        if *current == Action::Delegate(j) {
            return; // already covered by keep
        }
        if snap.chain_passes_through(j, i) {
            return; // cycle against the snapshot: locally invalid
        }
        consider(
            Action::Delegate(j),
            Deviation::ToSink(snap.sink_of[j]),
            best,
            chosen,
        );
    };
    match tiebreak {
        TieBreakRule::Canonical => {
            for &j in targets {
                scan(j, &mut best, &mut chosen);
            }
        }
        TieBreakRule::SkewedForTests => {
            for &j in targets.iter().rev() {
                scan(j, &mut best, &mut chosen);
            }
        }
    }
    chosen
}

/// All proposed moves for one round, in canonical voter order: the
/// serial reference every parallel evaluation must reproduce exactly.
pub fn propose_moves(
    view: &DynamicsView,
    snap: &RoundSnapshot,
    rules: &[MoveRule],
    tiebreak: TieBreakRule,
) -> Vec<(usize, Action)> {
    (0..view.n())
        .filter_map(|i| best_move(view, snap, i, rules[i], tiebreak).map(|a| (i, a)))
        .collect()
}

/// Why a trajectory ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// No voter changed state in round `round` (either nobody proposed
    /// a move, or every proposal was rejected as a concurrent cycle).
    Fixpoint {
        /// The first round that was a no-op.
        round: usize,
    },
    /// The action state after round `round` recurred from after round
    /// `first_seen` (`0` = the initial state); `period ≥ 2` always — a
    /// period-1 revisit is a fixpoint by definition and reported as one.
    Cycle {
        /// Earlier round whose state recurred.
        first_seen: usize,
        /// `round − first_seen`.
        period: usize,
    },
    /// The round cap elapsed first.
    Capped,
}

/// One executed round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round index.
    pub round: usize,
    /// Voters that proposed a change.
    pub proposed: usize,
    /// Proposals accepted by the engine.
    pub applied: usize,
    /// Proposals rejected (concurrent moves closed a cycle; the voter
    /// keeps its previous action).
    pub rejected: usize,
    /// FNV-1a hash of the action state after the round.
    pub state_hash: u64,
    /// Decision probability (normal approximation) after the round.
    pub decision_probability: f64,
}

/// Loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsSpec {
    /// Maximum rounds to execute before reporting [`Termination::Capped`].
    pub max_rounds: usize,
    /// Tie-break rule (the mutation hook).
    pub tiebreak: TieBreakRule,
}

impl Default for DynamicsSpec {
    fn default() -> Self {
        DynamicsSpec {
            max_rounds: 64,
            tiebreak: TieBreakRule::Canonical,
        }
    }
}

/// A completed trajectory.
#[derive(Debug)]
pub struct Trajectory {
    /// Executed rounds, in order.
    pub rounds: Vec<RoundRecord>,
    /// Per-round proposals as `(voter, new action, accepted)`, canonical
    /// voter order — the replay stream.
    pub moves: Vec<Vec<(usize, Action, bool)>>,
    /// Why the loop stopped.
    pub termination: Termination,
    /// FNV-1a digest over the whole trajectory (initial state, every
    /// proposal and acceptance bit, every post-round state hash, the
    /// termination). Bit-identical across worker counts and tally
    /// kernels by construction: nothing stochastic feeds it.
    pub digest: u64,
    /// The final engine state.
    pub engine: LiveEngine,
}

/// FNV-1a over an action state (the cycle-detection key).
pub fn state_hash(actions: &[Action]) -> u64 {
    let mut h = Fnv::new();
    for a in actions {
        match a {
            Action::Vote => h.byte(1),
            Action::Abstain => h.byte(2),
            Action::Delegate(t) => {
                h.byte(3);
                h.u64(*t as u64);
            }
            Action::DelegateMany(ts) => {
                h.byte(4);
                h.u64(ts.len() as u64);
                for t in ts {
                    h.u64(*t as u64);
                }
            }
            _ => h.byte(5),
        }
    }
    h.finish()
}

/// Incremental FNV-1a (the digest accumulator).
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// Fresh accumulator at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Folds eight little-endian bytes.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Runs the dynamics with a custom proposal provider and a per-round
/// hook.
///
/// `propose` must return exactly what [`propose_moves`] would (the
/// parallel evaluator in `ld-sim` fans the same per-voter
/// [`best_move`] calls across workers and merges in canonical order);
/// `on_round` observes each executed round after it is applied — the WAL
/// tee and the kernel stress tally hang off it. The digest is computed
/// here, from proposals and states only, so it cannot depend on either
/// hook's behaviour.
///
/// # Errors
///
/// Construction errors (length mismatches, unresolvable initial state,
/// multi-target actions) and any error returned by `on_round`.
pub fn run_dynamics_with(
    view: &DynamicsView,
    initial: &[Action],
    rules: &[MoveRule],
    spec: &DynamicsSpec,
    mut propose: impl FnMut(
        &DynamicsView,
        &RoundSnapshot,
        &[MoveRule],
        TieBreakRule,
    ) -> Vec<(usize, Action)>,
    mut on_round: impl FnMut(&LiveEngine, &RoundRecord, &[(usize, Action, bool)]) -> Result<(), String>,
) -> Result<Trajectory, String> {
    let n = view.n();
    if initial.len() != n || rules.len() != n {
        return Err(format!(
            "initial/rules lengths {}/{} for {n} voters",
            initial.len(),
            rules.len()
        ));
    }
    if !DelegationGraph::new(initial.to_vec()).is_single_target() {
        return Err("dynamics requires a single-target initial state".to_string());
    }
    let mut engine = LiveEngine::new(initial.to_vec(), view.ps().to_vec())
        .map_err(|e| format!("initial engine: {e}"))?;

    let mut digest = Fnv::new();
    digest.u64(n as u64);
    digest.u64(state_hash(initial));

    // Cycle detection: every visited state, keyed by hash with the full
    // action vector retained so collisions cannot fake a revisit.
    let mut seen: std::collections::HashMap<u64, Vec<(usize, Vec<Action>)>> =
        std::collections::HashMap::new();
    seen.entry(state_hash(initial))
        .or_default()
        .push((0, initial.to_vec()));

    let mut rounds: Vec<RoundRecord> = Vec::new();
    let mut moves: Vec<Vec<(usize, Action, bool)>> = Vec::new();
    let mut termination = Termination::Capped;

    for round in 1..=spec.max_rounds {
        let snap = RoundSnapshot::from_engine(&engine);
        let proposals = propose(view, &snap, rules, spec.tiebreak);
        debug_assert!(proposals.windows(2).all(|w| w[0].0 < w[1].0));
        if proposals.is_empty() {
            termination = Termination::Fixpoint { round };
            break;
        }
        let updates: Vec<Update> = proposals
            .iter()
            .map(|&(voter, ref a)| match *a {
                Action::Vote => Update::Vote { voter },
                Action::Delegate(target) => Update::Delegate { voter, target },
                _ => unreachable!("best_move only proposes Vote/Delegate"),
            })
            .collect();
        let report = engine.apply_batch(&updates);
        debug_assert!(report
            .rejected
            .iter()
            .all(|(_, r)| matches!(r, RejectReason::WouldCreateCycle { .. })));
        let mut applied_moves: Vec<(usize, Action, bool)> = Vec::with_capacity(proposals.len());
        let mut rejected_ix = report.rejected.iter().map(|&(ix, _)| ix).peekable();
        for (ix, (voter, action)) in proposals.into_iter().enumerate() {
            let rejected = rejected_ix.peek() == Some(&ix);
            if rejected {
                rejected_ix.next();
            }
            applied_moves.push((voter, action, !rejected));
        }
        let applied = applied_moves.iter().filter(|m| m.2).count();
        if applied == 0 {
            // Every concurrent move was a cycle: the state is unchanged,
            // which is a fixpoint, never a period-1 "cycle".
            termination = Termination::Fixpoint { round };
            break;
        }
        let h = state_hash(engine.actions());
        digest.u64(round as u64);
        for (voter, action, accepted) in &applied_moves {
            digest.u64(*voter as u64);
            match action {
                Action::Vote => digest.byte(1),
                Action::Delegate(t) => {
                    digest.byte(3);
                    digest.u64(*t as u64);
                }
                _ => unreachable!("best_move only proposes Vote/Delegate"),
            }
            digest.byte(u8::from(*accepted));
        }
        digest.u64(h);
        let record = RoundRecord {
            round,
            proposed: applied_moves.len(),
            applied,
            rejected: applied_moves.len() - applied,
            state_hash: h,
            decision_probability: RoundSnapshot::from_engine(&engine).decision_probability(),
        };
        on_round(&engine, &record, &applied_moves)?;
        rounds.push(record);
        moves.push(applied_moves);

        let entry = seen.entry(h).or_default();
        if let Some(&(first_seen, _)) = entry
            .iter()
            .find(|(_, state)| state.as_slice() == engine.actions())
        {
            termination = Termination::Cycle {
                first_seen,
                period: round - first_seen,
            };
            break;
        }
        entry.push((round, engine.actions().to_vec()));
    }

    match termination {
        Termination::Fixpoint { round } => {
            digest.byte(0xF1);
            digest.u64(round as u64);
        }
        Termination::Cycle { first_seen, period } => {
            digest.byte(0xC1);
            digest.u64(first_seen as u64);
            digest.u64(period as u64);
        }
        Termination::Capped => digest.byte(0xCA),
    }

    Ok(Trajectory {
        rounds,
        moves,
        termination,
        digest: digest.finish(),
        engine,
    })
}

/// Runs the dynamics with the serial reference proposal order and no
/// round hook.
///
/// # Errors
///
/// See [`run_dynamics_with`].
pub fn run_dynamics(
    view: &DynamicsView,
    initial: &[Action],
    rules: &[MoveRule],
    spec: &DynamicsSpec,
) -> Result<Trajectory, String> {
    run_dynamics_with(view, initial, rules, spec, propose_moves, |_, _, _| Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(n: usize) -> Vec<MoveRule> {
        vec![MoveRule::BestResponse; n]
    }

    #[test]
    fn small_all_vote_instance_converges() {
        let ps = [0.3, 0.4, 0.9];
        let view = DynamicsView::complete(&ps, 0.05);
        let initial = vec![Action::Vote; 3];
        let traj = run_dynamics(&view, &initial, &honest(3), &DynamicsSpec::default()).unwrap();
        assert!(
            matches!(traj.termination, Termination::Fixpoint { .. }),
            "{:?}",
            traj.termination
        );
        assert!(!traj.rounds.is_empty(), "someone should want to delegate");
        // A fixpoint means one more round proposes nothing.
        let snap = RoundSnapshot::from_engine(&traj.engine);
        assert!(propose_moves(&view, &snap, &honest(3), TieBreakRule::Canonical).is_empty());
    }

    #[test]
    fn linear_profile_anti_coordination_cycles() {
        // Six voters, linear profile, everyone starts direct: the crowd
        // piles onto the top sink, overshoots (one bloc's majority is
        // scale-invariant, so concentrating hurts), peels off, and
        // re-piles — a genuine period-3 limit cycle under simultaneous
        // best responses.
        let ps: Vec<f64> = (0..6).map(|i| 0.3 + 0.08 * i as f64).collect();
        let view = DynamicsView::complete(&ps, 0.05);
        let initial = vec![Action::Vote; 6];
        let traj = run_dynamics(&view, &initial, &honest(6), &DynamicsSpec::default()).unwrap();
        assert_eq!(
            traj.termination,
            Termination::Cycle {
                first_seen: 1,
                period: 3
            }
        );
    }

    #[test]
    fn trajectory_is_deterministic() {
        let ps: Vec<f64> = (0..9).map(|i| 0.25 + 0.07 * i as f64).collect();
        let view = DynamicsView::complete(&ps, 0.05);
        let mut initial = vec![Action::Vote; 9];
        initial[0] = Action::Delegate(4);
        initial[2] = Action::Delegate(5);
        let a = run_dynamics(&view, &initial, &honest(9), &DynamicsSpec::default()).unwrap();
        let b = run_dynamics(&view, &initial, &honest(9), &DynamicsSpec::default()).unwrap();
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.termination, b.termination);
        assert_eq!(a.engine.actions(), b.engine.actions());
    }

    #[test]
    fn frozen_voters_never_move() {
        let ps = [0.3, 0.4, 0.5, 0.9];
        let view = DynamicsView::complete(&ps, 0.05);
        let initial = vec![Action::Vote; 4];
        let rules = vec![MoveRule::Frozen; 4];
        let traj = run_dynamics(&view, &initial, &rules, &DynamicsSpec::default()).unwrap();
        assert_eq!(traj.termination, Termination::Fixpoint { round: 1 });
        assert!(traj.rounds.is_empty());
    }

    #[test]
    fn abstainers_are_frozen_and_discarded_ballots_get_reclaimed() {
        // 0 delegates into an abstainer: its ballot is discarded. With
        // two live sinks, feeding the better one strictly improves P
        // (with a single sink it would not — the majority z-score of
        // one bloc is scale-invariant), so 0 re-delegates to 2.
        let ps = [0.3, 0.55, 0.6, 0.9];
        let view = DynamicsView::complete(&ps, 0.05);
        let initial = vec![
            Action::Delegate(3),
            Action::Vote,
            Action::Vote,
            Action::Abstain,
        ];
        let snap = RoundSnapshot::from_parts(&initial, &ps).unwrap();
        assert_eq!(snap.sink_of[0], None);
        let m = best_move(
            &view,
            &snap,
            0,
            MoveRule::BestResponse,
            TieBreakRule::Canonical,
        );
        assert_eq!(m, Some(Action::Delegate(2)));
        assert_eq!(
            best_move(
                &view,
                &snap,
                3,
                MoveRule::BestResponse,
                TieBreakRule::Canonical
            ),
            None,
            "abstainers are frozen"
        );
    }

    #[test]
    fn skewed_tiebreak_diverges_on_a_shared_sink_tie() {
        // 0 can reach the top sink 3 via 1, 2 (both delegate to 3) or
        // directly: three candidates with bit-identical utilities. The
        // canonical rule picks the lowest index, the skew the highest.
        let ps = [0.3, 0.5, 0.55, 0.9];
        let view = DynamicsView::complete(&ps, 0.05);
        let initial = vec![
            Action::Vote,
            Action::Delegate(3),
            Action::Delegate(3),
            Action::Vote,
        ];
        let snap = RoundSnapshot::from_parts(&initial, &ps).unwrap();
        let canonical = best_move(
            &view,
            &snap,
            0,
            MoveRule::BestResponse,
            TieBreakRule::Canonical,
        );
        let skewed = best_move(
            &view,
            &snap,
            0,
            MoveRule::BestResponse,
            TieBreakRule::SkewedForTests,
        );
        assert_eq!(canonical, Some(Action::Delegate(1)));
        assert_eq!(skewed, Some(Action::Delegate(3)));
    }

    #[test]
    fn variance_seeker_prefers_the_extreme_sink() {
        // Joining a sink turns w² + W² into (W+w)², so a manipulator
        // only moves when the destination is extreme enough: removing
        // 0's own 1²·0.21 term and adding 3·p(1−p) at the target must
        // shrink σ². p = 0.97 qualifies (3·0.0291 < 0.21); the
        // middling sinks do not.
        let ps = [0.3, 0.4, 0.5, 0.97];
        let view = DynamicsView::complete(&ps, 0.05);
        let initial = vec![Action::Vote, Action::Vote, Action::Vote, Action::Vote];
        let snap = RoundSnapshot::from_parts(&initial, &ps).unwrap();
        let m = best_move(
            &view,
            &snap,
            0,
            MoveRule::VarianceSeeking,
            TieBreakRule::Canonical,
        );
        assert_eq!(m, Some(Action::Delegate(3)), "p=0.97 minimizes σ²");
    }

    #[test]
    fn deviation_sums_match_a_recomputed_snapshot() {
        // Moving 0's subtree and re-snapshotting from scratch must land
        // on the same (μ, σ², T) the O(1) delta reports.
        let ps = [0.3, 0.45, 0.6, 0.7, 0.9];
        let initial = vec![
            Action::Delegate(2),
            Action::Delegate(2),
            Action::Vote,
            Action::Vote,
            Action::Vote,
        ];
        let snap = RoundSnapshot::from_parts(&initial, &ps).unwrap();
        let (mu, var, tallied) = deviation_sums(&snap, &ps, 0, Deviation::ToSink(Some(4)));
        let mut moved = initial.clone();
        moved[0] = Action::Delegate(4);
        let re = RoundSnapshot::from_parts(&moved, &ps).unwrap();
        assert_eq!(tallied, re.tallied);
        assert!((mu - re.mu).abs() < 1e-12, "{mu} vs {}", re.mu);
        assert!((var - re.var).abs() < 1e-12, "{var} vs {}", re.var);
    }

    #[test]
    fn state_hash_distinguishes_actions() {
        let a = vec![Action::Vote, Action::Delegate(0)];
        let b = vec![Action::Vote, Action::Delegate(1)];
        let c = vec![Action::Vote, Action::Abstain];
        assert_ne!(state_hash(&a), state_hash(&b));
        assert_ne!(state_hash(&a), state_hash(&c));
    }
}
