//! # `ld-live` — incremental liquid democracy under churn
//!
//! The rest of the workspace treats a delegation graph as a snapshot: a
//! mechanism emits one [`ld_core::delegation::DelegationGraph`], it is
//! resolved once, tallied once. Real deployments are streams: voters
//! re-delegate, reclaim their vote, abstain, and competency estimates
//! drift. Recomputing `resolve()` from scratch after every such event is
//! `O(n)` per update; this crate maintains the resolved state — the
//! reverse delegation forest, per-sink weights, discarded-vote counts,
//! chain depths, and the weighted-majority tally — *incrementally*, in
//! `O(affected subtree)` per update.
//!
//! * [`LiveEngine`] — the stateful engine. Feed it [`Update`]s one at a
//!   time ([`LiveEngine::apply`]) or in batches
//!   ([`LiveEngine::apply_batch`], which recomputes each touched region
//!   once no matter how many updates land in it). Invalid updates
//!   (out-of-range targets, cycle-creating delegations, malformed
//!   competencies) are *rejected* with a typed [`RejectReason`] and leave
//!   the state untouched, so the engine's graph is valid at every
//!   instant — mirroring [`DelegationGraph::resolve`]'s contract that
//!   cycles are an error, never silent.
//! * [`workload`] — seeded synthetic churn traces (configurable update
//!   mix, Zipf-skewed delegation targets) used by the `repro stress`
//!   driver and the benchmarks.
//! * [`dynamics`] — deterministic best-response re-delegation rounds on
//!   top of the engine: each round scores every voter's candidate moves
//!   against an immutable snapshot and applies the winners as one batch,
//!   iterating to a fixpoint, a detected cycle, or a round cap.
//! * [`ranked`] — ranked preference profiles mirrored onto the engine: a
//!   [`ld_core::ranked::DelegationRule`] selects one edge per voter, and
//!   ballot churn re-selects globally, landing as one batched forest
//!   diff ([`ranked::RankedMirror`]).
//!
//! The engine's exported [`LiveEngine::resolution`] is bit-identical to
//! resolving its current action vector from scratch — the property the
//! `repro stress` workload cross-checks at scale after millions of
//! updates, and `tests/proptest_replay.rs` checks on random traces.
//!
//! [`DelegationGraph::resolve`]: ld_core::delegation::DelegationGraph::resolve

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod dynamics;
mod engine;
pub mod ranked;
pub mod workload;

pub use engine::{BatchReport, LiveEngine, RejectReason, Update};
