//! Binary encoding of [`Update`] events — the payload format of the
//! `ld-store` write-ahead log.
//!
//! One update encodes to one compact little-endian payload:
//!
//! ```text
//! Delegate   [0x01][voter: u32][target: u32]   9 bytes
//! Vote       [0x02][voter: u32]                5 bytes
//! Abstain    [0x03][voter: u32]                5 bytes
//! Competence [0x04][voter: u32][p: f64 bits]  13 bytes
//! ```
//!
//! The codec frames nothing and checksums nothing — that is the WAL's
//! job (`ld-store` wraps each payload in a length + CRC32 frame). It
//! does reject structurally malformed payloads with a typed
//! [`CodecError`], so a corrupted record that slips past an integrity
//! check still cannot decode into a phantom update of the wrong shape.
//! Semantic validation (voter in range, competency in `[0, 1]`) stays
//! where it always was: [`LiveEngine::apply`](crate::LiveEngine::apply).
//!
//! Round-tripping is exact: `decode_update(encoded(u)) == u`, including
//! the bit pattern of competency values (encoded via
//! [`f64::to_bits`]).

use crate::engine::Update;
use std::fmt;

/// Tag byte for [`Update::Delegate`].
const TAG_DELEGATE: u8 = 0x01;
/// Tag byte for [`Update::Vote`].
const TAG_VOTE: u8 = 0x02;
/// Tag byte for [`Update::Abstain`].
const TAG_ABSTAIN: u8 = 0x03;
/// Tag byte for [`Update::Competence`].
const TAG_COMPETENCE: u8 = 0x04;

/// The largest encoded payload ([`Update::Competence`]: 13 bytes).
pub const MAX_PAYLOAD: usize = 13;

/// A structurally malformed update payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload was empty.
    Empty,
    /// The tag byte names no known update kind.
    UnknownTag(u8),
    /// The payload length does not match its tag's fixed size.
    Length {
        /// The tag byte that was read.
        tag: u8,
        /// The length the tag requires.
        expected: usize,
        /// The length that was found.
        got: usize,
    },
    /// A voter id does not fit in this platform's `usize`.
    VoterOverflow {
        /// The encoded id.
        id: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Empty => write!(f, "empty update payload"),
            CodecError::UnknownTag(t) => write!(f, "unknown update tag 0x{t:02x}"),
            CodecError::Length { tag, expected, got } => write!(
                f,
                "update tag 0x{tag:02x} requires {expected} bytes, got {got}"
            ),
            CodecError::VoterOverflow { id } => {
                write!(f, "voter id {id} does not fit in usize")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends the encoding of `update` to `out` and returns the number of
/// bytes written.
///
/// Voter ids are stored as `u32` — the same bound
/// [`LiveEngine`](crate::LiveEngine) enforces on `n` — so an id that
/// does not fit is a caller bug and panics rather than truncating.
pub fn encode_update(update: &Update, out: &mut Vec<u8>) -> usize {
    let id = |v: usize| -> u32 {
        u32::try_from(v).expect("voter id exceeds u32 (engine enforces n < u32::MAX)")
    };
    let before = out.len();
    match *update {
        Update::Delegate { voter, target } => {
            out.push(TAG_DELEGATE);
            out.extend_from_slice(&id(voter).to_le_bytes());
            out.extend_from_slice(&id(target).to_le_bytes());
        }
        Update::Vote { voter } => {
            out.push(TAG_VOTE);
            out.extend_from_slice(&id(voter).to_le_bytes());
        }
        Update::Abstain { voter } => {
            out.push(TAG_ABSTAIN);
            out.extend_from_slice(&id(voter).to_le_bytes());
        }
        Update::Competence { voter, p } => {
            out.push(TAG_COMPETENCE);
            out.extend_from_slice(&id(voter).to_le_bytes());
            out.extend_from_slice(&p.to_bits().to_le_bytes());
        }
    }
    out.len() - before
}

fn read_u32(payload: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&payload[at..at + 4]);
    u32::from_le_bytes(b)
}

fn voter_id(payload: &[u8], at: usize) -> Result<usize, CodecError> {
    let id = read_u32(payload, at);
    usize::try_from(id).map_err(|_| CodecError::VoterOverflow { id })
}

/// Decodes one exact payload (as extracted from a WAL frame).
///
/// # Errors
///
/// Returns a [`CodecError`] if the payload is empty, carries an unknown
/// tag, or has the wrong length for its tag. Field *values* are not
/// validated here — an out-of-range voter id decodes fine and is then
/// rejected by the engine, exactly like any other invalid update.
pub fn decode_update(payload: &[u8]) -> Result<Update, CodecError> {
    let Some(&tag) = payload.first() else {
        return Err(CodecError::Empty);
    };
    let need = |expected: usize| -> Result<(), CodecError> {
        if payload.len() == expected {
            Ok(())
        } else {
            Err(CodecError::Length {
                tag,
                expected,
                got: payload.len(),
            })
        }
    };
    match tag {
        TAG_DELEGATE => {
            need(9)?;
            Ok(Update::Delegate {
                voter: voter_id(payload, 1)?,
                target: voter_id(payload, 5)?,
            })
        }
        TAG_VOTE => {
            need(5)?;
            Ok(Update::Vote {
                voter: voter_id(payload, 1)?,
            })
        }
        TAG_ABSTAIN => {
            need(5)?;
            Ok(Update::Abstain {
                voter: voter_id(payload, 1)?,
            })
        }
        TAG_COMPETENCE => {
            need(13)?;
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[5..13]);
            Ok(Update::Competence {
                voter: voter_id(payload, 1)?,
                p: f64::from_bits(u64::from_le_bytes(b)),
            })
        }
        other => Err(CodecError::UnknownTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(u: Update) {
        let mut buf = Vec::new();
        let written = encode_update(&u, &mut buf);
        assert_eq!(written, buf.len());
        assert!(written <= MAX_PAYLOAD);
        let back = decode_update(&buf).unwrap();
        // Update derives PartialEq over f64; competency bit patterns are
        // preserved exactly, so plain equality is the right check.
        assert_eq!(back, u);
    }

    #[test]
    fn all_variants_round_trip() {
        roundtrip(Update::Delegate {
            voter: 0,
            target: u32::MAX as usize - 2,
        });
        roundtrip(Update::Vote { voter: 7 });
        roundtrip(Update::Abstain { voter: 123_456 });
        roundtrip(Update::Competence {
            voter: 3,
            p: 0.123_456_789,
        });
        roundtrip(Update::Competence { voter: 0, p: 0.0 });
        roundtrip(Update::Competence { voter: 0, p: 1.0 });
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(decode_update(&[]), Err(CodecError::Empty));
        assert_eq!(
            decode_update(&[0x7f, 0, 0, 0, 0]),
            Err(CodecError::UnknownTag(0x7f))
        );
        assert_eq!(
            decode_update(&[TAG_VOTE, 0, 0, 0]),
            Err(CodecError::Length {
                tag: TAG_VOTE,
                expected: 5,
                got: 4
            })
        );
        // A truncated Competence must not decode as anything.
        let mut buf = Vec::new();
        encode_update(&Update::Competence { voter: 1, p: 0.5 }, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_update(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn errors_display_something_useful() {
        assert!(CodecError::UnknownTag(0xaa).to_string().contains("0xaa"));
        assert!(CodecError::Length {
            tag: TAG_DELEGATE,
            expected: 9,
            got: 2
        }
        .to_string()
        .contains("9"));
    }
}
