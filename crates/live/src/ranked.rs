//! Ranked delegations over the live engine.
//!
//! A [`RankedMirror`] owns a [`ld_core::ranked::RankedProfile`] and a
//! [`LiveEngine`] holding the forest the active [`DelegationRule`]
//! selects from it. Ballot churn (a voter submitting a new preference
//! list, casting, or abstaining) triggers a *global* re-selection — a
//! ranked rule is a coordination rule, so one edit can legitimately
//! re-route distant voters — and the mirror applies the difference
//! between the old and new forests to the engine as one batch.
//!
//! The diff is applied in two phases inside a single
//! [`LiveEngine::apply_batch`] call: first every re-routed delegator is
//! parked on a terminal action (its final action, or a provisional
//! `Vote` when the final action is a delegation), then the new edges
//! land. Both phases only ever leave subgraphs of the final selected
//! forest in place, and selected forests are cycle-free by
//! construction, so no intermediate state can trip the engine's cycle
//! rejection — the batch must apply with zero rejects, and
//! [`RankedMirror::set_ballot`] treats anything else as a contract
//! violation.

use crate::engine::{LiveEngine, Update};
use ld_core::delegation::Action;
use ld_core::ranked::{DelegationRule, RankedBallot, RankedProfile, RankedSelection};
use ld_core::{CoreError, Result};

/// A live engine kept in lockstep with the selection a ranked
/// delegation rule makes from a churning preference profile.
#[derive(Debug)]
pub struct RankedMirror {
    profile: RankedProfile,
    rule: DelegationRule,
    selection: RankedSelection,
    engine: LiveEngine,
}

impl RankedMirror {
    /// Selects `profile` under `rule` and boots a live engine on the
    /// selected forest.
    ///
    /// # Errors
    ///
    /// Propagates [`DelegationRule::select`] errors (including the
    /// single-edge [`CoreError::CyclicDelegation`] contract) and
    /// [`LiveEngine::new`] competence validation.
    pub fn new(
        profile: RankedProfile,
        rule: DelegationRule,
        competences: Vec<f64>,
    ) -> Result<Self> {
        let selection = rule.select(&profile)?;
        let engine = LiveEngine::new(selection.actions().to_vec(), competences)?;
        Ok(RankedMirror {
            profile,
            rule,
            selection,
            engine,
        })
    }

    /// The current preference profile.
    pub fn profile(&self) -> &RankedProfile {
        &self.profile
    }

    /// The delegation rule in force.
    pub fn rule(&self) -> DelegationRule {
        self.rule
    }

    /// The current selection (actions, chosen ranks, exhausted voters).
    pub fn selection(&self) -> &RankedSelection {
        &self.selection
    }

    /// The mirrored engine; its resolution is always the resolution of
    /// the current selection.
    pub fn engine(&self) -> &LiveEngine {
        &self.engine
    }

    /// Replaces `voter`'s ballot, re-selects the whole profile, and
    /// applies the forest diff to the engine as one batched update.
    /// Returns the number of voters whose selected action changed.
    ///
    /// # Errors
    ///
    /// * Ballot validation errors from [`RankedProfile::set_ballot`]
    ///   (the profile and engine are left untouched).
    /// * [`CoreError::CyclicDelegation`] if the edit turns a single-edge
    ///   profile cyclic — the edit is rolled back before returning.
    /// * [`CoreError::InvalidParameter`] if the engine rejects any diff
    ///   update, which would mean the selected forest was not cycle-free
    ///   (an internal invariant, surfaced as a typed error).
    pub fn set_ballot(&mut self, voter: usize, ballot: RankedBallot) -> Result<usize> {
        if voter >= self.profile.n() {
            return Err(CoreError::InvalidParameter {
                reason: format!(
                    "ballot update names voter {voter}, profile has {}",
                    self.profile.n()
                ),
            });
        }
        let previous = self.profile.ballot(voter).clone();
        self.profile.set_ballot(voter, ballot)?;
        let selection = match self.rule.select(&self.profile) {
            Ok(s) => s,
            Err(e) => {
                self.profile
                    .set_ballot(voter, previous)
                    .expect("previous ballot was valid");
                return Err(e);
            }
        };
        let mut removals = Vec::new();
        let mut additions = Vec::new();
        let old = self.selection.actions();
        for (v, action) in selection.actions().iter().enumerate() {
            if old[v] == *action {
                continue;
            }
            match action {
                Action::Vote => removals.push(Update::Vote { voter: v }),
                Action::Abstain => removals.push(Update::Abstain { voter: v }),
                Action::Delegate(t) => {
                    // Park the voter on a terminal first so the edge
                    // phase only ever adds edges of the final forest.
                    removals.push(Update::Vote { voter: v });
                    additions.push(Update::Delegate {
                        voter: v,
                        target: *t,
                    });
                }
                _ => {
                    return Err(CoreError::InvalidParameter {
                        reason: format!("rule selected a multi-target action for voter {v}"),
                    })
                }
            }
        }
        let changed = selection
            .actions()
            .iter()
            .zip(old)
            .filter(|(a, b)| a != b)
            .count();
        removals.extend(additions);
        let report = self.engine.apply_batch(&removals);
        if let Some((index, reason)) = report.rejected.first() {
            return Err(CoreError::InvalidParameter {
                reason: format!(
                    "ranked diff batch rejected at update {index}: {reason} — the selected \
                     forest was not cycle-free"
                ),
            });
        }
        self.selection = selection;
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::ranked::{resolve_ranked, RankedBallot};

    fn ranked(list: &[usize]) -> RankedBallot {
        RankedBallot::Ranked(list.to_vec())
    }

    fn mirror(ballots: Vec<RankedBallot>, rule: DelegationRule) -> RankedMirror {
        let n = ballots.len();
        let profile = RankedProfile::new(ballots).unwrap();
        let ps: Vec<f64> = (0..n).map(|i| 0.3 + 0.4 * (i as f64) / n as f64).collect();
        RankedMirror::new(profile, rule, ps).unwrap()
    }

    fn assert_in_lockstep(m: &RankedMirror) {
        let (sel, res) = resolve_ranked(m.profile(), m.rule()).unwrap();
        assert_eq!(sel.actions(), m.selection().actions());
        assert_eq!(res, m.engine().resolution());
        m.engine().self_check().unwrap();
    }

    #[test]
    fn boot_matches_from_scratch_resolution() {
        for rule in DelegationRule::all() {
            let m = mirror(
                vec![
                    ranked(&[1, 3]),
                    ranked(&[0, 3]),
                    RankedBallot::Abstain,
                    RankedBallot::Cast,
                ],
                rule,
            );
            assert_in_lockstep(&m);
        }
    }

    #[test]
    fn ballot_churn_re_selects_and_stays_in_lockstep() {
        for rule in DelegationRule::all() {
            let mut m = mirror(
                vec![
                    ranked(&[1, 4]),
                    ranked(&[2, 4]),
                    ranked(&[4, 0]),
                    RankedBallot::Cast,
                    RankedBallot::Cast,
                ],
                rule,
            );
            assert_in_lockstep(&m);
            // Re-route the middle of the chain: 2 now prefers the cycle
            // edge back to 0, forcing a global re-selection.
            m.set_ballot(2, ranked(&[0, 4])).unwrap();
            assert_in_lockstep(&m);
            // A voter casting directly shortens everyone's chain.
            m.set_ballot(1, RankedBallot::Cast).unwrap();
            assert_in_lockstep(&m);
            // Exhaust a list: 0 now only ranks voters that cannot carry
            // the chain anywhere? (ranking the abstainer still
            // terminates, so point 0 at itself via a live cycle probe.)
            m.set_ballot(0, ranked(&[2, 1])).unwrap();
            assert_in_lockstep(&m);
        }
    }

    #[test]
    fn invalid_ballot_leaves_profile_and_engine_untouched() {
        let mut m = mirror(
            vec![ranked(&[1]), RankedBallot::Cast],
            DelegationRule::MinDepth,
        );
        let before_profile = m.profile().clone();
        let before_res = m.engine().resolution();
        assert!(m.set_ballot(0, ranked(&[9])).is_err());
        assert!(m.set_ballot(5, RankedBallot::Cast).is_err());
        // A single-edge cycle keeps the legacy error and rolls back.
        assert!(matches!(
            m.set_ballot(1, ranked(&[0])),
            Err(CoreError::CyclicDelegation)
        ));
        assert_eq!(m.profile(), &before_profile);
        assert_eq!(m.engine().resolution(), before_res);
        assert_in_lockstep(&m);
    }

    #[test]
    fn exhaustion_churn_falls_back_to_abstain_live() {
        // Start connected; then the caster abstains-by-proxy: voters 0–2
        // rank only each other once 3 stops being listed… exhaust by
        // re-pointing every list inward.
        let mut m = mirror(
            vec![
                ranked(&[1, 3]),
                ranked(&[2, 3]),
                ranked(&[0, 3]),
                RankedBallot::Cast,
            ],
            DelegationRule::MinSum,
        );
        m.set_ballot(0, ranked(&[1, 2])).unwrap();
        m.set_ballot(1, ranked(&[2, 0])).unwrap();
        m.set_ballot(2, ranked(&[0, 1])).unwrap();
        assert_eq!(m.selection().exhausted(), &[0, 1, 2]);
        assert_eq!(m.engine().resolution().discarded(), 3);
        assert_in_lockstep(&m);
    }
}
