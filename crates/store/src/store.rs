//! The durable store: one WAL, a set of snapshots, and recovery.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/events.wal                    append-only update log
//! <dir>/snapshot-00000000000000000000.bin   genesis (state before record 0)
//! <dir>/snapshot-<k>.bin              state after the first k records
//! ```
//!
//! The WAL is never rewritten (only a torn tail is truncated on
//! reopen); compaction adds a new snapshot and prunes old ones, always
//! keeping genesis — the full-log-replay baseline `repro store-bench`
//! measures against — and the two newest.
//!
//! # Crash safety
//!
//! * Appends go to the WAL first; an interrupted append leaves at most
//!   a torn tail, which [`recover`] truncates.
//! * [`Store::compact`] fsyncs the WAL *before* writing
//!   `snapshot-<k>.bin`, so a snapshot's existence implies the log
//!   durably holds ≥ `k` records — recovery can always replay forward
//!   from any surviving snapshot.
//! * Snapshot writes are temp-file + fsync + rename + dir-fsync; a
//!   crash mid-compaction leaves the previous snapshot set intact.
//!
//! Recovery therefore composes: newest *valid* snapshot (CRC-checked;
//! a corrupt one falls back to the next older), rehydrate without
//! resolving, replay the WAL tail. The result is bit-identical to an
//! engine that never crashed — the property the `wal-crash-oracle`
//! conformance check and `crates/store/tests/crash_recovery.rs` pin
//! at every crash point.

use crate::fault::{FaultClock, FaultPlan};
use crate::snapshot::{parse_snapshot_name, write_snapshot, Snapshot};
use crate::wal::{read_wal_tail, TailStatus, TornTail, WalWriter, WAL_HEADER_LEN};
use crate::StoreError;
use ld_live::{LiveEngine, Update};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The WAL file name inside a store directory.
pub const WAL_FILE: &str = "events.wal";

/// Tuning and fault-injection knobs for a store.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Records per fsync (`0` = only explicit [`Store::sync`] /
    /// compaction fsyncs).
    pub sync_every: u64,
    /// WAL records between automatic compactions in
    /// [`Store::maybe_compact`] (`0` = manual compaction only).
    pub snapshot_every: u64,
    /// Deterministic fault plan for the store's I/O (see
    /// [`FaultPlan`]).
    pub fault: FaultPlan,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            sync_every: 1024,
            snapshot_every: 0,
            fault: FaultPlan::none(),
        }
    }
}

/// An open store: the WAL writer plus compaction bookkeeping.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    wal: WalWriter,
    clock: Arc<FaultClock>,
    last_snapshot: u64,
    opts: StoreOptions,
}

/// Snapshot files in `dir`, newest (highest `applied`) first.
fn snapshots_desc(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(StoreError::io("list store dir", dir))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(StoreError::io("list store dir", dir))?;
        if let Some(applied) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            found.push((applied, entry.path()));
        }
    }
    found.sort_by_key(|&(applied, _)| std::cmp::Reverse(applied));
    Ok(found)
}

impl Store {
    /// Creates a fresh store in `dir` (created if missing): a genesis
    /// snapshot of `engine` and an empty WAL. Any existing store files
    /// in `dir` are replaced.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure (including injected
    /// faults).
    pub fn create(
        dir: &Path,
        engine: &LiveEngine,
        opts: StoreOptions,
    ) -> Result<Store, StoreError> {
        std::fs::create_dir_all(dir).map_err(StoreError::io("create store dir", dir))?;
        for (_, stale) in snapshots_desc(dir)? {
            std::fs::remove_file(&stale).map_err(StoreError::io("clear stale snapshot", &stale))?;
        }
        let clock = FaultClock::new(opts.fault);
        write_snapshot(dir, engine, 0, WAL_HEADER_LEN as u64, &clock)?;
        let wal = WalWriter::create(&dir.join(WAL_FILE), Arc::clone(&clock), opts.sync_every)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            wal,
            clock,
            last_snapshot: 0,
            opts,
        })
    }

    /// Recovers the store in `dir` and reopens it for appending: the
    /// torn tail (if any) is truncated and the engine is rebuilt from
    /// the newest valid snapshot plus the log tail.
    ///
    /// # Errors
    ///
    /// Propagates [`recover`] and WAL-reopen failures.
    pub fn resume(dir: &Path, opts: StoreOptions) -> Result<(Store, Recovery), StoreError> {
        let recovery = recover(dir)?;
        let clock = FaultClock::new(opts.fault);
        // Trust the prefix the recovery snapshot covered so the reopen
        // truncates at the same point recovery just reported.
        let (wal, _) = WalWriter::open_for_append_trusting(
            &dir.join(WAL_FILE),
            Arc::clone(&clock),
            opts.sync_every,
            recovery.tail_offset,
            recovery.snapshot_applied,
        )?;
        Ok((
            Store {
                dir: dir.to_path_buf(),
                wal,
                clock,
                last_snapshot: recovery.snapshot_applied,
                opts,
            },
            recovery,
        ))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total records in the WAL (including any recovered prefix).
    pub fn records(&self) -> u64 {
        self.wal.records()
    }

    /// The `applied` count of the newest snapshot this handle wrote or
    /// recovered from.
    pub fn last_snapshot(&self) -> u64 {
        self.last_snapshot
    }

    /// The store's fault clock (operation counts, fired flag).
    pub fn clock(&self) -> &Arc<FaultClock> {
        &self.clock
    }

    /// Appends one accepted update.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] — the WAL may then hold a torn tail; recovery
    /// truncates it.
    pub fn append(&mut self, update: &Update) -> Result<(), StoreError> {
        self.wal.append(update)
    }

    /// Appends a batch of accepted updates as one `write(2)`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`], as for [`Store::append`].
    pub fn append_batch(&mut self, updates: &[Update]) -> Result<(), StoreError> {
        self.wal.append_batch(updates)
    }

    /// Forces a WAL fsync.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Compacts now: fsyncs the WAL, snapshots `engine` at the current
    /// record count, and prunes old snapshots (keeping genesis and the
    /// two newest).
    ///
    /// `engine` must be the state produced by exactly the updates
    /// appended so far — the caller owns that pairing.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; on failure the previous snapshot set is
    /// still intact.
    pub fn compact(&mut self, engine: &LiveEngine) -> Result<PathBuf, StoreError> {
        self.wal.sync()?;
        let applied = self.wal.records();
        let wal_len = self.wal.len_bytes();
        let path = write_snapshot(&self.dir, engine, applied, wal_len, &self.clock)?;
        self.last_snapshot = applied;
        ld_obs::counter("store.compactions").incr();
        // Prune: keep genesis (the full-replay baseline) and the two
        // newest snapshots. Pruning is advisory — failures are ignored,
        // extra snapshots only cost disk.
        let snaps = snapshots_desc(&self.dir)?;
        for (applied, path) in snaps.iter().skip(2) {
            if *applied != 0 {
                std::fs::remove_file(path).ok();
            }
        }
        Ok(path)
    }

    /// Compacts if `snapshot_every` records accumulated since the last
    /// snapshot; returns the new snapshot path if one was written.
    ///
    /// # Errors
    ///
    /// As for [`Store::compact`].
    pub fn maybe_compact(&mut self, engine: &LiveEngine) -> Result<Option<PathBuf>, StoreError> {
        if self.opts.snapshot_every > 0
            && self.wal.records() - self.last_snapshot >= self.opts.snapshot_every
        {
            self.compact(engine).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Recovers the store in `dir` truncated to exactly `cap` records
    /// and reopens it for appending: the WAL is cut at the `cap`-record
    /// boundary (dropping any durable-but-uncovered suffix along with
    /// the torn tail) and the engine is rebuilt from the newest valid
    /// snapshot at or before the cut.
    ///
    /// This is the cross-shard consistency primitive `ld-serve` builds
    /// on: each shard logs independently, so after a kill the shards'
    /// durable prefixes can disagree about how far the *global*
    /// accepted sequence got — and mixed prefixes can even compose into
    /// a delegation cycle no single engine ever accepted. The service's
    /// epoch barrier records a consistent per-shard cut; resuming every
    /// shard capped at its cut restores a state the live service
    /// actually passed through.
    ///
    /// # Errors
    ///
    /// Propagates [`recover_capped`] and WAL-reopen failures.
    pub fn resume_capped(
        dir: &Path,
        opts: StoreOptions,
        cap: u64,
    ) -> Result<(Store, Recovery), StoreError> {
        let (recovery, cut) = recover_capped(dir, cap)?;
        let wal_path = dir.join(WAL_FILE);
        // Physically drop everything past the cut, then reopen trusting
        // the capped prefix; the subsequent scan starts at the cut and
        // finds a clean, empty tail.
        let ioerr = StoreError::io("truncate wal at cap", &wal_path);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .map_err(&ioerr)?;
        file.set_len(cut).map_err(&ioerr)?;
        file.sync_data().map_err(&ioerr)?;
        drop(file);
        let clock = FaultClock::new(opts.fault);
        let (wal, _) = WalWriter::open_for_append_trusting(
            &wal_path,
            Arc::clone(&clock),
            opts.sync_every,
            cut,
            cap,
        )?;
        Ok((
            Store {
                dir: dir.to_path_buf(),
                wal,
                clock,
                last_snapshot: recovery.snapshot_applied,
                opts,
            },
            recovery,
        ))
    }
}

/// The outcome of a recovery.
#[derive(Debug)]
pub struct Recovery {
    /// The rehydrated engine, bit-identical to one that never crashed.
    pub engine: LiveEngine,
    /// Snapshot the recovery started from.
    pub snapshot_path: PathBuf,
    /// WAL records that snapshot already incorporated.
    pub snapshot_applied: u64,
    /// WAL byte offset where replay began (the snapshot's recorded
    /// compaction offset).
    pub tail_offset: u64,
    /// WAL tail records replayed on top of it.
    pub replayed: u64,
    /// Total valid records in the WAL.
    pub records: u64,
    /// The torn tail that was detected (and ignored), if any.
    pub torn: Option<TornTail>,
    /// Snapshots that failed validation and were skipped, newest first.
    pub snapshots_skipped: Vec<PathBuf>,
}

/// How [`recover_with`] picks its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverMode {
    /// Newest valid snapshot + WAL tail (the fast path).
    Latest,
    /// Genesis snapshot + full log replay (the slow baseline
    /// `repro store-bench` compares against).
    FullReplay,
}

/// Recovers the engine from `dir`: newest valid snapshot plus WAL
/// tail. Read-only — the torn tail, if any, is reported but the file
/// is left untouched (reopening via [`Store::resume`] truncates it).
///
/// # Errors
///
/// * [`StoreError::Io`] / [`StoreError::Corrupt`] from the WAL layer.
/// * [`StoreError::NoSnapshot`] if no snapshot in `dir` validates.
/// * [`StoreError::Replay`] if a logged record is rejected on replay —
///   impossible for a log written by [`Store`], so it indicates a
///   mismatched store directory.
pub fn recover(dir: &Path) -> Result<Recovery, StoreError> {
    recover_with(dir, RecoverMode::Latest)
}

/// [`recover`], with an explicit snapshot-selection mode.
///
/// # Errors
///
/// As for [`recover`].
pub fn recover_with(dir: &Path, mode: RecoverMode) -> Result<Recovery, StoreError> {
    let _span = ld_obs::span("recover.total_ns");
    let wal_path = dir.join(WAL_FILE);
    let mut skipped = Vec::new();
    let mut chosen = None;
    for (applied, path) in snapshots_desc(dir)? {
        if mode == RecoverMode::FullReplay && applied != 0 {
            continue;
        }
        let opened =
            Snapshot::open(&path).and_then(|s| Ok((s.applied(), s.wal_len(), s.to_engine()?)));
        let (snap_applied, wal_len, engine) = match opened {
            Ok((snap_applied, wal_len, engine)) if snap_applied == applied => {
                (snap_applied, wal_len, engine)
            }
            _ => {
                skipped.push(path);
                continue;
            }
        };
        // Seek straight to the tail the snapshot recorded: its own
        // checksum vouches for the state of the covered prefix, so only
        // the tail needs reading — the fast path is O(tail), not
        // O(log).
        let found = read_wal_tail(&wal_path, wal_len, snap_applied)?;
        if found.covered < snap_applied {
            // The log does not reach the offset the snapshot claims —
            // cannot happen for a store whose compaction fsyncs first;
            // treat as unusable.
            skipped.push(path);
            continue;
        }
        chosen = Some((snap_applied, wal_len, engine, path, found));
        break;
    }
    let Some((snapshot_applied, tail_offset, mut engine, snapshot_path, found)) = chosen else {
        return Err(StoreError::NoSnapshot {
            dir: dir.to_path_buf(),
        });
    };
    ld_obs::counter("recover.snapshots_skipped").add(skipped.len() as u64);
    let records = found.covered + found.scan.records();
    let torn = match &found.scan.tail {
        TailStatus::Clean => None,
        TailStatus::Torn(t) => Some(t.clone()),
    };

    let tail = &found.scan.updates[..];
    for (i, u) in tail.iter().enumerate() {
        engine.apply(*u).map_err(|r| StoreError::Replay {
            record: snapshot_applied + i as u64,
            reason: r.to_string(),
        })?;
    }
    ld_obs::counter("recover.replayed").add(tail.len() as u64);
    Ok(Recovery {
        engine,
        snapshot_path,
        snapshot_applied,
        tail_offset,
        replayed: tail.len() as u64,
        records,
        torn,
        snapshots_skipped: skipped,
    })
}

/// Recovers the engine from `dir` as of exactly `cap` records: newest
/// valid snapshot with `applied ≤ cap`, plus the WAL tail up to the
/// cut. Returns the recovery and the WAL byte offset of the
/// `cap`-record boundary (the truncation point
/// [`Store::resume_capped`] uses). Read-only, like [`recover`].
///
/// Snapshots past the cut are skipped silently — compaction may have
/// outrun the caller's consistency point, and genesis is always kept,
/// so a usable snapshot always exists in an intact store.
///
/// # Errors
///
/// As for [`recover`], plus [`StoreError::Corrupt`] if the log's valid
/// prefix holds fewer than `cap` records — the caller's cut came from
/// a barrier that fsynced first, so a shorter log is a damaged store.
pub fn recover_capped(dir: &Path, cap: u64) -> Result<(Recovery, u64), StoreError> {
    let _span = ld_obs::span("recover.capped_ns");
    let wal_path = dir.join(WAL_FILE);
    let mut skipped = Vec::new();
    let mut chosen = None;
    for (applied, path) in snapshots_desc(dir)? {
        if applied > cap {
            continue;
        }
        let opened =
            Snapshot::open(&path).and_then(|s| Ok((s.applied(), s.wal_len(), s.to_engine()?)));
        let (snap_applied, wal_len, engine) = match opened {
            Ok((snap_applied, wal_len, engine)) if snap_applied == applied => {
                (snap_applied, wal_len, engine)
            }
            _ => {
                skipped.push(path);
                continue;
            }
        };
        let found = read_wal_tail(&wal_path, wal_len, snap_applied)?;
        if found.covered < snap_applied {
            skipped.push(path);
            continue;
        }
        chosen = Some((snap_applied, wal_len, engine, path, found));
        break;
    }
    let Some((snapshot_applied, tail_offset, mut engine, snapshot_path, found)) = chosen else {
        return Err(StoreError::NoSnapshot {
            dir: dir.to_path_buf(),
        });
    };
    let records = found.covered + found.scan.records();
    if records < cap {
        return Err(StoreError::Corrupt {
            path: wal_path,
            reason: format!(
                "capped recovery needs {cap} records but the valid prefix holds {records}"
            ),
        });
    }
    let torn = match &found.scan.tail {
        TailStatus::Clean => None,
        TailStatus::Torn(t) => Some(t.clone()),
    };
    let take = (cap - snapshot_applied) as usize;
    let tail = &found.scan.updates[..take];
    // The cut's byte offset: the tail start plus the exact framed size
    // of every replayed record (framing is deterministic per update).
    let mut cut = tail_offset;
    let mut scratch = Vec::with_capacity(32);
    for (i, u) in tail.iter().enumerate() {
        engine.apply(*u).map_err(|r| StoreError::Replay {
            record: snapshot_applied + i as u64,
            reason: r.to_string(),
        })?;
        scratch.clear();
        cut += crate::wal::encode_record(u, &mut scratch) as u64;
    }
    ld_obs::counter("recover.replayed").add(tail.len() as u64);
    Ok((
        Recovery {
            engine,
            snapshot_path,
            snapshot_applied,
            tail_offset,
            replayed: tail.len() as u64,
            records,
            torn,
            snapshots_skipped: skipped,
        },
        cut,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::delegation::{Action, DelegationGraph};

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ld-store-store-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn fresh_engine(n: usize) -> LiveEngine {
        LiveEngine::new(vec![Action::Vote; n], vec![0.6; n]).unwrap()
    }

    fn drive(n: usize, updates: usize, seed: u64) -> Vec<Update> {
        use ld_live::workload::{Trace, TraceConfig};
        Trace::new(TraceConfig::balanced(n), seed)
            .unwrap()
            .take(updates)
            .collect()
    }

    fn assert_same(a: &LiveEngine, b: &LiveEngine) {
        assert_eq!(a.resolution(), b.resolution());
        assert_eq!(a.actions(), b.actions());
        assert_eq!(a.competences(), b.competences());
        assert_eq!(a.depths(), b.depths());
    }

    #[test]
    fn recover_equals_uncrashed_engine_with_and_without_snapshots() {
        let dir = tmp_dir("roundtrip");
        let n = 40;
        let mut engine = fresh_engine(n);
        let mut store = Store::create(
            &dir,
            &engine,
            StoreOptions {
                sync_every: 8,
                snapshot_every: 64,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for u in drive(n, 500, 17) {
            if engine.apply(u).is_ok() {
                store.append(&u).unwrap();
            }
            store.maybe_compact(&engine).unwrap();
        }
        store.sync().unwrap();
        assert!(store.last_snapshot() > 0, "compaction ran");
        drop(store);

        let fast = recover(&dir).unwrap();
        assert_same(&fast.engine, &engine);
        assert!(fast.snapshot_applied > 0, "fast path used a snapshot");
        assert!(fast.torn.is_none());
        fast.engine.self_check().unwrap();

        let slow = recover_with(&dir, RecoverMode::FullReplay).unwrap();
        assert_eq!(slow.snapshot_applied, 0);
        assert_eq!(slow.replayed, slow.records);
        assert_same(&slow.engine, &engine);

        // Bit-identical to a from-scratch resolve of the final actions.
        let scratch = DelegationGraph::new(fast.engine.actions().to_vec())
            .resolve()
            .unwrap();
        assert_eq!(scratch, fast.engine.resolution());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let n = 20;
        let mut engine = fresh_engine(n);
        let mut store = Store::create(&dir, &engine, StoreOptions::default()).unwrap();
        for u in drive(n, 200, 3) {
            if engine.apply(u).is_ok() {
                store.append(&u).unwrap();
            }
        }
        let snap = store.compact(&engine).unwrap();
        drop(store);
        // Flip a byte inside the newest snapshot.
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.snapshot_applied, 0, "fell back to genesis");
        assert_eq!(rec.snapshots_skipped.len(), 1);
        assert_same(&rec.engine, &engine);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_continues_appending_after_a_torn_tail() {
        let dir = tmp_dir("resume");
        let n = 20;
        let mut engine = fresh_engine(n);
        let mut store = Store::create(&dir, &engine, StoreOptions::default()).unwrap();
        let us = drive(n, 120, 5);
        for u in &us[..100] {
            if engine.apply(*u).is_ok() {
                store.append(u).unwrap();
            }
        }
        store.sync().unwrap();
        drop(store);
        // Tear the tail by hand.
        {
            use std::io::Write;
            let mut f = std::fs::File::options()
                .append(true)
                .open(dir.join(WAL_FILE))
                .unwrap();
            f.write_all(&[9, 0, 0, 0, 1, 2]).unwrap();
        }
        let (mut store, rec) = Store::resume(&dir, StoreOptions::default()).unwrap();
        assert!(rec.torn.is_some());
        let mut engine2 = rec.engine;
        assert_same(&engine2, &engine);
        for u in &us[100..] {
            if engine2.apply(*u).is_ok() {
                engine.apply(*u).unwrap();
                store.append(u).unwrap();
            }
        }
        store.sync().unwrap();
        drop(store);
        let back = recover(&dir).unwrap();
        assert_same(&back.engine, &engine2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capped_recovery_cuts_at_the_record_boundary_and_resumes() {
        let dir = tmp_dir("capped");
        let n = 30;
        let mut engine = fresh_engine(n);
        let mut store = Store::create(&dir, &engine, StoreOptions::default()).unwrap();
        let us = drive(n, 400, 11);
        let mut accepted = Vec::new();
        let mut snapshot_at_200_done = false;
        for u in &us {
            if engine.apply(*u).is_ok() {
                store.append(u).unwrap();
                accepted.push(*u);
            }
            // Compact once past 200 accepted records, so the newest
            // snapshot lies BEYOND the cap below and capped recovery
            // must fall back to an older snapshot.
            if !snapshot_at_200_done && accepted.len() >= 200 {
                store.compact(&engine).unwrap();
                snapshot_at_200_done = true;
            }
        }
        store.sync().unwrap();
        drop(store);

        let cap = 120u64;
        let (rec, _cut) = recover_capped(&dir, cap).unwrap();
        assert_eq!(rec.snapshot_applied, 0, "fell back to genesis");
        assert_eq!(rec.replayed, cap);
        // Bit-identical to replaying exactly the first `cap` accepted
        // updates from scratch.
        let mut prefix = fresh_engine(n);
        for u in &accepted[..cap as usize] {
            prefix.apply(*u).unwrap();
        }
        assert_same(&rec.engine, &prefix);

        // Resuming capped truncates the log: a plain recover now sees
        // exactly `cap` records, and appends continue from there.
        let (mut store, rec2) = Store::resume_capped(&dir, StoreOptions::default(), cap).unwrap();
        assert_same(&rec2.engine, &prefix);
        let extra = Update::Competence { voter: 0, p: 0.5 };
        prefix.apply(extra).unwrap();
        store.append(&extra).unwrap();
        store.sync().unwrap();
        drop(store);
        let back = recover(&dir).unwrap();
        assert_eq!(back.records, cap + 1);
        assert_same(&back.engine, &prefix);

        // A cap beyond the valid log is a typed corruption error.
        assert!(matches!(
            recover_capped(&dir, 10_000),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_store_is_a_typed_error() {
        let dir = tmp_dir("missing");
        assert!(matches!(recover(&dir), Err(StoreError::Io { .. })));
        std::fs::create_dir_all(&dir).unwrap();
        // A WAL but no snapshot at all.
        let clock = FaultClock::new(FaultPlan::none());
        WalWriter::create(&dir.join(WAL_FILE), clock, 0).unwrap();
        assert!(matches!(recover(&dir), Err(StoreError::NoSnapshot { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
