//! The append-only write-ahead log: CRC32-framed update records with
//! batched fsync and torn-tail recovery.
//!
//! # Framing
//!
//! A WAL file is a 16-byte header followed by back-to-back records:
//!
//! ```text
//! header  [magic: 8][version: u32][reserved: u32]
//! record  [len: u32][crc32(payload): u32][payload: len bytes]
//! ```
//!
//! Payloads are [`ld_live::codec`] update encodings (≤ 13 bytes today;
//! the scanner tolerates up to [`MAX_FRAME_PAYLOAD`] for forward
//! compatibility — anything larger is corruption by definition).
//!
//! # Torn tails
//!
//! The log is append-only and records are only ever written in full
//! frames, so after a crash exactly one invalid suffix can exist: the
//! torn remains of the last in-flight write (or bits corrupted later).
//! [`scan_records`] walks frames until the first record that is
//! truncated, oversized, CRC-mismatched, or undecodable, and reports it
//! as a typed [`TornTail`] — the valid prefix is always record-aligned,
//! and a partial record is never surfaced as an update. Recovery
//! truncates at [`WalScan::valid_len`] and the log is clean again.
//!
//! # Durability policy
//!
//! [`WalWriter`] writes each record (or batch — one `write(2)` per
//! [`WalWriter::append_batch`] call) immediately, so an OS crash loses
//! at most what the page cache held; an explicit `fsync` runs every
//! `sync_every` records (and on [`WalWriter::sync`]), bounding what a
//! *power* failure can lose to the configured window. Compaction
//! fsyncs before snapshotting, so a snapshot at record `k` implies the
//! log durably holds ≥ `k` records.

use crate::crc::crc32;
use crate::fault::{FaultClock, FaultFile};
use crate::mmap::MappedBytes;
use crate::StoreError;
use ld_live::codec::{self, CodecError};
use ld_live::Update;
use std::fs::File;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// WAL file magic ("LDWAL", a ^Z so `cat` stops, format byte).
pub const WAL_MAGIC: [u8; 8] = *b"LDWAL\x1a\x00\x01";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Bytes before the first record.
pub const WAL_HEADER_LEN: usize = 16;
/// Bytes of framing per record (`len` + `crc`).
pub const FRAME_HEADER_LEN: usize = 8;
/// Largest payload the scanner accepts; larger lengths are corruption.
pub const MAX_FRAME_PAYLOAD: u32 = 64;

/// Appends one framed record for `update` to `out`; returns the frame
/// size in bytes.
pub fn encode_record(update: &Update, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    let len = codec::encode_update(update, out) as u32;
    let crc = crc32(&out[start + FRAME_HEADER_LEN..]);
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Appends the WAL file header to `out`.
pub fn encode_wal_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
}

/// Why a record failed to parse — the first invalid record's diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer than [`FRAME_HEADER_LEN`] bytes remain.
    TruncatedHeader {
        /// Bytes that do remain.
        have: usize,
    },
    /// The frame header promises more payload than the file holds.
    TruncatedPayload {
        /// Promised payload length.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The length field exceeds [`MAX_FRAME_PAYLOAD`].
    OversizedLength(u32),
    /// The stored CRC32 does not match the payload.
    CrcMismatch {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum of the payload as found.
        computed: u32,
    },
    /// The CRC held but the payload is not a valid update encoding.
    Malformed(CodecError),
}

impl std::fmt::Display for TornReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornReason::TruncatedHeader { have } => {
                write!(f, "truncated frame header ({have} bytes remain)")
            }
            TornReason::TruncatedPayload { need, have } => {
                write!(f, "truncated payload (need {need} bytes, have {have})")
            }
            TornReason::OversizedLength(len) => write!(f, "oversized record length {len}"),
            TornReason::CrcMismatch { stored, computed } => write!(
                f,
                "crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            TornReason::Malformed(e) => write!(f, "undecodable payload: {e}"),
        }
    }
}

/// A typed torn tail: the log is valid up to byte `at`, then `trailing`
/// bytes fail to parse for `reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset (within the scanned region) of the first invalid
    /// record — always a record boundary.
    pub at: usize,
    /// Invalid bytes from `at` to the end of the region.
    pub trailing: usize,
    /// What was wrong with the record starting at `at`.
    pub reason: TornReason,
}

impl std::fmt::Display for TornTail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "torn tail at byte {} ({} trailing bytes): {}",
            self.at, self.trailing, self.reason
        )
    }
}

/// Whether a scan consumed the whole region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailStatus {
    /// The region ends exactly on a record boundary.
    Clean,
    /// An invalid suffix was found (and excluded from the updates).
    Torn(TornTail),
}

impl TailStatus {
    /// True when no invalid suffix was found.
    pub fn is_clean(&self) -> bool {
        matches!(self, TailStatus::Clean)
    }
}

/// The result of scanning a record region: the decoded valid prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// Every fully-valid record, in log order.
    pub updates: Vec<Update>,
    /// Byte length of the valid record-aligned prefix.
    pub valid_len: usize,
    /// Whether anything invalid followed it.
    pub tail: TailStatus,
}

impl WalScan {
    /// Number of valid records.
    pub fn records(&self) -> u64 {
        self.updates.len() as u64
    }
}

/// Scans a record region (a WAL body, *without* the file header),
/// decoding the longest valid record-aligned prefix.
///
/// Never panics and never yields a partial record, for any byte string
/// whatsoever — the property `tests/proptest_torn_tail.rs` pins at
/// every truncation offset of valid logs and on arbitrary junk.
pub fn scan_records(body: &[u8]) -> WalScan {
    let mut updates = Vec::new();
    let mut at = 0usize;
    let torn = |at: usize, reason: TornReason| {
        TailStatus::Torn(TornTail {
            at,
            trailing: body.len() - at,
            reason,
        })
    };
    let tail = loop {
        if at == body.len() {
            break TailStatus::Clean;
        }
        let rest = &body[at..];
        if rest.len() < FRAME_HEADER_LEN {
            break torn(at, TornReason::TruncatedHeader { have: rest.len() });
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_PAYLOAD {
            break torn(at, TornReason::OversizedLength(len));
        }
        let stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let need = len as usize;
        let have = rest.len() - FRAME_HEADER_LEN;
        if have < need {
            break torn(at, TornReason::TruncatedPayload { need, have });
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + need];
        let computed = crc32(payload);
        if computed != stored {
            break torn(at, TornReason::CrcMismatch { stored, computed });
        }
        match codec::decode_update(payload) {
            Ok(u) => updates.push(u),
            Err(e) => break torn(at, TornReason::Malformed(e)),
        }
        at += FRAME_HEADER_LEN + need;
    };
    WalScan {
        updates,
        valid_len: at,
        tail,
    }
}

/// A scanned WAL *file*: header handling plus the body scan.
#[derive(Debug, Clone, PartialEq)]
pub struct FileScan {
    /// The body scan (offsets relative to the end of the header). With
    /// a tail offset, `scan.updates` holds only the records *after*
    /// the snapshot-covered prefix.
    pub scan: WalScan,
    /// Records before the scanned region, vouched for by the snapshot
    /// that supplied the tail offset; `0` for a plain [`read_wal`].
    pub covered: u64,
    /// Valid file length in bytes (header + valid body prefix); the
    /// truncation point for reopening after a crash.
    pub file_valid_len: u64,
    /// The file ends before the header does (a crash during creation);
    /// the whole file is rewritten on reopen.
    pub header_torn: bool,
}

/// Reads and scans a WAL file (mmap-backed under the `mmap` feature).
///
/// # Errors
///
/// [`StoreError::Io`] if the file cannot be opened and
/// [`StoreError::Corrupt`] if a *complete* header carries the wrong
/// magic or version — that is a different file, not a torn one. A
/// short header is reported via [`FileScan::header_torn`], not an
/// error: it is a legitimate crash point.
pub fn read_wal(path: &Path) -> Result<FileScan, StoreError> {
    read_wal_tail(path, WAL_HEADER_LEN as u64, 0)
}

/// [`read_wal`], starting the validated scan at byte `tail_at` and
/// trusting that `covered` records precede it.
///
/// Both values come from a CRC-validated snapshot: compaction records
/// the WAL byte length alongside the record count, and the snapshot's
/// own checksum vouches for the state those records produced — so the
/// covered prefix needs neither re-checksumming nor even reading, and
/// snapshot recovery is O(tail) instead of O(log). Only the tail is
/// validated; a `tail_at` outside the file (a snapshot from a
/// different or shorter log) yields an empty scan with `covered = 0`,
/// which callers treat as "this snapshot is unusable" and fall back.
///
/// # Errors
///
/// As [`read_wal`].
pub fn read_wal_tail(path: &Path, tail_at: u64, covered: u64) -> Result<FileScan, StoreError> {
    let bytes = MappedBytes::open(path).map_err(StoreError::io("open wal", path))?;
    let bytes = bytes.as_slice();
    if bytes.len() < WAL_HEADER_LEN {
        return Ok(FileScan {
            scan: WalScan {
                updates: Vec::new(),
                valid_len: 0,
                tail: TailStatus::Torn(TornTail {
                    at: 0,
                    trailing: bytes.len(),
                    reason: TornReason::TruncatedHeader { have: bytes.len() },
                }),
            },
            covered: 0,
            file_valid_len: 0,
            header_torn: true,
        });
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            reason: "bad WAL magic".to_string(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(StoreError::Corrupt {
            path: path.to_path_buf(),
            reason: format!("unsupported WAL version {version} (this build reads {WAL_VERSION})"),
        });
    }
    let in_range = usize::try_from(tail_at)
        .ok()
        .filter(|&t| (WAL_HEADER_LEN..=bytes.len()).contains(&t));
    let Some(tail_at) = in_range else {
        return Ok(FileScan {
            scan: WalScan {
                updates: Vec::new(),
                valid_len: 0,
                tail: TailStatus::Clean,
            },
            covered: 0,
            file_valid_len: WAL_HEADER_LEN as u64,
            header_torn: false,
        });
    };
    let mut scan = scan_records(&bytes[tail_at..]);
    // Rebase scan offsets from the tail to the body start, so callers
    // see the same coordinates a full scan would report.
    let base = tail_at - WAL_HEADER_LEN;
    scan.valid_len += base;
    if let TailStatus::Torn(t) = &mut scan.tail {
        t.at += base;
    }
    let file_valid_len = (WAL_HEADER_LEN + scan.valid_len) as u64;
    Ok(FileScan {
        scan,
        covered,
        file_valid_len,
        header_torn: false,
    })
}

/// The append half of the log: immediate writes, batched fsync, all
/// I/O routed through the store's [`FaultClock`].
#[derive(Debug)]
pub struct WalWriter {
    file: FaultFile,
    path: PathBuf,
    records: u64,
    len_bytes: u64,
    since_sync: u64,
    sync_every: u64,
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Creates a fresh log at `path` (truncating any existing file):
    /// header, fsync, parent-directory fsync.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure (including injected
    /// faults).
    pub fn create(
        path: &Path,
        clock: Arc<FaultClock>,
        sync_every: u64,
    ) -> Result<WalWriter, StoreError> {
        let ioerr = StoreError::io("create wal", path);
        let file = File::options()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)
            .map_err(&ioerr)?;
        let mut file = FaultFile::new(file, clock);
        let mut header = Vec::with_capacity(WAL_HEADER_LEN);
        encode_wal_header(&mut header);
        file.write_all(&header).map_err(&ioerr)?;
        file.sync_data().map_err(&ioerr)?;
        crate::fsync_parent_dir(path).map_err(&ioerr)?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            len_bytes: WAL_HEADER_LEN as u64,
            since_sync: 0,
            sync_every,
            scratch: Vec::with_capacity(4096),
        })
    }

    /// Reopens an existing log for appending: scans it, truncates any
    /// torn tail (rewriting the header if creation itself was torn),
    /// and positions at the end of the valid prefix.
    ///
    /// Returns the writer plus the pre-truncation scan, so the caller
    /// knows what survived.
    ///
    /// # Errors
    ///
    /// Propagates [`read_wal`] errors and [`StoreError::Io`].
    pub fn open_for_append(
        path: &Path,
        clock: Arc<FaultClock>,
        sync_every: u64,
    ) -> Result<(WalWriter, FileScan), StoreError> {
        Self::open_for_append_trusting(path, clock, sync_every, WAL_HEADER_LEN as u64, 0)
    }

    /// [`WalWriter::open_for_append`], validating only the tail from
    /// byte `tail_at` and trusting that `covered` records precede it —
    /// both from a CRC-validated snapshot (see [`read_wal_tail`]).
    /// Keeps the truncation point consistent with what snapshot
    /// recovery just reported.
    ///
    /// # Errors
    ///
    /// Propagates [`read_wal`] errors and [`StoreError::Io`].
    pub fn open_for_append_trusting(
        path: &Path,
        clock: Arc<FaultClock>,
        sync_every: u64,
        tail_at: u64,
        covered: u64,
    ) -> Result<(WalWriter, FileScan), StoreError> {
        let found = read_wal_tail(path, tail_at, covered)?;
        let ioerr = StoreError::io("reopen wal", path);
        let file = File::options()
            .read(true)
            .write(true)
            .open(path)
            .map_err(&ioerr)?;
        let mut file = FaultFile::new(file, clock);
        if found.header_torn {
            file.set_len(0).map_err(&ioerr)?;
            file.seek(SeekFrom::Start(0)).map_err(&ioerr)?;
            let mut header = Vec::with_capacity(WAL_HEADER_LEN);
            encode_wal_header(&mut header);
            file.write_all(&header).map_err(&ioerr)?;
            file.sync_data().map_err(&ioerr)?;
        } else {
            file.set_len(found.file_valid_len).map_err(&ioerr)?;
            file.seek(SeekFrom::Start(found.file_valid_len))
                .map_err(&ioerr)?;
        }
        let len_bytes = if found.header_torn {
            WAL_HEADER_LEN as u64
        } else {
            found.file_valid_len
        };
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                records: found.covered + found.scan.records(),
                len_bytes,
                since_sync: 0,
                sync_every,
                scratch: Vec::with_capacity(4096),
            },
            found,
        ))
    }

    /// Appends one record (one `write(2)`), fsyncing if the batching
    /// window filled.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] — after which the log may hold a torn tail;
    /// that is exactly the state recovery handles.
    pub fn append(&mut self, update: &Update) -> Result<(), StoreError> {
        self.append_batch(std::slice::from_ref(update))
    }

    /// Appends a batch of records as a single `write(2)`, fsyncing if
    /// the batching window filled.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; on failure none, some, or a torn prefix of
    /// the batch may be on disk — recovery truncates to the last whole
    /// record either way.
    pub fn append_batch(&mut self, updates: &[Update]) -> Result<(), StoreError> {
        if updates.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        for u in updates {
            encode_record(u, &mut self.scratch);
        }
        let bytes = self.scratch.len() as u64;
        let write = self.file.write_all(&self.scratch);
        write.map_err(StoreError::io("append wal", &self.path))?;
        ld_obs::counter("wal.appends").add(updates.len() as u64);
        ld_obs::counter("wal.bytes").add(bytes);
        self.records += updates.len() as u64;
        self.len_bytes += bytes;
        self.since_sync += updates.len() as u64;
        if self.sync_every > 0 && self.since_sync >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an fsync now.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let _span = ld_obs::span("wal.fsync_ns");
        self.file
            .sync_data()
            .map_err(StoreError::io("fsync wal", &self.path))?;
        ld_obs::counter("wal.fsyncs").incr();
        self.since_sync = 0;
        Ok(())
    }

    /// Records appended so far (including any recovered prefix).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Current file length in bytes (header plus every appended frame)
    /// — the tail offset compaction stamps into its snapshot.
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort durability on clean shutdown; errors are already
        // survivable by design (recovery truncates).
        if self.since_sync > 0 {
            self.file.sync_data().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn updates() -> Vec<Update> {
        vec![
            Update::Delegate {
                voter: 0,
                target: 3,
            },
            Update::Vote { voter: 1 },
            Update::Abstain { voter: 2 },
            Update::Competence { voter: 3, p: 0.75 },
            Update::Delegate {
                voter: 4,
                target: 0,
            },
        ]
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ld-store-wal-{}-{name}", std::process::id()))
    }

    #[test]
    fn encode_scan_round_trip() {
        let us = updates();
        let mut body = Vec::new();
        for u in &us {
            encode_record(u, &mut body);
        }
        let scan = scan_records(&body);
        assert_eq!(scan.updates, us);
        assert_eq!(scan.valid_len, body.len());
        assert!(scan.tail.is_clean());
    }

    #[test]
    fn every_truncation_yields_an_aligned_prefix() {
        let us = updates();
        let mut body = Vec::new();
        let mut boundaries = vec![0usize];
        for u in &us {
            encode_record(u, &mut body);
            boundaries.push(body.len());
        }
        for cut in 0..=body.len() {
            let scan = scan_records(&body[..cut]);
            let k = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.updates, us[..k], "cut at {cut}");
            assert_eq!(scan.valid_len, boundaries[k]);
            assert_eq!(scan.tail.is_clean(), cut == boundaries[k]);
        }
    }

    #[test]
    fn corruption_is_caught_by_crc() {
        let us = updates();
        let mut body = Vec::new();
        for u in &us {
            encode_record(u, &mut body);
        }
        for i in 0..body.len() {
            let mut bent = body.clone();
            bent[i] ^= 0x10;
            let scan = scan_records(&bent);
            // The flipped bit must be noticed: scanning corrupted bytes
            // never reproduces the original sequence (usually the scan
            // stops early with a typed torn tail).
            assert_ne!(scan.updates, us, "flip at byte {i} went unnoticed");
        }
    }

    #[test]
    fn junk_never_panics() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let len = rng.gen_range(0..200);
            let junk: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let scan = scan_records(&junk);
            assert!(scan.valid_len <= junk.len());
        }
    }

    #[test]
    fn writer_appends_and_reopens_truncating_torn_tail() {
        let path = tmp("writer.wal");
        let clock = FaultClock::new(FaultPlan::none());
        let us = updates();
        {
            let mut w = WalWriter::create(&path, Arc::clone(&clock), 2).unwrap();
            for u in &us {
                w.append(u).unwrap();
            }
            assert_eq!(w.records(), 5);
        }
        // Simulate a torn in-flight record: append garbage half-frame.
        {
            use std::io::Write;
            let mut f = File::options().append(true).open(&path).unwrap();
            f.write_all(&[13, 0, 0, 0, 0xde, 0xad]).unwrap();
        }
        let (w, found) = WalWriter::open_for_append(&path, clock, 2).unwrap();
        assert_eq!(found.scan.updates, us);
        assert!(!found.scan.tail.is_clean());
        assert_eq!(w.records(), 5);
        drop(w);
        // After truncation the file scans clean.
        let rescan = read_wal(&path).unwrap();
        assert!(rescan.scan.tail.is_clean());
        assert_eq!(rescan.scan.updates, us);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_header_is_reported_and_rewritten() {
        let path = tmp("tornheader.wal");
        std::fs::write(&path, &WAL_MAGIC[..5]).unwrap();
        let found = read_wal(&path).unwrap();
        assert!(found.header_torn);
        assert_eq!(found.file_valid_len, 0);
        let clock = FaultClock::new(FaultPlan::none());
        let (mut w, _) = WalWriter::open_for_append(&path, clock, 0).unwrap();
        w.append(&Update::Vote { voter: 0 }).unwrap();
        drop(w);
        let rescan = read_wal(&path).unwrap();
        assert!(!rescan.header_torn);
        assert_eq!(rescan.scan.records(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_corrupt_not_torn() {
        let path = tmp("magic.wal");
        std::fs::write(&path, b"NOTAWAL!\x01\x00\x00\x00\x00\x00\x00\x00").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }
}
