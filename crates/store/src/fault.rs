//! Deterministic crash-point fault injection.
//!
//! Every durable write the store performs — WAL record writes, fsyncs,
//! snapshot section writes — goes through a [`FaultFile`], which counts
//! I/O operations on a store-wide [`FaultClock`] and injects exactly
//! one planned fault when the counter reaches the plan's trigger:
//!
//! * [`FaultKind::FailIo`] — the operation fails without touching the
//!   file (a full-stop crash before the write).
//! * [`FaultKind::ShortWrite`] — half the buffer lands, then the
//!   operation fails (kill -9 mid-`write`, the torn-tail case).
//! * [`FaultKind::CorruptByte`] — the write *succeeds* but one bit is
//!   flipped in flight (latent media corruption, caught later by CRC).
//!
//! Plans are plain data and derivable from the workspace's seeded
//! stream machinery ([`FaultPlan::seeded`] uses
//! [`ld_prob::rng::stream_rng`]), so "crash at the k-th I/O" is a
//! reproducible point in a test matrix, not a flaky race.

use rand::Rng;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What happens at the planned I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails cleanly before writing anything.
    FailIo,
    /// Half the buffer is written, then the operation fails.
    ShortWrite,
    /// The write succeeds with one bit flipped in the buffer.
    CorruptByte,
}

impl FaultKind {
    /// Stable identifier, as accepted by `--crash-at` on the CLI.
    pub fn id(self) -> &'static str {
        match self {
            FaultKind::FailIo => "fail",
            FaultKind::ShortWrite => "short-write",
            FaultKind::CorruptByte => "corrupt",
        }
    }

    /// Parses a fault-kind identifier.
    pub fn parse(s: &str) -> Option<FaultKind> {
        [
            FaultKind::FailIo,
            FaultKind::ShortWrite,
            FaultKind::CorruptByte,
        ]
        .into_iter()
        .find(|k| k.id() == s)
    }
}

/// A deterministic plan: inject `kind` at the `at`-th I/O operation
/// (0-based, counted store-wide across WAL and snapshot files).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Operation index at which the fault fires; `u64::MAX` = never.
    pub at: u64,
    /// The injected behaviour.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// No fault: every operation passes through.
    pub fn none() -> Self {
        FaultPlan {
            at: u64::MAX,
            kind: FaultKind::FailIo,
        }
    }

    /// Fail the `k`-th I/O operation outright.
    pub fn fail_at(k: u64) -> Self {
        FaultPlan {
            at: k,
            kind: FaultKind::FailIo,
        }
    }

    /// Tear the `k`-th write in half.
    pub fn short_write_at(k: u64) -> Self {
        FaultPlan {
            at: k,
            kind: FaultKind::ShortWrite,
        }
    }

    /// Flip one bit in the `k`-th write.
    pub fn corrupt_at(k: u64) -> Self {
        FaultPlan {
            at: k,
            kind: FaultKind::CorruptByte,
        }
    }

    /// A reproducible plan drawn from stream `stream` of `master`:
    /// uniform trigger in `[0, max_ops)`, uniform kind. The same
    /// `(master, stream, max_ops)` always yields the same plan.
    pub fn seeded(master: u64, stream: u64, max_ops: u64) -> Self {
        let mut rng = ld_prob::rng::stream_rng(master, stream ^ 0x00FA_017F_A017);
        let kind = match rng.gen_range(0..3u8) {
            0 => FaultKind::FailIo,
            1 => FaultKind::ShortWrite,
            _ => FaultKind::CorruptByte,
        };
        FaultPlan {
            at: rng.gen_range(0..max_ops.max(1)),
            kind,
        }
    }

    /// Whether this plan ever fires.
    pub fn is_armed(&self) -> bool {
        self.at != u64::MAX
    }
}

/// The store-wide operation counter a plan is evaluated against.
///
/// Shared (`Arc`) between the WAL writer and the snapshot writer so
/// "the k-th I/O" means the k-th durable operation of the whole store,
/// whichever file it lands on. A plan fires at most once.
#[derive(Debug)]
pub struct FaultClock {
    plan: FaultPlan,
    ops: AtomicU64,
    fired: AtomicBool,
}

impl FaultClock {
    /// A clock executing `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultClock {
            plan,
            ops: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        })
    }

    /// Total I/O operations observed so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Whether the planned fault has fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Advances the counter by one operation and reports the fault to
    /// inject, if this is the planned one.
    fn tick(&self) -> Option<FaultKind> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if op == self.plan.at && !self.fired.swap(true, Ordering::Relaxed) {
            Some(self.plan.kind)
        } else {
            None
        }
    }
}

fn injected(kind: FaultKind, op: &str) -> io::Error {
    io::Error::other(format!("injected fault: {} at {op}", kind.id()))
}

/// A file whose writes and fsyncs pass through a [`FaultClock`].
#[derive(Debug)]
pub struct FaultFile {
    file: File,
    clock: Arc<FaultClock>,
}

impl FaultFile {
    /// Wraps `file` under `clock`.
    pub fn new(file: File, clock: Arc<FaultClock>) -> Self {
        FaultFile { file, clock }
    }

    /// Writes the whole buffer as one counted operation, injecting the
    /// planned fault if this is the trigger operation.
    pub fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.clock.tick() {
            None => self.file.write_all(buf),
            Some(FaultKind::FailIo) => Err(injected(FaultKind::FailIo, "write")),
            Some(FaultKind::ShortWrite) => {
                self.file.write_all(&buf[..buf.len() / 2])?;
                // Make the torn bytes durable so recovery really sees
                // them, then report the crash.
                self.file.sync_data().ok();
                Err(injected(FaultKind::ShortWrite, "write"))
            }
            Some(FaultKind::CorruptByte) => {
                if buf.is_empty() {
                    return self.file.write_all(buf);
                }
                let mut bent = buf.to_vec();
                let mid = bent.len() / 2;
                bent[mid] ^= 0x01;
                self.file.write_all(&bent)
            }
        }
    }

    /// Flushes file contents to stable storage as one counted
    /// operation. A planned [`FaultKind::CorruptByte`] on an fsync
    /// degrades to a plain failure (there is no buffer to corrupt).
    pub fn sync_data(&mut self) -> io::Result<()> {
        match self.clock.tick() {
            None => self.file.sync_data(),
            Some(kind) => Err(injected(kind, "fsync")),
        }
    }

    /// Truncates or extends the file (not counted: recovery-side only).
    pub fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    /// Seeks (not counted: positioning, not durability).
    pub fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.file.seek(pos)
    }

    /// Reads into `buf` (not counted: reads cannot lose data).
    pub fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.file.read_exact(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ld-store-fault-{}-{name}", std::process::id()))
    }

    fn open(path: &PathBuf, clock: &Arc<FaultClock>) -> FaultFile {
        let file = File::options()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(path)
            .unwrap();
        FaultFile::new(file, Arc::clone(clock))
    }

    #[test]
    fn unarmed_plan_is_transparent() {
        let path = tmp("none.bin");
        let clock = FaultClock::new(FaultPlan::none());
        let mut f = open(&path, &clock);
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        assert_eq!(clock.ops(), 2);
        assert!(!clock.fired());
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_leaves_half_the_buffer() {
        let path = tmp("short.bin");
        let clock = FaultClock::new(FaultPlan::short_write_at(1));
        let mut f = open(&path, &clock);
        f.write_all(b"aaaa").unwrap();
        let err = f.write_all(b"bbbbbbbb").unwrap_err();
        assert!(err.to_string().contains("short-write"), "{err}");
        assert!(clock.fired());
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaabbbb");
        // The plan fires once; later writes pass.
        f.write_all(b"cc").unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_flips_exactly_one_bit() {
        let path = tmp("corrupt.bin");
        let clock = FaultClock::new(FaultPlan::corrupt_at(0));
        let mut f = open(&path, &clock);
        f.write_all(&[0u8; 9]).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        let flipped: u32 = on_disk.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit differs: {on_disk:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_plans_are_reproducible_and_varied() {
        let a = FaultPlan::seeded(7, 3, 100);
        assert_eq!(a, FaultPlan::seeded(7, 3, 100));
        assert!(a.at < 100);
        let kinds: std::collections::BTreeSet<&str> = (0..64)
            .map(|s| FaultPlan::seeded(7, s, 100).kind.id())
            .collect();
        assert_eq!(kinds.len(), 3, "all kinds appear across streams");
    }

    #[test]
    fn fail_on_fsync_is_injected() {
        let path = tmp("fsync.bin");
        let clock = FaultClock::new(FaultPlan::fail_at(1));
        let mut f = open(&path, &clock);
        f.write_all(b"x").unwrap();
        assert!(f.sync_data().is_err());
        std::fs::remove_file(&path).ok();
    }
}
