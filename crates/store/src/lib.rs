//! # `ld-store` — crash-safe durable state for the live engine
//!
//! The rest of the workspace keeps all state in RAM (plus JSON
//! checkpoints of *experiment* progress). This crate makes the
//! delegation stream itself durable, production-log style:
//!
//! * [`wal`] — an append-only write-ahead log of
//!   [`Update`](ld_live::Update) events: length-prefixed,
//!   CRC32-framed records ([`ld_live::codec`] payloads), immediate
//!   writes with batched fsync, and typed torn-tail detection that
//!   truncates at the last whole record after a crash.
//! * [`snapshot`] — periodic compaction into a binary image of the
//!   engine's resolved state (actions, competencies, depths, and the
//!   `ld-core` CSR arena verbatim) that memory-maps back into
//!   [`LiveEngine`](ld_live::LiveEngine) /
//!   [`CsrForest`](ld_core::csr::CsrForest) through validated flat
//!   passes — no JSON, no resolver rerun.
//! * [`store`] — the two composed: `snapshot-<k>.bin` + WAL tail,
//!   with [`recover`] producing an engine bit-identical to one that
//!   never crashed, and [`Store::resume`] reopening for appends.
//! * [`fault`] — deterministic crash-point injection
//!   ([`FaultPlan`]: fail / short-write / corrupt at the k-th I/O,
//!   seedable from the workspace stream-RNG machinery), which is how
//!   the crash matrix in `tests/crash_recovery.rs` and the
//!   `wal-crash-oracle` conformance check stay exhaustive and
//!   reproducible instead of flaky.
//! * [`crc`] / [`mmap`] — the supporting pieces: a hand-rolled
//!   IEEE CRC32 (the offline build bakes in no checksum crate) and a
//!   feature-gated read path (`mmap` on: libc `mmap(2)` FFI; off: a
//!   dependency-free `std::fs::read` fallback with identical
//!   semantics).
//!
//! Driven from the CLI as `repro recover` / `repro store-bench`, and
//! by `repro stress --wal <dir>` which tees the churn workload's
//! accepted updates through a store so a `kill -9` mid-run is a
//! recoverable event, not a lost one.

#![warn(missing_docs)]

pub mod crc;
pub mod fault;
pub mod mmap;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use fault::{FaultClock, FaultKind, FaultPlan};
pub use snapshot::Snapshot;
pub use store::{
    recover, recover_capped, recover_with, RecoverMode, Recovery, Store, StoreOptions, WAL_FILE,
};
pub use wal::{TailStatus, TornReason, TornTail, WalScan};

use std::io;
use std::path::{Path, PathBuf};

/// Errors from the durable-state layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A filesystem operation failed (possibly an injected fault).
    Io {
        /// What was being attempted.
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A file exists but fails structural validation (bad magic or
    /// version, geometry mismatch, CRC failure, rejected rehydration).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
    /// No snapshot in the directory validates; recovery has no base.
    NoSnapshot {
        /// The store directory.
        dir: PathBuf,
    },
    /// A logged record was rejected on replay — the log and directory
    /// do not belong together.
    Replay {
        /// Zero-based record index in the WAL.
        record: u64,
        /// The engine's rejection reason.
        reason: String,
    },
}

impl StoreError {
    /// Adapter: `map_err(StoreError::io("append wal", &path))`.
    pub(crate) fn io<'a>(
        op: &'static str,
        path: &'a Path,
    ) -> impl Fn(io::Error) -> StoreError + 'a {
        move |source| StoreError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }

    /// Whether this error came from an injected fault (used by crash
    /// tests to tell planned crashes from real bugs).
    pub fn is_injected(&self) -> bool {
        matches!(self, StoreError::Io { source, .. }
            if source.to_string().contains("injected fault"))
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "{op} ({}): {source}", path.display())
            }
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt store file {}: {reason}", path.display())
            }
            StoreError::NoSnapshot { dir } => {
                write!(f, "no valid snapshot in {}", dir.display())
            }
            StoreError::Replay { record, reason } => {
                write!(f, "record {record} rejected on replay: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Fsyncs the parent directory of `path`, making a rename or create
/// durable. A no-op on platforms where directories cannot be opened.
pub(crate) fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    let Some(parent) = path.parent() else {
        return Ok(());
    };
    let parent = if parent.as_os_str().is_empty() {
        Path::new(".")
    } else {
        parent
    };
    match std::fs::File::open(parent) {
        Ok(d) => d.sync_all(),
        // Opening a directory read-only can fail on exotic platforms;
        // the data-file fsync already happened, so degrade gracefully.
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = StoreError::io("probe", Path::new("/nope/x"))(io::Error::other("boom"));
        assert!(e.to_string().contains("probe"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.is_injected());
        let e = StoreError::io("probe", Path::new("x"))(io::Error::other("injected fault: fail"));
        assert!(e.is_injected());
        let e = StoreError::NoSnapshot {
            dir: PathBuf::from("/tmp/d"),
        };
        assert!(e.to_string().contains("snapshot"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<StoreError>();
    }
}
