//! Binary snapshots: the compacted form of the event log.
//!
//! A snapshot freezes a [`LiveEngine`]'s full resolved state — inputs
//! *and* outputs — as flat little-endian sections, CRC32-sealed:
//!
//! ```text
//! [magic "LDSNAPS1": 8]
//! [version: u32][flags: u32]
//! [n: u64][applied: u64][discarded: u64][delegators: u64][wal_len: u64]
//! [actions:    n × u32]                 (VOTE / ABSTAIN sentinels, else target)
//! [competence: n × u64]                 (f64 bit patterns)
//! [depth:      n × u32]                 (chain depth in edges)
//! [arena:      (2n+1+tallied) × u32]    (the ld-core CSR arena verbatim)
//! [crc32 of everything after the magic: u32]
//! ```
//!
//! `applied` is the number of WAL records the snapshot incorporates —
//! the file is named `snapshot-<applied>.bin` — and `wal_len` is the
//! WAL byte length at compaction time, so recovery seeks straight to
//! the tail instead of walking `applied` frames. Because the resolved view (`sink_of` via
//! the arena, `depth`) is stored alongside the inputs, rehydration is
//! [`LiveEngine::from_resolved_parts`] /
//! [`CsrForest::from_raw_arena`] — flat `O(n)` validation passes, no
//! resolver run, no JSON.
//!
//! Writes are atomic and durable: temp file, streamed chunked writes
//! through the store's [`FaultClock`], fsync, rename into place, fsync
//! of the parent directory. A crash anywhere in that sequence leaves
//! either the old snapshot set or the new one — never a half-file
//! under the live name (and a half-written temp file fails the CRC
//! check, so even a confused reader rejects it).

use crate::crc::{crc32, Crc32};
use crate::fault::{FaultClock, FaultFile};
use crate::mmap::MappedBytes;
use crate::StoreError;
use ld_core::csr::{CsrForest, DISCARDED};
use ld_core::delegation::Action;
use ld_live::LiveEngine;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot file magic.
pub const SNAP_MAGIC: [u8; 8] = *b"LDSNAPS1";
/// Current snapshot format version.
pub const SNAP_VERSION: u32 = 1;
/// Sentinel for [`Action::Vote`] in the actions section.
pub const ACTION_VOTE: u32 = u32::MAX;
/// Sentinel for [`Action::Abstain`] in the actions section.
pub const ACTION_ABSTAIN: u32 = u32::MAX - 1;

/// Fixed bytes before the variable sections (magic through
/// `wal_len`).
const FIXED_HEADER: usize = 8 + 4 + 4 + 8 * 5;

/// Chunk size for streamed section writes: bounds both peak memory and
/// the granularity of injected faults without making the I/O-op count
/// depend on timing.
const WRITE_CHUNK: usize = 1 << 22;

/// The file name for a snapshot incorporating `applied` WAL records
/// (zero-padded so lexical order is numeric order).
pub fn snapshot_file_name(applied: u64) -> String {
    format!("snapshot-{applied:020}.bin")
}

/// Parses a snapshot file name back to its `applied` count.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

fn push_u32s(buf: &mut Vec<u8>, it: impl Iterator<Item = u32>) {
    for v in it {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Builds the CSR arena for the engine's current state by counting
/// sort over `sink_of` — `O(n)`, no chain chased.
fn engine_arena(engine: &LiveEngine) -> Vec<u32> {
    let n = engine.n();
    let tallied = engine.tallied();
    let mut arena = vec![0u32; 2 * n + 1 + tallied];
    let (sink_of, rest) = arena.split_at_mut(n);
    let (offsets, members) = rest.split_at_mut(n + 1);
    for (v, slot) in sink_of.iter_mut().enumerate() {
        *slot = match engine.sink_of(v) {
            Some(s) => s as u32,
            None => DISCARDED,
        };
    }
    for &s in sink_of.iter() {
        if s != DISCARDED {
            offsets[s as usize + 1] += 1;
        }
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (v, &s) in sink_of.iter().enumerate() {
        if s != DISCARDED {
            members[cursor[s as usize] as usize] = v as u32;
            cursor[s as usize] += 1;
        }
    }
    arena
}

fn write_chunked(file: &mut FaultFile, crc: &mut Crc32, bytes: &[u8]) -> std::io::Result<()> {
    for chunk in bytes.chunks(WRITE_CHUNK.max(1)) {
        file.write_all(chunk)?;
        crc.update(chunk);
    }
    Ok(())
}

/// Writes `engine`'s state as `snapshot-<applied>.bin` in `dir`,
/// atomically and durably; returns the final path.
///
/// # Errors
///
/// [`StoreError::Io`] on any filesystem failure (including injected
/// faults) — in which case the temp file may linger but the live
/// snapshot set is untouched.
pub fn write_snapshot(
    dir: &Path,
    engine: &LiveEngine,
    applied: u64,
    wal_len: u64,
    clock: &Arc<FaultClock>,
) -> Result<PathBuf, StoreError> {
    let _span = ld_obs::span("snapshot.save_ns");
    let n = engine.n();
    let path = dir.join(snapshot_file_name(applied));
    let tmp = path.with_extension("bin.tmp");
    let ioerr = StoreError::io("write snapshot", &tmp);
    let file = File::options()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(&ioerr)?;
    let mut file = FaultFile::new(file, Arc::clone(clock));
    let mut crc = Crc32::new();

    let mut head = Vec::with_capacity(FIXED_HEADER);
    head.extend_from_slice(&SNAP_MAGIC);
    head.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    head.extend_from_slice(&0u32.to_le_bytes());
    for meta in [
        n as u64,
        applied,
        engine.discarded() as u64,
        engine.delegators() as u64,
        wal_len,
    ] {
        head.extend_from_slice(&meta.to_le_bytes());
    }
    file.write_all(&head).map_err(&ioerr)?;
    crc.update(&head[8..]);

    let mut section = Vec::with_capacity(8 * n.max(1));
    push_u32s(
        &mut section,
        engine.actions().iter().map(|a| match a {
            Action::Vote => ACTION_VOTE,
            Action::Abstain => ACTION_ABSTAIN,
            Action::Delegate(t) => *t as u32,
            // `LiveEngine` state is single-target by construction.
            _ => unreachable!("live engine holds single-target actions"),
        }),
    );
    write_chunked(&mut file, &mut crc, &section).map_err(&ioerr)?;

    section.clear();
    for &p in engine.competences() {
        section.extend_from_slice(&p.to_bits().to_le_bytes());
    }
    write_chunked(&mut file, &mut crc, &section).map_err(&ioerr)?;

    section.clear();
    push_u32s(&mut section, engine.depths().iter().copied());
    write_chunked(&mut file, &mut crc, &section).map_err(&ioerr)?;

    section.clear();
    push_u32s(&mut section, engine_arena(engine).into_iter());
    write_chunked(&mut file, &mut crc, &section).map_err(&ioerr)?;

    file.write_all(&crc.finish().to_le_bytes())
        .map_err(&ioerr)?;
    file.sync_data().map_err(&ioerr)?;
    std::fs::rename(&tmp, &path).map_err(StoreError::io("rename snapshot", &path))?;
    crate::fsync_parent_dir(&path).map_err(StoreError::io("fsync snapshot dir", &path))?;
    ld_obs::counter("snapshot.saves").incr();
    Ok(path)
}

/// An opened, fully-validated snapshot (mmap-backed under the `mmap`
/// feature); sections are decoded on demand.
#[derive(Debug)]
pub struct Snapshot {
    bytes: MappedBytes,
    path: PathBuf,
    n: usize,
    applied: u64,
    discarded: usize,
    delegators: usize,
    wal_len: u64,
}

impl Snapshot {
    /// Opens and validates `path`: magic, version, section geometry,
    /// and the trailing CRC32 over the whole file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the file cannot be read,
    /// [`StoreError::Corrupt`] for any validation failure — including a
    /// half-written temp file that was never renamed.
    pub fn open(path: &Path) -> Result<Snapshot, StoreError> {
        let bytes = MappedBytes::open(path).map_err(StoreError::io("open snapshot", path))?;
        let b = bytes.as_slice();
        let corrupt = |reason: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            reason,
        };
        if b.len() < FIXED_HEADER + 4 {
            return Err(corrupt(format!("file too short ({} bytes)", b.len())));
        }
        if b[..8] != SNAP_MAGIC {
            return Err(corrupt("bad snapshot magic".to_string()));
        }
        let version = u32::from_le_bytes(b[8..12].try_into().expect("4 bytes"));
        if version != SNAP_VERSION {
            return Err(corrupt(format!(
                "unsupported snapshot version {version} (this build reads {SNAP_VERSION})"
            )));
        }
        let u64_at = |at: usize| u64::from_le_bytes(b[at..at + 8].try_into().expect("8 bytes"));
        let n = u64_at(16);
        let applied = u64_at(24);
        let discarded = u64_at(32);
        let delegators = u64_at(40);
        let wal_len = u64_at(48);
        let n_us = usize::try_from(n).map_err(|_| corrupt(format!("n={n} overflows usize")))?;
        if n_us >= (u32::MAX - 1) as usize {
            return Err(corrupt(format!("n={n} exceeds the engine voter bound")));
        }
        if discarded > n || delegators > n {
            return Err(corrupt(format!(
                "counters exceed n={n}: discarded={discarded}, delegators={delegators}"
            )));
        }
        if wal_len < crate::wal::WAL_HEADER_LEN as u64 {
            return Err(corrupt(format!(
                "wal tail offset {wal_len} is inside the WAL header"
            )));
        }
        let tallied = n_us - discarded as usize;
        let expect =
            FIXED_HEADER + 4 * n_us + 8 * n_us + 4 * n_us + 4 * (2 * n_us + 1 + tallied) + 4;
        if b.len() != expect {
            return Err(corrupt(format!(
                "file is {} bytes, expected {expect} for n={n}",
                b.len()
            )));
        }
        let stored = u32::from_le_bytes(b[b.len() - 4..].try_into().expect("4 bytes"));
        let computed = crc32(&b[8..b.len() - 4]);
        if stored != computed {
            return Err(corrupt(format!(
                "crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        ld_obs::counter("snapshot.loads").incr();
        Ok(Snapshot {
            bytes,
            path: path.to_path_buf(),
            n: n_us,
            applied,
            discarded: discarded as usize,
            delegators: delegators as usize,
            wal_len,
        })
    }

    /// Number of voters.
    pub fn n(&self) -> usize {
        self.n
    }

    /// WAL records this snapshot incorporates.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// WAL byte length at compaction time — where the replay tail
    /// begins.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// The file this snapshot was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the backing bytes are memory-mapped.
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    fn u32_section(&self, start: usize, count: usize) -> impl Iterator<Item = u32> + '_ {
        let b = &self.bytes.as_slice()[start..start + 4 * count];
        b.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
    }

    fn actions_at(&self) -> usize {
        FIXED_HEADER
    }
    fn competence_at(&self) -> usize {
        self.actions_at() + 4 * self.n
    }
    fn depth_at(&self) -> usize {
        self.competence_at() + 8 * self.n
    }
    fn arena_at(&self) -> usize {
        self.depth_at() + 4 * self.n
    }

    /// Decodes the action vector.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for a target that is neither a sentinel
    /// nor in range.
    pub fn actions(&self) -> Result<Vec<Action>, StoreError> {
        let n = self.n;
        self.u32_section(self.actions_at(), n)
            .enumerate()
            .map(|(v, raw)| match raw {
                ACTION_VOTE => Ok(Action::Vote),
                ACTION_ABSTAIN => Ok(Action::Abstain),
                t if (t as usize) < n => Ok(Action::Delegate(t as usize)),
                t => Err(StoreError::Corrupt {
                    path: self.path.clone(),
                    reason: format!("voter {v} has out-of-range action target {t}"),
                }),
            })
            .collect()
    }

    /// Decodes the competence vector (exact stored bit patterns).
    pub fn competences(&self) -> Vec<f64> {
        let b = &self.bytes.as_slice()[self.competence_at()..self.competence_at() + 8 * self.n];
        b.chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect()
    }

    /// Decodes the per-voter depth vector.
    pub fn depths(&self) -> Vec<u32> {
        self.u32_section(self.depth_at(), self.n).collect()
    }

    /// Decodes the raw CSR arena.
    pub fn arena(&self) -> Vec<u32> {
        let tallied = self.n - self.discarded;
        self.u32_section(self.arena_at(), 2 * self.n + 1 + tallied)
            .collect()
    }

    /// Rehydrates a [`LiveEngine`] — validated flat passes, no resolver
    /// run (see [`LiveEngine::from_resolved_parts`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if decoding or consistency validation
    /// fails.
    pub fn to_engine(&self) -> Result<LiveEngine, StoreError> {
        let actions = self.actions()?;
        let competence = self.competences();
        let sink_of: Vec<Option<usize>> = self
            .u32_section(self.arena_at(), self.n)
            .map(|s| {
                if s == DISCARDED {
                    None
                } else {
                    Some(s as usize)
                }
            })
            .collect();
        let engine = LiveEngine::from_resolved_parts(actions, competence, sink_of, self.depths())
            .map_err(|e| StoreError::Corrupt {
            path: self.path.clone(),
            reason: format!("engine rehydration rejected snapshot: {e}"),
        })?;
        Ok(engine)
    }

    /// Rehydrates a [`CsrForest`] by adopting the stored arena —
    /// validated, not re-resolved (see [`CsrForest::from_raw_arena`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if arena validation fails.
    pub fn to_csr(&self) -> Result<CsrForest, StoreError> {
        CsrForest::from_raw_arena(self.arena(), self.n, self.delegators, self.depths()).map_err(
            |e| StoreError::Corrupt {
                path: self.path.clone(),
                reason: format!("CSR rehydration rejected snapshot: {e}"),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use ld_live::Update;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ld-store-snap-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn small_engine() -> LiveEngine {
        let mut e =
            LiveEngine::new(vec![Action::Vote; 6], vec![0.5, 0.6, 0.7, 0.8, 0.55, 0.65]).unwrap();
        for u in [
            Update::Delegate {
                voter: 0,
                target: 1,
            },
            Update::Delegate {
                voter: 1,
                target: 2,
            },
            Update::Abstain { voter: 3 },
            Update::Delegate {
                voter: 4,
                target: 3,
            },
            Update::Competence { voter: 2, p: 0.91 },
        ] {
            e.apply(u).unwrap();
        }
        e
    }

    #[test]
    fn snapshot_round_trips_engine_and_csr() {
        let dir = tmp_dir("roundtrip");
        let engine = small_engine();
        let clock = FaultClock::new(FaultPlan::none());
        let path = write_snapshot(&dir, &engine, 5, 121, &clock).unwrap();
        assert_eq!(
            parse_snapshot_name(path.file_name().unwrap().to_str().unwrap()),
            Some(5)
        );
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.n(), 6);
        assert_eq!(snap.applied(), 5);
        let back = snap.to_engine().unwrap();
        assert_eq!(back.resolution(), engine.resolution());
        assert_eq!(back.actions(), engine.actions());
        assert_eq!(back.competences(), engine.competences());
        assert_eq!(back.depths(), engine.depths());
        back.self_check().unwrap();
        let csr = snap.to_csr().unwrap();
        assert_eq!(csr.to_resolution(), engine.resolution());
        assert_eq!(csr.delegators(), engine.delegators());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_corrupted_byte_is_rejected() {
        let dir = tmp_dir("corrupt");
        let engine = small_engine();
        let clock = FaultClock::new(FaultPlan::none());
        let path =
            write_snapshot(&dir, &engine, 0, crate::wal::WAL_HEADER_LEN as u64, &clock).unwrap();
        let good = std::fs::read(&path).unwrap();
        let bent_path = dir.join("bent.bin");
        for i in 0..good.len() {
            let mut bent = good.clone();
            bent[i] ^= 0x04;
            std::fs::write(&bent_path, &bent).unwrap();
            let opened = Snapshot::open(&bent_path);
            let ok = opened
                .and_then(|s| {
                    s.to_engine()?;
                    s.to_csr()
                })
                .is_ok();
            assert!(!ok, "flip at byte {i} slipped through validation");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncations_are_rejected() {
        let dir = tmp_dir("trunc");
        let engine = small_engine();
        let clock = FaultClock::new(FaultPlan::none());
        let path =
            write_snapshot(&dir, &engine, 0, crate::wal::WAL_HEADER_LEN as u64, &clock).unwrap();
        let good = std::fs::read(&path).unwrap();
        let cut_path = dir.join("cut.bin");
        for cut in 0..good.len() {
            std::fs::write(&cut_path, &good[..cut]).unwrap();
            assert!(Snapshot::open(&cut_path).is_err(), "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_names_sort_numerically() {
        let mut names = [
            snapshot_file_name(10),
            snapshot_file_name(2),
            snapshot_file_name(100),
            snapshot_file_name(0),
        ];
        names.sort();
        let parsed: Vec<u64> = names
            .iter()
            .map(|s| parse_snapshot_name(s).unwrap())
            .collect();
        assert_eq!(parsed, vec![0, 2, 10, 100]);
        assert_eq!(parse_snapshot_name("snapshot-x.bin"), None);
        assert_eq!(parse_snapshot_name("events.wal"), None);
    }
}
