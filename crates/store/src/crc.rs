//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! integrity check on every WAL record frame and snapshot file.
//!
//! Hand-rolled because the workspace's offline dependency policy bakes
//! in no checksum crate; slice-by-8 lookup tables are computed once at
//! first use and the result matches the ubiquitous zlib/PNG/Ethernet
//! CRC32, locked down by known-answer tests. Slice-by-8 matters for
//! snapshot validation, which checksums megabytes per open — WAL
//! frames are tiny and land in the scalar tail loop either way.

use std::sync::OnceLock;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// A streaming CRC32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = tables();
        let mut state = self.state;
        let mut rest = bytes;
        while rest.len() >= 8 {
            let lo = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) ^ state;
            let hi = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
            state = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
            rest = &rest[8..];
        }
        for &b in rest {
            state = t[0][((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
        }
        self.state = state;
    }

    /// The finished checksum (the accumulator stays usable).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"delegate(3) vote abstain".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
