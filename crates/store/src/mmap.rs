//! Read-only file bytes, memory-mapped when the `mmap` feature is on.
//!
//! [`MappedBytes`] is the one read path for snapshots and WAL files.
//! With the default `mmap` feature on a Unix platform it maps the file
//! `PROT_READ`/`MAP_PRIVATE` through a minimal libc FFI (the workspace
//! bakes in no binding crate), so a multi-gigabyte snapshot is paged in
//! lazily instead of copied through a heap buffer. With the feature off
//! — the offline stub build — the same API reads the file with
//! [`std::fs::read`]: identical bytes, identical downstream validation,
//! zero `unsafe`.
//!
//! All decoding above this layer is copy-based (`u32::from_le_bytes`
//! over slices), so the two paths are bit-for-bit interchangeable; the
//! conformance suite runs under both.
//!
//! Mapped snapshots are immutable by construction (written to a temp
//! name, fsynced, renamed, never modified), which is what makes the
//! mapping sound: nothing truncates a live mapping out from under us.

use std::fs::File;
use std::io;
use std::path::Path;

/// The contents of a file, either mapped or owned.
#[derive(Debug)]
pub struct MappedBytes {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    Owned(Vec<u8>),
    #[cfg(all(feature = "mmap", unix))]
    Mapped(map::Mapping),
}

impl MappedBytes {
    /// Opens `path` read-only, mapping it if the `mmap` feature is
    /// active on this platform (empty files are held as empty owned
    /// buffers — `mmap(2)` rejects zero-length mappings).
    pub fn open(path: &Path) -> io::Result<MappedBytes> {
        #[cfg(all(feature = "mmap", unix))]
        {
            let file = File::open(path)?;
            let len = file.metadata()?.len();
            if len == 0 {
                return Ok(MappedBytes {
                    repr: Repr::Owned(Vec::new()),
                });
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::other("file too large to map on this platform"))?;
            Ok(MappedBytes {
                repr: Repr::Mapped(map::Mapping::new(&file, len)?),
            })
        }
        #[cfg(not(all(feature = "mmap", unix)))]
        {
            let _ = File::open(path)?; // surface a crisp NotFound error
            Ok(MappedBytes {
                repr: Repr::Owned(std::fs::read(path)?),
            })
        }
    }

    /// The file contents.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Owned(v) => v,
            #[cfg(all(feature = "mmap", unix))]
            Repr::Mapped(m) => m.as_slice(),
        }
    }

    /// Whether this instance went through `mmap(2)` (diagnostics only;
    /// behaviour is identical either way).
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            Repr::Owned(_) => false,
            #[cfg(all(feature = "mmap", unix))]
            Repr::Mapped(_) => true,
        }
    }
}

#[cfg(all(feature = "mmap", unix))]
mod map {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    // The two constants we need share their values across Linux and the
    // BSDs/macOS; this module is additionally gated on `unix`.
    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned `PROT_READ` private mapping of one whole file.
    #[derive(Debug)]
    pub struct Mapping {
        addr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and exclusively owned; the pointer is
    // never aliased mutably.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub fn new(file: &File, len: usize) -> io::Result<Mapping> {
            // SAFETY: requesting a fresh read-only private mapping of a
            // file we hold open; the kernel picks the address. The only
            // failure mode is MAP_FAILED, checked below.
            let addr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if addr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { addr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `addr` is a live PROT_READ mapping of exactly
            // `len` bytes, valid until `Drop`; snapshots are immutable
            // once renamed into place, so the contents cannot change or
            // shrink while mapped.
            unsafe { std::slice::from_raw_parts(self.addr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region this struct owns.
            unsafe {
                munmap(self.addr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ld-store-mmap-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trips_file_contents() {
        let path = tmp("roundtrip.bin");
        let data: Vec<u8> = (0..255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &data).unwrap();
        let m = MappedBytes::open(&path).unwrap();
        assert_eq!(m.as_slice(), &data[..]);
        assert_eq!(m.is_mapped(), cfg!(all(feature = "mmap", unix)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_files_and_missing_files() {
        let path = tmp("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let m = MappedBytes::open(&path).unwrap();
        assert!(m.as_slice().is_empty());
        std::fs::remove_file(&path).ok();
        assert!(MappedBytes::open(&path).is_err());
    }
}
