//! Property: for ANY prefix of a valid WAL file — i.e. a crash that
//! truncated the log at an arbitrary byte offset — recovery decodes a
//! record-aligned prefix of the original update sequence and reports a
//! typed [`TornTail`] for whatever ragged suffix remains. It never
//! panics and never yields a partially-written record. Arbitrary junk
//! appended after a valid prefix is likewise diagnosed, not applied.

use ld_live::Update;
use ld_store::wal::{encode_record, scan_records, FRAME_HEADER_LEN};
use ld_store::{TailStatus, TornReason};
use proptest::collection::vec;
use proptest::prelude::*;

fn build_updates(raw: &[(usize, usize, usize, u32)]) -> Vec<Update> {
    raw.iter()
        .map(|&(kind, voter, target, pk)| match kind {
            0 => Update::Delegate { voter, target },
            1 => Update::Vote { voter },
            2 => Update::Abstain { voter },
            _ => Update::Competence {
                voter,
                p: f64::from(pk) / 1100.0,
            },
        })
        .collect()
}

fn encode_body(updates: &[Update]) -> (Vec<u8>, Vec<usize>) {
    let mut body = Vec::new();
    let mut boundaries = vec![0usize];
    for u in updates {
        encode_record(u, &mut body);
        boundaries.push(body.len());
    }
    (body, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at EVERY byte offset of a valid body yields exactly
    /// the records whose frames fit whole, plus a typed torn tail.
    #[test]
    fn every_byte_truncation_yields_an_aligned_prefix(
        raw in vec((0usize..4, 0usize..1000, 0usize..1000, 0u32..=1100), 1..40),
    ) {
        let updates = build_updates(&raw);
        let (body, boundaries) = encode_body(&updates);
        for cut in 0..=body.len() {
            let scan = scan_records(&body[..cut]);
            // The valid prefix is record-aligned and maximal.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(scan.updates.len(), whole, "cut at {}", cut);
            prop_assert_eq!(&scan.updates[..], &updates[..whole]);
            prop_assert_eq!(scan.valid_len, boundaries[whole]);
            match &scan.tail {
                TailStatus::Clean => prop_assert_eq!(cut, boundaries[whole]),
                TailStatus::Torn(t) => {
                    prop_assert_eq!(t.at, boundaries[whole]);
                    prop_assert_eq!(t.trailing, cut - boundaries[whole]);
                    // A truncated frame is diagnosed as truncation, not
                    // as corruption of data that was never written.
                    prop_assert!(matches!(
                        t.reason,
                        TornReason::TruncatedHeader { .. } | TornReason::TruncatedPayload { .. }
                    ));
                }
            }
        }
    }

    /// A valid prefix followed by arbitrary junk: every original record
    /// survives, nothing from the junk is ever decoded as data that was
    /// logged, and the scan terminates with a typed reason.
    #[test]
    fn junk_suffixes_are_diagnosed_not_applied(
        raw in vec((0usize..4, 0usize..1000, 0usize..1000, 0u32..=1100), 0..20),
        junk in vec(any::<u8>(), 1..64),
    ) {
        let updates = build_updates(&raw);
        let (mut body, boundaries) = encode_body(&updates);
        body.extend_from_slice(&junk);
        let scan = scan_records(&body);
        prop_assert!(scan.updates.len() >= updates.len());
        prop_assert_eq!(&scan.updates[..updates.len()], &updates[..]);
        prop_assert!(scan.valid_len >= *boundaries.last().unwrap());
        // If the junk happens to parse entirely as valid frames the
        // tail is clean; otherwise the torn offset is past the real
        // records.
        if let TailStatus::Torn(t) = &scan.tail {
            prop_assert!(t.at >= *boundaries.last().unwrap());
            prop_assert_eq!(t.at + t.trailing, body.len());
        }
    }

    /// Pure junk never panics and never produces a record unless the
    /// bytes genuinely frame one.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..256)) {
        let scan = scan_records(&bytes);
        prop_assert!(scan.valid_len <= bytes.len());
        if !scan.updates.is_empty() {
            prop_assert!(scan.valid_len >= FRAME_HEADER_LEN * scan.updates.len());
        }
    }
}
