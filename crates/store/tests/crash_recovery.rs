//! The crash matrix: inject a fail / short-write / corrupt fault at
//! every I/O operation index a real run performs, then prove recovery
//! lands on a record-aligned prefix of the accepted update sequence and
//! that resuming + re-applying the lost suffix converges bit-identically
//! to the engine that never crashed.

use ld_core::delegation::Action;
use ld_live::workload::{Trace, TraceConfig};
use ld_live::{LiveEngine, Update};
use ld_store::{recover, FaultKind, FaultPlan, RecoverMode, Store, StoreError, StoreOptions};
use std::path::{Path, PathBuf};

const N: usize = 48;
const UPDATES: usize = 400;
const SEED: u64 = 2025;

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ld-store-crash-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn fresh_engine() -> LiveEngine {
    LiveEngine::new(vec![Action::Vote; N], vec![0.55; N]).unwrap()
}

fn trace() -> Vec<Update> {
    Trace::new(TraceConfig::balanced(N), SEED)
        .unwrap()
        .take(UPDATES)
        .collect()
}

fn opts(fault: FaultPlan) -> StoreOptions {
    StoreOptions {
        sync_every: 4,
        snapshot_every: 120,
        fault,
    }
}

/// Drives the workload through a store with `fault` armed. Returns the
/// accepted updates appended (in order) and how many trace items were
/// consumed before the crash (== the full trace when none was);
/// panics on any non-injected error.
fn run(dir: &Path, fault: FaultPlan) -> (Vec<Update>, usize) {
    let mut engine = fresh_engine();
    let mut appended = Vec::new();
    let mut consumed = 0usize;
    let mut store = match Store::create(dir, &engine, opts(fault)) {
        Ok(s) => s,
        Err(e) => {
            assert!(e.is_injected(), "unplanned create failure: {e}");
            return (appended, consumed);
        }
    };
    for u in trace() {
        consumed += 1;
        if engine.apply(u).is_err() {
            continue;
        }
        appended.push(u);
        if let Err(e) = store.append(&u) {
            assert!(e.is_injected(), "unplanned append failure: {e}");
            return (appended, consumed);
        }
        if let Err(e) = store.maybe_compact(&engine) {
            assert!(e.is_injected(), "unplanned compact failure: {e}");
            return (appended, consumed);
        }
    }
    if let Err(e) = store.sync() {
        assert!(e.is_injected(), "unplanned sync failure: {e}");
        return (appended, consumed);
    }
    (appended, consumed)
}

/// Replays `updates` on a fresh engine; every one must be accepted
/// (each was accepted from exactly this state in the original run).
fn replay(updates: &[Update]) -> LiveEngine {
    let mut engine = fresh_engine();
    for (i, u) in updates.iter().enumerate() {
        engine
            .apply(*u)
            .unwrap_or_else(|r| panic!("replay rejected record {i}: {r}"));
    }
    engine
}

fn assert_same(a: &LiveEngine, b: &LiveEngine) {
    assert_eq!(a.resolution(), b.resolution());
    assert_eq!(a.actions(), b.actions());
    assert_eq!(a.competences(), b.competences());
    assert_eq!(a.depths(), b.depths());
}

/// One cell of the matrix: crash with `kind` at op `k`, recover,
/// verify the prefix property, then resume + re-apply the lost suffix
/// and verify convergence with the uncrashed engine.
fn crash_and_recover(kind: FaultKind, k: u64, uncrashed: &LiveEngine) {
    let dir = tmp_dir(&format!("{}-{k}", kind.id()));
    let fault = FaultPlan { at: k, kind };
    let (appended, consumed) = run(&dir, fault);

    let recovery = match recover(&dir) {
        Ok(r) => r,
        Err(e) => {
            // Legitimate only if (a) the crash predates the first
            // durable state (genesis snapshot / WAL creation), or
            // (b) a corruption fault hit the WAL file header itself —
            // indistinguishable from "not our file", so the contract
            // is a typed Corrupt error, never a wrong answer.
            let header_hit =
                kind == FaultKind::CorruptByte && matches!(e, StoreError::Corrupt { .. });
            assert!(
                appended.is_empty() || header_hit,
                "{} at op {k}: recovery failed after {} accepted records: {e}",
                kind.id(),
                appended.len()
            );
            std::fs::remove_dir_all(&dir).ok();
            return;
        }
    };

    // Prefix property: the surviving records are exactly the first
    // `records` accepted updates — never reordered, never partial.
    let records = recovery.records as usize;
    assert!(
        records <= appended.len(),
        "{} at op {k}: {} records survived, only {} were appended",
        kind.id(),
        records,
        appended.len()
    );
    assert_same(&recovery.engine, &replay(&appended[..records]));
    recovery.engine.self_check().unwrap();

    // Resume truncates the torn tail and reopens for appends;
    // re-applying the lost suffix and then finishing the interrupted
    // trace converges bit-identically with the run that never crashed.
    let (mut store, resumed) = Store::resume(&dir, opts(FaultPlan::none())).unwrap();
    let mut engine = resumed.engine;
    for u in &appended[records..] {
        engine.apply(*u).unwrap();
        store.append(u).unwrap();
    }
    for u in trace().into_iter().skip(consumed) {
        if engine.apply(u).is_ok() {
            store.append(&u).unwrap();
        }
    }
    store.sync().unwrap();
    drop(store);
    assert_same(&engine, uncrashed);

    // And the re-completed store now recovers to the full state.
    let healed = recover(&dir).unwrap();
    assert_same(&healed.engine, &engine);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_at_every_io_op_recovers_a_prefix_and_reconverges() {
    // Fault-free baseline: the final engine and the op budget.
    let dir = tmp_dir("baseline");
    let (reference, consumed) = run(&dir, FaultPlan::none());
    assert_eq!(consumed, UPDATES);
    let uncrashed = replay(&reference);
    let total_ops = {
        let (store, _) = Store::resume(&dir, opts(FaultPlan::none())).unwrap();
        drop(store);
        // Re-run with an unarmed clock to count ops exactly.
        let dir2 = tmp_dir("count");
        let mut engine = fresh_engine();
        let mut store = Store::create(&dir2, &engine, opts(FaultPlan::none())).unwrap();
        for u in trace() {
            if engine.apply(u).is_ok() {
                store.append(&u).unwrap();
                store.maybe_compact(&engine).unwrap();
            }
        }
        store.sync().unwrap();
        let ops = store.clock().ops();
        drop(store);
        std::fs::remove_dir_all(&dir2).ok();
        ops
    };
    std::fs::remove_dir_all(&dir).ok();
    assert!(total_ops > 100, "matrix too small: {total_ops} ops");

    // Every op index near the interesting edges, strided in the middle
    // to keep the matrix fast; the conformance check covers byte-level
    // offsets exhaustively.
    let mut ks: Vec<u64> = (0..24).collect();
    ks.extend((24..total_ops).step_by(13));
    ks.push(total_ops - 1);
    for kind in [
        FaultKind::FailIo,
        FaultKind::ShortWrite,
        FaultKind::CorruptByte,
    ] {
        for &k in &ks {
            crash_and_recover(kind, k, &uncrashed);
        }
    }
}

#[test]
fn seeded_fault_plans_are_deterministic() {
    let a = FaultPlan::seeded(42, 7, 500);
    let b = FaultPlan::seeded(42, 7, 500);
    assert_eq!(a, b);
    let c = FaultPlan::seeded(43, 7, 500);
    let d = FaultPlan::seeded(42, 8, 500);
    assert!(a != c || a != d, "different seeds should perturb the plan");
}

#[test]
fn full_replay_mode_matches_fast_path_after_crash() {
    let dir = tmp_dir("modes");
    let fault = FaultPlan::fail_at(300);
    let (appended, consumed) = run(&dir, fault);
    assert!(consumed < UPDATES, "op 300 should land mid-run");
    assert!(!appended.is_empty());
    let fast = recover(&dir).unwrap();
    let slow = ld_store::recover_with(&dir, RecoverMode::FullReplay).unwrap();
    assert_eq!(slow.snapshot_applied, 0);
    assert!(fast.snapshot_applied > 0, "a compaction should have run");
    assert_same(&fast.engine, &slow.engine);
    std::fs::remove_dir_all(&dir).ok();
}
