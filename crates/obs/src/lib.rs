//! **ld-obs** — lightweight observability for the liquid-democracy
//! workspace.
//!
//! The API is three primitives plus a snapshot:
//!
//! * [`counter`] — a named monotonic [`u64`] counter (atomic when the
//!   feature is on).
//! * [`span`] — an RAII guard that records its scope's wall-clock
//!   duration (nanoseconds) into the histogram of the same name. The
//!   guard records on `Drop`, so it survives `?` and panics.
//! * [`histogram`] — a named fixed-bucket (power-of-two) histogram of
//!   `u64` samples; summaries report count/sum/p50/p90/p99/max.
//! * [`snapshot`] — a deterministic (name-sorted) copy of every metric
//!   registered since the last [`reset`].
//!
//! [`TrialGuard`] composes counters into the bookkeeping pattern the
//! Monte Carlo engine needs: `<prefix>.started` is bumped eagerly,
//! and on `Drop` — which runs even while unwinding from a panic —
//! the guard flushes `<prefix>.finished` and `<prefix>.lost` so that
//! `started == finished + lost` holds unconditionally.
//!
//! Everything lives behind the `enabled` cargo feature. Without it the
//! whole crate compiles to unit structs and empty `#[inline(always)]`
//! functions: no atomics, no locks, no clock reads — the hot path is
//! bit-identical to an uninstrumented build (the `obs_neutrality`
//! tests in `ld-sim` check exactly this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Summary of one histogram at snapshot time.
///
/// Quantiles are estimated from the fixed power-of-two buckets (the
/// midpoint of the bucket containing the quantile), so they are
/// approximations; `max` is exact.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Metric name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
///
/// Deterministic modulo the *values* of timing-derived fields: the set
/// of names and every counter value depend only on the work performed,
/// while span histograms carry wall-clock nanoseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistSummary>,
}

impl Snapshot {
    /// True when no metric was recorded (always true with the feature
    /// off).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(feature = "enabled")]
mod real {
    use super::{HistSummary, Snapshot};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    const BUCKETS: usize = 64;

    pub struct Hist {
        buckets: [AtomicU64; BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
        max: AtomicU64,
    }

    impl Hist {
        fn new() -> Self {
            Hist {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }
        }

        pub fn record(&self, value: u64) {
            let idx = bucket_of(value);
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
        }

        fn summary(&self, name: &str) -> HistSummary {
            let counts: Vec<u64> = self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
            let count: u64 = counts.iter().sum();
            let max = self.max.load(Ordering::Relaxed);
            HistSummary {
                name: name.to_string(),
                count,
                sum: self.sum.load(Ordering::Relaxed),
                p50: quantile(&counts, count, max, 0.50),
                p90: quantile(&counts, count, max, 0.90),
                p99: quantile(&counts, count, max, 0.99),
                max,
            }
        }
    }

    /// Bucket `i` holds values in `[2^(i-1), 2^i)`; bucket 0 holds 0.
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Midpoint-of-bucket quantile estimate; the top occupied bucket is
    /// capped at the exact max.
    fn quantile(counts: &[u64], total: u64, max: u64, q: f64) -> u64 {
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 - 1.0) * q).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                if i == 0 {
                    return 0;
                }
                let lo = 1u64 << (i - 1);
                let hi = (lo.saturating_mul(2)).saturating_sub(1).min(max);
                return lo + (hi.max(lo) - lo) / 2;
            }
        }
        max
    }

    #[derive(Default)]
    struct Registry {
        counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
        hists: Mutex<HashMap<String, Arc<Hist>>>,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(Registry::default)
    }

    /// Handle to a named atomic counter.
    #[derive(Clone)]
    pub struct Counter(Arc<AtomicU64>);

    impl Counter {
        /// Adds `n` (relaxed; counters are merged at snapshot time).
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Ordering::Relaxed);
        }

        /// Adds one.
        pub fn incr(&self) {
            self.add(1);
        }
    }

    /// Handle to a named histogram.
    #[derive(Clone)]
    pub struct Histogram(Arc<Hist>);

    impl Histogram {
        /// Records one sample.
        pub fn record(&self, value: u64) {
            self.0.record(value);
        }
    }

    /// RAII scope timer; records elapsed nanoseconds on `Drop`.
    #[must_use = "a span records on Drop; binding it to _ discards the measurement"]
    pub struct Span {
        hist: Arc<Hist>,
        start: Instant,
    }

    impl Drop for Span {
        fn drop(&mut self) {
            self.hist.record(self.start.elapsed().as_nanos() as u64);
        }
    }

    /// Looks up (registering on first use) the named counter.
    pub fn counter(name: &str) -> Counter {
        let mut map = registry().counters.lock().expect("obs counter registry");
        Counter(Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Looks up (registering on first use) the named histogram.
    pub fn histogram(name: &str) -> Histogram {
        let mut map = registry().hists.lock().expect("obs histogram registry");
        Histogram(Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Hist::new())),
        ))
    }

    /// Starts a scope timer recording into the histogram `name`.
    pub fn span(name: &str) -> Span {
        Span {
            hist: histogram(name).0,
            start: Instant::now(),
        }
    }

    /// Copies every registered metric, sorted by name.
    pub fn snapshot() -> Snapshot {
        let counters_map = registry().counters.lock().expect("obs counter registry");
        let mut counters: Vec<(String, u64)> = counters_map
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        drop(counters_map);
        counters.sort();
        let hists_map = registry().hists.lock().expect("obs histogram registry");
        let mut histograms: Vec<HistSummary> =
            hists_map.iter().map(|(k, v)| v.summary(k)).collect();
        drop(hists_map);
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot {
            counters,
            histograms,
        }
    }

    pub fn reset() {
        registry()
            .counters
            .lock()
            .expect("obs counter registry")
            .clear();
        registry()
            .hists
            .lock()
            .expect("obs histogram registry")
            .clear();
    }

    /// Panic-safe trial accounting: `started` is flushed eagerly, and
    /// `Drop` reconciles `finished`/`lost` even while unwinding.
    pub struct TrialGuard {
        finished: Counter,
        lost: Counter,
        share: u64,
        done: u64,
    }

    impl TrialGuard {
        /// Registers `share` trials as started under `prefix`.
        pub fn new(prefix: &str, share: u64) -> Self {
            counter(&format!("{prefix}.started")).add(share);
            TrialGuard {
                finished: counter(&format!("{prefix}.finished")),
                lost: counter(&format!("{prefix}.lost")),
                share,
                done: 0,
            }
        }

        /// Marks one trial of the share as finished.
        pub fn note_done(&mut self) {
            self.done += 1;
        }
    }

    impl Drop for TrialGuard {
        fn drop(&mut self) {
            let done = self.done.min(self.share);
            self.finished.add(done);
            self.lost.add(self.share - done);
        }
    }
}

#[cfg(feature = "enabled")]
pub use real::{counter, histogram, snapshot, span, Counter, Histogram, Span, TrialGuard};

#[cfg(feature = "enabled")]
/// Clears every registered metric (names and values).
pub fn reset() {
    real::reset();
}

#[cfg(feature = "enabled")]
/// True when the `enabled` feature is compiled in.
#[must_use]
pub const fn enabled() -> bool {
    true
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::Snapshot;

    /// Disabled counter: every method is an empty inline function.
    #[derive(Clone, Copy)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn incr(&self) {}
    }

    /// Disabled histogram: every method is an empty inline function.
    #[derive(Clone, Copy)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}
    }

    /// Disabled span: a unit struct with no `Drop` impl.
    #[must_use = "a span records on Drop; binding it to _ discards the measurement"]
    #[derive(Clone, Copy)]
    pub struct Span;

    /// No-op counter lookup.
    #[inline(always)]
    pub fn counter(_name: &str) -> Counter {
        Counter
    }

    /// No-op histogram lookup.
    #[inline(always)]
    pub fn histogram(_name: &str) -> Histogram {
        Histogram
    }

    /// No-op span.
    #[inline(always)]
    pub fn span(_name: &str) -> Span {
        Span
    }

    /// Always-empty snapshot.
    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// Disabled trial guard: a unit struct, no counters, no `Drop`.
    pub struct TrialGuard;

    impl TrialGuard {
        /// No-op.
        #[inline(always)]
        pub fn new(_prefix: &str, _share: u64) -> Self {
            TrialGuard
        }

        /// No-op.
        #[inline(always)]
        pub fn note_done(&mut self) {}
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{counter, histogram, snapshot, span, Counter, Histogram, Span, TrialGuard};

#[cfg(not(feature = "enabled"))]
/// No-op with the feature off.
#[inline(always)]
pub fn reset() {}

#[cfg(not(feature = "enabled"))]
/// True when the `enabled` feature is compiled in.
#[must_use]
pub const fn enabled() -> bool {
    false
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    /// The registry is process-global; serialize tests that reset it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let _g = lock();
        reset();
        counter("b.two").add(2);
        counter("a.one").incr();
        counter("b.two").add(3);
        let snap = snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.one".to_string(), 1), ("b.two".to_string(), 5)]
        );
    }

    #[test]
    fn histogram_summary_brackets_the_data() {
        let _g = lock();
        reset();
        let h = histogram("h");
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = snapshot();
        let s = &snap.histograms[0];
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1_001_106);
        assert_eq!(s.max, 1_000_000);
        assert!(s.p50 >= 2 && s.p50 <= 3, "p50={}", s.p50);
        assert!(s.p99 <= s.max && s.p99 >= s.p90);
    }

    #[test]
    fn span_records_into_histogram() {
        let _g = lock();
        reset();
        {
            let _s = span("scope");
        }
        let snap = snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn trial_guard_reconciles_on_panic() {
        let _g = lock();
        reset();
        let unwound = std::panic::catch_unwind(|| {
            let mut g = TrialGuard::new("t", 10);
            for _ in 0..4 {
                g.note_done();
            }
            panic!("boom");
        });
        assert!(unwound.is_err());
        let mut g = TrialGuard::new("t", 5);
        for _ in 0..5 {
            g.note_done();
        }
        drop(g);
        let snap = snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("t.started"), 15);
        assert_eq!(get("t.finished"), 9);
        assert_eq!(get("t.lost"), 6);
        assert_eq!(get("t.started"), get("t.finished") + get("t.lost"));
    }

    #[test]
    fn reset_clears_names() {
        let _g = lock();
        reset();
        counter("gone").incr();
        reset();
        assert!(snapshot().is_empty());
    }
}
