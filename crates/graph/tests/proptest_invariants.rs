//! Property-based invariants for the graph substrate.

use ld_graph::{generators, properties, traversal, DiGraph, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Handshake lemma: the degree sum equals twice the edge count, for
    /// every generator at arbitrary feasible parameters.
    #[test]
    fn handshake_lemma_all_generators(n in 2usize..120, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 2 + (seed as usize % 4) * 2; // even, 2..=8
        let graphs: Vec<Graph> = vec![
            generators::complete(n),
            generators::star(n),
            generators::cycle(n),
            generators::erdos_renyi_gnp(n, 0.3, &mut rng).unwrap(),
            generators::erdos_renyi_gnm(n, n.min(n * (n - 1) / 2), &mut rng).unwrap(),
        ];
        for g in graphs {
            prop_assert_eq!(g.degrees().sum::<usize>(), 2 * g.m());
        }
        if d < n && (n * d).is_multiple_of(2) {
            let g = generators::random_regular(n, d, &mut rng).unwrap();
            prop_assert_eq!(g.degrees().sum::<usize>(), 2 * g.m());
        }
    }

    /// Sorted-adjacency invariant: neighbour lists are strictly increasing
    /// and symmetric.
    #[test]
    fn adjacency_sorted_and_symmetric(n in 2usize..60, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnp(n, 0.4, &mut rng).unwrap();
        for v in 0..n {
            let nb = g.neighbor_slice(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted at {}", v);
            for &u in nb {
                prop_assert!(g.has_edge(u, v), "asymmetric edge ({}, {})", u, v);
            }
        }
    }

    /// `random_regular` always returns an exactly d-regular simple graph.
    #[test]
    fn regular_generator_is_regular(n in 6usize..80, dd in 1usize..5) {
        let d = dd * 2; // even degree is always feasible
        prop_assume!(d < n);
        let mut rng = StdRng::seed_from_u64((n * 31 + d) as u64);
        let g = generators::random_regular(n, d, &mut rng).unwrap();
        prop_assert_eq!(properties::regularity(&g), Some(d));
        // Simplicity: no self-loops possible by type; no duplicate edges
        // because GraphBuilder::build would have panicked.
        prop_assert_eq!(g.m(), n * d / 2);
    }

    /// `random_bounded_degree` respects the cap for arbitrary parameters.
    #[test]
    fn bounded_degree_cap(n in 2usize..100, k in 1usize..8, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = n * k / 3;
        let g = generators::random_bounded_degree(n, k, m, &mut rng).unwrap();
        prop_assert!(properties::max_degree(&g).unwrap_or(0) <= k);
    }

    /// `random_min_degree` meets the floor for arbitrary parameters.
    #[test]
    fn min_degree_floor(n in 4usize..100, seed in 0u64..100) {
        let k = 1 + (seed as usize) % (n / 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_min_degree(n, k, &mut rng).unwrap();
        prop_assert!(properties::min_degree(&g).unwrap() >= k);
    }

    /// `from_degree_sequence` realizes any graphical sequence exactly.
    /// (Sequences are guaranteed graphical by reading them off a sampled
    /// graph first.)
    #[test]
    fn degree_sequence_round_trip(n in 4usize..60, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let template = generators::erdos_renyi_gnp(n, 0.3, &mut rng).unwrap();
        let degs: Vec<usize> = template.degrees().collect();
        let g = generators::from_degree_sequence(&degs, &mut rng).unwrap();
        for (v, &d) in degs.iter().enumerate() {
            prop_assert_eq!(g.degree(v), d, "vertex {}", v);
        }
        prop_assert_eq!(g.m(), template.m());
    }

    /// Edge-list round trips are the identity for every generated graph.
    #[test]
    fn edge_list_round_trip(n in 1usize..60, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnp(n, 0.3, &mut rng).unwrap();
        let text = ld_graph::io::to_edge_list(&g);
        let back = ld_graph::io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(back, g);
    }

    /// The parser never panics on arbitrary input — it either produces a
    /// valid graph or a structured error.
    #[test]
    fn edge_list_parser_is_total(input in "[ 0-9a-z#%\\n]{0,200}") {
        match ld_graph::io::parse_edge_list(&input) {
            Ok(g) => prop_assert!(g.degrees().sum::<usize>() == 2 * g.m()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// Induced subgraphs preserve adjacency among selected vertices.
    #[test]
    fn induced_subgraph_preserves_adjacency(n in 2usize..40, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnp(n, 0.4, &mut rng).unwrap();
        use rand::Rng;
        let selected: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.5)).collect();
        let sub = g.induced_subgraph(&selected).unwrap();
        prop_assert_eq!(sub.n(), selected.len());
        for (i, &u) in selected.iter().enumerate() {
            for (j, &v) in selected.iter().enumerate() {
                if i < j {
                    prop_assert_eq!(sub.has_edge(i, j), g.has_edge(u, v),
                        "pair ({}, {})", u, v);
                }
            }
        }
    }

    /// BFS distances satisfy the triangle property along edges: distances of
    /// adjacent vertices differ by at most 1.
    #[test]
    fn bfs_distance_lipschitz(n in 2usize..60, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi_gnp(n, 0.2, &mut rng).unwrap();
        let dist = traversal::bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            match (dist[u], dist[v]) {
                (Some(a), Some(b)) => {
                    let diff = a.abs_diff(b);
                    prop_assert!(diff <= 1, "edge ({u},{v}) distances {a},{b}");
                }
                (None, None) => {}
                _ => prop_assert!(false, "edge ({u},{v}) crosses component boundary"),
            }
        }
    }

    /// Components partition the vertex set and edges never cross components.
    #[test]
    fn components_are_a_partition(n in 1usize..80, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = (1.5 / n as f64).min(1.0);
        let g = generators::erdos_renyi_gnp(n, p, &mut rng).unwrap();
        let label = traversal::components(&g);
        prop_assert_eq!(label.len(), n);
        for (u, v) in g.edges() {
            prop_assert_eq!(label[u], label[v]);
        }
        let k = traversal::component_count(&g);
        prop_assert!(label.iter().all(|&l| l < k));
    }

    /// A DAG built from forward edges is acyclic, and its topological order
    /// is consistent; adding a back edge makes it cyclic.
    #[test]
    fn digraph_acyclicity(n in 2usize..50, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DiGraph::new(n);
        use rand::Rng;
        for u in 0..n - 1 {
            if rng.gen_bool(0.7) {
                let v = rng.gen_range(u + 1..n);
                g.add_edge(u, v);
            }
        }
        prop_assert!(g.is_acyclic());
        let lp = g.longest_path_len();
        prop_assert!(lp < n);
        // close a cycle if any edge exists
        if g.m() > 0 {
            let u = (0..n).find(|&u| g.out_degree(u) > 0).unwrap();
            let v = g.successors(u)[0];
            let mut h = g.clone();
            h.add_edge(v, u);
            prop_assert!(!h.is_acyclic());
        }
    }

    /// Resolving every vertex of a single-out-degree DAG reaches a sink, and
    /// sink resolution is idempotent.
    #[test]
    fn resolve_to_sink_total_on_functional_dags(n in 2usize..50, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut g = DiGraph::new(n);
        for u in 0..n {
            // delegate forward only => acyclic
            if u + 1 < n && rng.gen_bool(0.6) {
                g.add_edge(u, rng.gen_range(u + 1..n));
            }
        }
        let sinks = g.sinks();
        for u in 0..n {
            let s = g.resolve_to_sink(u).expect("acyclic resolution succeeds");
            prop_assert!(sinks.contains(&s));
            prop_assert_eq!(g.resolve_to_sink(s), Some(s));
        }
    }
}
