//! Breadth-first / depth-first traversal and connected components.

use crate::Graph;
use std::collections::VecDeque;

/// Vertices reachable from `start` in BFS order (including `start`).
///
/// # Panics
///
/// Panics if `start >= g.n()`.
///
/// # Examples
///
/// ```
/// use ld_graph::{traversal, Graph};
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)])?;
/// assert_eq!(traversal::bfs_order(&g, 0), vec![0, 1, 2]);
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn bfs_order(g: &Graph, start: usize) -> Vec<usize> {
    assert!(start < g.n(), "start vertex {start} out of range");
    let mut seen = vec![false; g.n()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Distances (in hops) from `start` to every vertex; `None` for unreachable
/// vertices.
///
/// # Panics
///
/// Panics if `start >= g.n()`.
pub fn bfs_distances(g: &Graph, start: usize) -> Vec<Option<usize>> {
    assert!(start < g.n(), "start vertex {start} out of range");
    let mut dist = vec![None; g.n()];
    let mut queue = VecDeque::new();
    dist[start] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued vertex has a distance");
        for v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected-component label for every vertex; labels are `0..k` assigned in
/// order of the smallest vertex of each component.
pub fn components(g: &Graph) -> Vec<usize> {
    let mut label = vec![usize::MAX; g.n()];
    let mut next = 0;
    for v in 0..g.n() {
        if label[v] == usize::MAX {
            for u in bfs_order(g, v) {
                label[u] = next;
            }
            next += 1;
        }
    }
    label
}

/// Number of connected components. An empty graph has zero components.
pub fn component_count(g: &Graph) -> usize {
    components(g).into_iter().max().map_or(0, |max| max + 1)
}

/// Whether the graph is connected. Graphs with fewer than two vertices are
/// connected by convention.
pub fn is_connected(g: &Graph) -> bool {
    g.n() <= 1 || component_count(g) == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_order_visits_reachable_only() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2]);
        assert_eq!(bfs_order(&g, 3), vec![3, 4]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = generators::path(4);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_distances_marks_unreachable() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(bfs_distances(&g, 0)[2], None);
    }

    #[test]
    fn components_labels_and_count() {
        let g = Graph::from_edges(6, [(0, 1), (2, 3), (3, 4)]).unwrap();
        assert_eq!(components(&g), vec![0, 0, 1, 1, 1, 2]);
        assert_eq!(component_count(&g), 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn complete_graph_is_connected() {
        assert!(is_connected(&generators::complete(8)));
    }

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
    }

    #[test]
    fn empty_graph_has_zero_components() {
        assert_eq!(component_count(&Graph::empty(0)), 0);
    }
}
