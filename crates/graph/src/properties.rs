//! Structural graph properties used by the paper's graph restrictions.
//!
//! Section 2.1 of the paper defines graph restrictions in terms of the
//! largest degree (`Δ ≤ k`), the smallest degree (`δ ≥ k`) and completeness
//! (`K_n`); Section 6 attributes the feasibility of liquid democracy to the
//! absence of "structural asymmetry in the node degrees". This module
//! measures all of these.

use crate::traversal;
use crate::Graph;

/// Maximum degree `Δ`. Returns `None` for the empty vertex set.
pub fn max_degree(g: &Graph) -> Option<usize> {
    g.degrees().max()
}

/// Minimum degree `δ`. Returns `None` for the empty vertex set.
pub fn min_degree(g: &Graph) -> Option<usize> {
    g.degrees().min()
}

/// Whether every vertex has the same degree `d`; returns that degree.
/// A graph with fewer than one vertex is vacuously regular with degree 0.
pub fn regularity(g: &Graph) -> Option<usize> {
    let mut degs = g.degrees();
    let first = degs.next().unwrap_or(0);
    degs.all(|d| d == first).then_some(first)
}

/// Whether the graph is the complete graph `K_n`.
pub fn is_complete(g: &Graph) -> bool {
    let n = g.n();
    g.m() == n * n.saturating_sub(1) / 2 && g.degrees().all(|d| d == n - 1) || n <= 1
}

/// Average degree `2m / n`; 0 for the empty vertex set.
pub fn average_degree(g: &Graph) -> f64 {
    if g.n() == 0 {
        0.0
    } else {
        2.0 * g.m() as f64 / g.n() as f64
    }
}

/// The *structural-asymmetry index*: `Δ / max(δ, 1)`.
///
/// Section 6 of the paper concludes that "the types of graphs that yield
/// the best results for delegation over direct voting are graphs that do
/// not have too much structural asymmetry in terms of degrees among nodes".
/// This index is 1 for regular graphs (complete, `d`-regular, circulant) and
/// grows without bound for stars and Barabási–Albert graphs.
pub fn structural_asymmetry(g: &Graph) -> f64 {
    match (max_degree(g), min_degree(g)) {
        (Some(dmax), Some(dmin)) => dmax as f64 / dmin.max(1) as f64,
        _ => 1.0,
    }
}

/// Histogram of degrees: `hist[d]` = number of vertices with degree `d`.
/// The vector has length `Δ + 1` (empty for a graph without vertices).
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    match max_degree(g) {
        None => Vec::new(),
        Some(dmax) => {
            let mut hist = vec![0usize; dmax + 1];
            for d in g.degrees() {
                hist[d] += 1;
            }
            hist
        }
    }
}

/// Whether the graph is connected (see [`traversal::is_connected`]).
pub fn is_connected(g: &Graph) -> bool {
    traversal::is_connected(g)
}

/// The diameter: the longest shortest path between any two vertices.
///
/// Returns `None` for disconnected graphs or graphs with fewer than two
/// vertices. Runs BFS from every vertex (`O(n·m)`), intended for the
/// moderate sizes the experiments use.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.n() < 2 || !traversal::is_connected(g) {
        return None;
    }
    let mut best = 0usize;
    for v in 0..g.n() {
        for d in traversal::bfs_distances(g, v).into_iter().flatten() {
            best = best.max(d);
        }
    }
    Some(best)
}

/// The average shortest-path length over all ordered vertex pairs.
///
/// Returns `None` for disconnected graphs or graphs with fewer than two
/// vertices. `O(n·m)`. Together with the clustering structure this is
/// what makes Watts–Strogatz graphs "small worlds".
pub fn average_path_length(g: &Graph) -> Option<f64> {
    if g.n() < 2 || !traversal::is_connected(g) {
        return None;
    }
    let mut total = 0usize;
    for v in 0..g.n() {
        total += traversal::bfs_distances(g, v)
            .into_iter()
            .flatten()
            .sum::<usize>();
    }
    Some(total as f64 / (g.n() * (g.n() - 1)) as f64)
}

/// Degree assortativity (Pearson correlation of degrees across edges).
///
/// Returns `None` when undefined (no edges, or zero degree variance across
/// edge endpoints, e.g. regular graphs).
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    if g.m() == 0 {
        return None;
    }
    // Pearson correlation over the 2m ordered endpoint pairs.
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    let mut sxx = 0.0f64;
    let mut syy = 0.0f64;
    let mut sxy = 0.0f64;
    let mut cnt = 0.0f64;
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        for (x, y) in [(du, dv), (dv, du)] {
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
            cnt += 1.0;
        }
    }
    let cov = sxy / cnt - (sx / cnt) * (sy / cnt);
    let vx = sxx / cnt - (sx / cnt) * (sx / cnt);
    let vy = syy / cnt - (sy / cnt) * (sy / cnt);
    if vx <= 1e-12 || vy <= 1e-12 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_extrema_on_star() {
        let g = generators::star(10);
        assert_eq!(max_degree(&g), Some(9));
        assert_eq!(min_degree(&g), Some(1));
        assert_eq!(structural_asymmetry(&g), 9.0);
    }

    #[test]
    fn complete_graph_properties() {
        let g = generators::complete(7);
        assert!(is_complete(&g));
        assert_eq!(regularity(&g), Some(6));
        assert_eq!(structural_asymmetry(&g), 1.0);
        assert!((average_degree(&g) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_graph_is_not_complete() {
        let g = generators::cycle(5);
        assert!(!is_complete(&g));
        assert_eq!(regularity(&g), Some(2));
    }

    #[test]
    fn irregular_graph_has_no_regularity() {
        let g = generators::path(4);
        assert_eq!(regularity(&g), None);
    }

    #[test]
    fn degree_histogram_shapes() {
        let g = generators::star(5); // degrees: 1,1,1,1,4
        assert_eq!(degree_histogram(&g), vec![0, 4, 0, 0, 1]);
        assert_eq!(degree_histogram(&Graph::empty(0)), Vec::<usize>::new());
        assert_eq!(degree_histogram(&Graph::empty(3)), vec![3]);
    }

    use crate::Graph;

    #[test]
    fn trivial_graphs_are_complete() {
        assert!(is_complete(&Graph::empty(0)));
        assert!(is_complete(&Graph::empty(1)));
        assert!(!is_complete(&Graph::empty(2)));
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(7)), Some(1));
        assert_eq!(diameter(&generators::star(9)), Some(2));
        assert_eq!(diameter(&Graph::empty(1)), None);
        assert_eq!(diameter(&Graph::empty(3)), None); // disconnected
    }

    #[test]
    fn average_path_length_of_known_graphs() {
        assert_eq!(average_path_length(&generators::complete(5)), Some(1.0));
        // Star on n vertices: hub↔leaf = 1 (2(n-1) ordered pairs),
        // leaf↔leaf = 2 ((n-1)(n-2) ordered pairs).
        let n = 9.0;
        let want = (2.0 * (n - 1.0) + 2.0 * (n - 1.0) * (n - 2.0)) / (n * (n - 1.0));
        let got = average_path_length(&generators::star(9)).unwrap();
        assert!((got - want).abs() < 1e-12);
        assert_eq!(average_path_length(&Graph::empty(4)), None);
    }

    #[test]
    fn small_world_rewiring_shortens_paths() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let lattice = generators::watts_strogatz(100, 6, 0.0, &mut rng).unwrap();
        let rewired = generators::watts_strogatz(100, 6, 0.3, &mut rng).unwrap();
        let l0 = average_path_length(&lattice).unwrap();
        if let Some(l1) = average_path_length(&rewired) {
            assert!(l1 < l0, "rewiring should shorten paths: {l0} vs {l1}");
        }
    }

    #[test]
    fn assortativity_of_star_is_negative() {
        let g = generators::star(20);
        let r = degree_assortativity(&g).unwrap();
        assert!(r < -0.9, "star assortativity {r} should be ≈ -1");
    }

    #[test]
    fn assortativity_undefined_on_regular_graphs() {
        assert_eq!(degree_assortativity(&generators::cycle(8)), None);
        assert_eq!(degree_assortativity(&Graph::empty(4)), None);
    }

    #[test]
    fn average_degree_empty_vertex_set() {
        assert_eq!(average_degree(&Graph::empty(0)), 0.0);
    }
}
