//! Directed graphs for delegation outcomes.

use serde::{Deserialize, Serialize};

/// A directed graph on vertices `0..n` with adjacency lists.
///
/// In liquid democracy, running a delegation mechanism on a problem instance
/// induces a *delegation graph*: a directed edge `(u, v)` means voter `u`
/// delegates their vote to voter `v`. This type is the general container;
/// the mechanism-specific invariants (out-degree ≤ 1, acyclicity) live in
/// `ld-core`, which uses the analyses provided here:
///
/// * [`DiGraph::sinks`] — voters that keep their vote (weight accumulates
///   at sinks),
/// * [`DiGraph::is_acyclic`] / [`DiGraph::topological_order`] — the paper
///   requires delegation graphs of approval-based mechanisms to be acyclic
///   (guaranteed by the approval margin `α > 0`),
/// * [`DiGraph::longest_path_len`] — the paper's *partition complexity*
///   (Definition 6 calls the longest path of a recycle-sampling graph its
///   partition complexity; for delegation graphs it bounds the dependency
///   depth).
///
/// # Examples
///
/// ```
/// use ld_graph::DiGraph;
///
/// // 0 -> 2 <- 1, 3 isolated
/// let mut g = DiGraph::new(4);
/// g.add_edge(0, 2);
/// g.add_edge(1, 2);
/// assert_eq!(g.sinks(), vec![2, 3]);
/// assert!(g.is_acyclic());
/// assert_eq!(g.longest_path_len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    out: Vec<Vec<usize>>,
    m: usize,
}

impl DiGraph {
    /// Creates a directed graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Adds the directed edge `(u, v)`. Parallel edges and self-loops are
    /// permitted at this layer; higher layers enforce their own invariants.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()` or `v >= self.n()`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(v < self.n(), "target vertex {v} out of range");
        self.out[u].push(v);
        self.m += 1;
    }

    /// Out-neighbours of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.out[u]
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.out[u].len()
    }

    /// In-degrees of all vertices.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut indeg = vec![0usize; self.n()];
        for targets in &self.out {
            for &v in targets {
                indeg[v] += 1;
            }
        }
        indeg
    }

    /// Vertices with no outgoing edge (ignoring self-loops), in increasing
    /// order. In a delegation graph these are the voters who actually cast
    /// a ballot.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|&v| self.out[v].iter().all(|&w| w == v))
            .collect()
    }

    /// Whether the graph contains no directed cycle (self-loops are ignored,
    /// matching the paper's "acyclic up to self cycles").
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// A topological order of the vertices, or `None` if the graph has a
    /// directed cycle. Self-loops are ignored.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.n();
        let mut indeg = vec![0usize; n];
        for (u, targets) in self.out.iter().enumerate() {
            for &v in targets {
                if v != u {
                    indeg[v] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.out[u] {
                if v != u {
                    indeg[v] -= 1;
                    if indeg[v] == 0 {
                        queue.push(v);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Length (in edges) of the longest directed path, or `None` if the
    /// graph is cyclic. Self-loops are ignored.
    ///
    /// For a delegation graph this is the longest delegation chain, which
    /// upper-bounds the paper's partition complexity `c` of the induced
    /// recycle-sampling structure.
    pub fn longest_path(&self) -> Option<usize> {
        let order = self.topological_order()?;
        let mut dist = vec![0usize; self.n()];
        // Process in reverse topological order: dist[u] = 1 + max dist[succ].
        for &u in order.iter().rev() {
            for &v in &self.out[u] {
                if v != u {
                    dist[u] = dist[u].max(dist[v] + 1);
                }
            }
        }
        dist.into_iter().max().or(Some(0))
    }

    /// Like [`DiGraph::longest_path`] but panics on cyclic graphs; shorthand
    /// for the common case where acyclicity is already guaranteed.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a directed cycle (other than self-loops).
    pub fn longest_path_len(&self) -> usize {
        self.longest_path()
            .expect("longest_path_len called on a cyclic graph")
    }

    /// Follows out-edges from `start` until reaching a sink, using the
    /// first out-edge at every step; returns the sink.
    ///
    /// This is the resolution rule for single-delegation graphs
    /// (out-degree ≤ 1): the terminal delegate who ends up casting the vote
    /// that `start` transitively handed over.
    ///
    /// Returns `None` if a cycle is encountered before reaching a sink.
    ///
    /// # Panics
    ///
    /// Panics if `start >= self.n()`.
    pub fn resolve_to_sink(&self, start: usize) -> Option<usize> {
        let mut cur = start;
        // After n steps without reaching a sink we must have looped.
        for _ in 0..=self.n() {
            match self.out[cur].iter().find(|&&w| w != cur) {
                None => return Some(cur),
                Some(&next) => cur = next,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for v in 0..n.saturating_sub(1) {
            g.add_edge(v, v + 1);
        }
        g
    }

    #[test]
    fn empty_digraph() {
        let g = DiGraph::new(3);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 0);
        assert_eq!(g.sinks(), vec![0, 1, 2]);
        assert!(g.is_acyclic());
        assert_eq!(g.longest_path_len(), 0);
    }

    #[test]
    fn chain_has_single_sink_and_full_path() {
        let g = chain(5);
        assert_eq!(g.sinks(), vec![4]);
        assert_eq!(g.longest_path_len(), 4);
        assert_eq!(g.resolve_to_sink(0), Some(4));
        assert_eq!(g.resolve_to_sink(4), Some(4));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = chain(3);
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
        assert_eq!(g.topological_order(), None);
        assert_eq!(g.longest_path(), None);
        assert_eq!(g.resolve_to_sink(0), None);
    }

    #[test]
    fn self_loops_do_not_count_as_cycles() {
        let mut g = chain(3);
        g.add_edge(1, 1);
        assert!(g.is_acyclic());
        // Vertex 1 still delegates onward to 2.
        assert_eq!(g.resolve_to_sink(0), Some(2));
        // A vertex with only a self-loop is a sink.
        let mut h = DiGraph::new(2);
        h.add_edge(0, 0);
        assert_eq!(h.sinks(), vec![0, 1]);
        assert_eq!(h.resolve_to_sink(0), Some(0));
    }

    #[test]
    fn star_delegation_concentrates_on_center() {
        // Leaves 1..=4 all delegate to center 0 — the Figure 1 shape.
        let mut g = DiGraph::new(5);
        for leaf in 1..5 {
            g.add_edge(leaf, 0);
        }
        assert_eq!(g.sinks(), vec![0]);
        assert_eq!(g.in_degrees(), vec![4, 0, 0, 0, 0]);
        assert_eq!(g.longest_path_len(), 1);
        for leaf in 1..5 {
            assert_eq!(g.resolve_to_sink(leaf), Some(0));
        }
    }

    #[test]
    fn topological_order_respects_edges() {
        // A deterministic pseudo-random DAG on 500 vertices (edges only
        // from lower to higher labels, so acyclic by construction). The
        // order check uses an O(n) index map rather than the O(n²)
        // `iter().position()` scan, so the test stays fast at this size.
        let n = 500;
        let mut g = DiGraph::new(n);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for u in 0..n - 1 {
            for _ in 0..3 {
                let v = u + 1 + (next() as usize) % (n - u - 1);
                g.add_edge(u, v);
            }
        }
        let order = g.topological_order().unwrap();
        assert_eq!(order.len(), n);
        let mut pos = vec![usize::MAX; n];
        for (idx, &v) in order.iter().enumerate() {
            assert_eq!(pos[v], usize::MAX, "vertex {v} repeated in order");
            pos[v] = idx;
        }
        for (u, targets) in (0..n).map(|u| (u, g.successors(u))) {
            for &v in targets {
                assert!(pos[u] < pos[v], "edge ({u},{v}) violates the order");
            }
        }
    }

    #[test]
    fn longest_path_on_dag_with_branches() {
        let mut g = DiGraph::new(6);
        // 0->1->2->3 and 0->4->3, 5 isolated.
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(0, 4);
        g.add_edge(4, 3);
        assert_eq!(g.longest_path_len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_target() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 5);
    }
}
