//! # `ld-graph` — graph substrate for liquid democracy
//!
//! This crate provides the graph machinery the liquid-democracy model of
//! Chatterjee, Gilbert, Schmid, Svoboda and Yeo (*When is Liquid Democracy
//! Possible? On the Manipulation of Variance*, PODC 2025) is defined over:
//!
//! * [`Graph`] — a compact undirected simple graph with sorted adjacency
//!   lists, used to represent the social network of voters `(V, E)`.
//! * [`DiGraph`] — a directed graph used for *delegation graphs* (the output
//!   of a delegation mechanism), with sink detection, cycle detection,
//!   topological ordering and longest-path computation (the paper's
//!   *partition complexity*).
//! * [`generators`] — one generator per graph restriction studied in the
//!   paper (complete `K_n`, random `d`-regular `Rand(n, d)`, bounded maximum
//!   degree `Δ ≤ k`, bounded minimum degree `δ ≥ k`, the star counterexample
//!   of Figure 1) plus the social-network models named in the paper's
//!   discussion section (Barabási–Albert, Watts–Strogatz) and deterministic
//!   baselines (ring, path, grid, circulant, Erdős–Rényi).
//! * [`properties`] — structural measurements: degree extrema and
//!   histograms, connectivity, regularity, and the structural-asymmetry
//!   index that Section 6 of the paper identifies as the quantity governing
//!   the feasibility of liquid democracy.
//! * [`traversal`] — BFS/DFS, connected components and related utilities.
//!
//! Vertices are dense indices `0..n`, matching the paper's convention of
//! ordering voters by competency (`p_i ≤ p_j` for `i < j`).
//!
//! # Examples
//!
//! ```
//! use ld_graph::{generators, Graph};
//! use rand::SeedableRng;
//!
//! let k5 = generators::complete(5);
//! assert_eq!(k5.degree(0), 4);
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let reg = generators::random_regular(100, 4, &mut rng)?;
//! assert!(reg.degrees().all(|d| d == 4));
//! # Ok::<(), ld_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
mod error;
mod graph;

pub mod generators;
pub mod io;
pub mod properties;
pub mod traversal;

pub use digraph::DiGraph;
pub use error::{GraphError, Result};
pub use graph::{Edge, Graph, GraphBuilder, Neighbors};
