//! Random `d`-regular graphs via the configuration (pairing) model.

use super::MAX_ATTEMPTS;
use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples a random `d`-regular simple graph on `n` vertices — the paper's
/// restriction `Rand(n, d)` (§2.1), the topology of Theorem 3.
///
/// Uses the configuration model: each vertex gets `d` half-edges ("stubs"),
/// a uniformly random perfect matching of the stubs is drawn, and the result
/// is rejected and retried if it contains a self-loop or multi-edge. For
/// constant `d` the acceptance probability converges to
/// `exp(-(d²-1)/4) > 0`, so rejection terminates quickly; the produced graph
/// is uniform over simple `d`-regular graphs.
///
/// # Errors
///
/// * [`GraphError::InfeasibleParameters`] if `d ≥ n` or `n · d` is odd
///   (no `d`-regular graph exists).
/// * [`GraphError::GenerationFailed`] if the retry budget is exhausted
///   (practically only possible for `d` close to `n`).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = ld_graph::generators::random_regular(64, 6, &mut rng)?;
/// assert!(g.degrees().all(|d| d == 6));
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph> {
    if d == 0 {
        return Ok(Graph::empty(n));
    }
    if d >= n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("degree d = {d} must be < n = {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("n·d = {}·{} is odd; no d-regular graph exists", n, d),
        });
    }
    // stubs[i] = vertex owning the i-th half-edge.
    let all_stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    'attempt: for _ in 0..MAX_ATTEMPTS {
        let mut stubs = all_stubs.clone();
        stubs.shuffle(rng);
        let mut b = GraphBuilder::with_capacity(n, n * d / 2);
        // Track adjacency for O(1) multi-edge rejection.
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        let mut fails = 0usize;
        while stubs.len() >= 2 {
            let i = rng.gen_range(0..stubs.len());
            let mut j = rng.gen_range(0..stubs.len() - 1);
            if j >= i {
                j += 1;
            }
            let (u, v) = (stubs[i], stubs[j]);
            let key = (u.min(v), u.max(v));
            if u == v || seen.contains(&key) {
                fails += 1;
                // The remaining stubs may admit no suitable pair (e.g. they
                // all belong to one vertex); give up on this attempt after a
                // generous failure budget relative to the remaining work.
                if fails > 100 * stubs.len() + 200 {
                    continue 'attempt;
                }
                continue;
            }
            fails = 0;
            seen.insert(key);
            b.add_edge(u, v).expect("pairing-model edges are valid");
            // Remove the two matched stubs, larger index first.
            let (hi, lo) = (i.max(j), i.min(j));
            stubs.swap_remove(hi);
            stubs.swap_remove(lo);
        }
        return Ok(b.build());
    }
    Err(GraphError::GenerationFailed {
        attempts: MAX_ATTEMPTS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degrees_are_exactly_d() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(n, d) in &[(10usize, 3usize), (50, 4), (100, 7), (64, 2)] {
            let g = random_regular(n, d, &mut rng).unwrap();
            assert!(g.degrees().all(|deg| deg == d), "n={n} d={d}");
            assert_eq!(g.m(), n * d / 2);
        }
    }

    #[test]
    fn zero_degree_gives_empty_graph() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = random_regular(12, 0, &mut rng).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn rejects_infeasible_parameters() {
        let mut rng = StdRng::seed_from_u64(17);
        assert!(matches!(
            random_regular(5, 5, &mut rng),
            Err(GraphError::InfeasibleParameters { .. })
        ));
        assert!(matches!(
            random_regular(5, 3, &mut rng), // n*d = 15 odd
            Err(GraphError::InfeasibleParameters { .. })
        ));
    }

    #[test]
    fn d_regular_with_d_at_least_3_is_usually_connected() {
        // Random 3-regular graphs are connected whp; with 20 seeds all
        // should be connected at n = 60.
        let mut connected = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_regular(60, 3, &mut rng).unwrap();
            if is_connected(&g) {
                connected += 1;
            }
        }
        assert!(connected >= 19, "only {connected}/20 samples connected");
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let g1 = random_regular(30, 4, &mut StdRng::seed_from_u64(1)).unwrap();
        let g2 = random_regular(30, 4, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(g1, g2);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let g1 = random_regular(30, 4, &mut StdRng::seed_from_u64(1)).unwrap();
        let g2 = random_regular(30, 4, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn near_complete_regular_still_succeeds() {
        // d = n - 2 on even n: complement is a perfect matching; the pairing
        // model's acceptance rate is tiny, but our rejection loop should
        // still find one within budget for small n.
        let mut rng = StdRng::seed_from_u64(23);
        let g = random_regular(8, 6, &mut rng).unwrap();
        assert!(g.degrees().all(|d| d == 6));
    }
}
