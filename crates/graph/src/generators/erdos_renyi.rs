//! Erdős–Rényi random graphs `G(n, p)` and `G(n, m)`.

use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples `G(n, p)`: each of the `n(n-1)/2` possible edges is present
/// independently with probability `p`.
///
/// Used as an unstructured baseline topology; the paper's positive results
/// are about *structured* families, so comparing against `G(n, p)` shows the
/// structure is doing work.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `p` is not in `[0, 1]`
/// or is not finite.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = ld_graph::generators::erdos_renyi_gnp(50, 0.1, &mut rng)?;
/// assert_eq!(g.n(), 50);
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn erdos_renyi_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("edge probability {p} not in [0, 1]"),
        });
    }
    let mut b = GraphBuilder::new(n);
    if p == 0.0 {
        return Ok(b.build());
    }
    if p == 1.0 {
        return Ok(super::complete(n));
    }
    // Geometric skipping: iterate over the edge list implicitly, jumping
    // log(1-u)/log(1-p) slots between successive present edges. This is
    // O(m) rather than O(n^2).
    let total = n.saturating_mul(n.saturating_sub(1)) / 2;
    let log_q = (1.0 - p).ln();
    let mut slot: i64 = -1;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log_q).floor() as i64;
        slot += 1 + skip;
        if slot as usize >= total {
            break;
        }
        let (x, y) = edge_from_index(n, slot as usize);
        b.add_edge(x, y).expect("enumerated edges are valid");
    }
    Ok(b.build())
}

/// Samples `G(n, m)`: a graph chosen uniformly among all graphs with exactly
/// `m` edges.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `m > n(n-1)/2`.
pub fn erdos_renyi_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph> {
    let total = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > total {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("m = {m} exceeds the {total} possible edges on {n} vertices"),
        });
    }
    // Partial Fisher–Yates over edge indices: pick m distinct indices.
    // For m close to total this is still O(m) expected with a HashSet-free
    // approach: we use Floyd's algorithm.
    let mut chosen = Vec::with_capacity(m);
    if m * 2 >= total {
        // Dense: shuffle the full index range.
        let mut all: Vec<usize> = (0..total).collect();
        all.shuffle(rng);
        chosen.extend_from_slice(&all[..m]);
    } else {
        // Sparse: Floyd's sampling.
        let mut set = std::collections::HashSet::with_capacity(m);
        for j in (total - m)..total {
            let t = rng.gen_range(0..=j);
            let pick = if set.insert(t) {
                t
            } else {
                set.insert(j);
                j
            };
            chosen.push(pick);
        }
    }
    let mut b = GraphBuilder::with_capacity(n, m);
    for idx in chosen {
        let (x, y) = edge_from_index(n, idx);
        b.add_edge(x, y).expect("enumerated edges are valid");
    }
    Ok(b.build())
}

/// Maps a linear index in `0..n(n-1)/2` to the corresponding pair `(u, v)`
/// with `u < v`, enumerating row by row: (0,1), (0,2), …, (0,n-1), (1,2), …
fn edge_from_index(n: usize, mut idx: usize) -> (usize, usize) {
    let mut u = 0usize;
    let mut row = n - 1; // edges in row u
    while idx >= row {
        idx -= row;
        u += 1;
        row -= 1;
    }
    (u, u + 1 + idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_index_enumeration_is_bijective() {
        let n = 7;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total {
            let (u, v) = edge_from_index(n, idx);
            assert!(u < v && v < n, "bad edge ({u},{v})");
            assert!(seen.insert((u, v)), "index {idx} repeated edge ({u},{v})");
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(erdos_renyi_gnp(10, 0.0, &mut rng).unwrap().m(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, &mut rng).unwrap().m(), 45);
    }

    #[test]
    fn gnp_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(erdos_renyi_gnp(10, -0.1, &mut rng).is_err());
        assert!(erdos_renyi_gnp(10, 1.5, &mut rng).is_err());
        assert!(erdos_renyi_gnp(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn gnp_edge_count_close_to_expectation() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200;
        let p = 0.05;
        let trials = 30;
        let mean_m: f64 = (0..trials)
            .map(|_| erdos_renyi_gnp(n, p, &mut rng).unwrap().m() as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!(
            (mean_m - expected).abs() < 0.1 * expected,
            "mean edges {mean_m} far from expectation {expected}"
        );
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(9);
        for &m in &[0usize, 1, 10, 45] {
            let g = erdos_renyi_gnm(10, m, &mut rng).unwrap();
            assert_eq!(g.m(), m);
        }
    }

    #[test]
    fn gnm_rejects_too_many_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(erdos_renyi_gnm(4, 7, &mut rng).is_err());
    }

    #[test]
    fn gnm_dense_path_uses_shuffle() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = erdos_renyi_gnm(10, 40, &mut rng).unwrap();
        assert_eq!(g.m(), 40);
    }
}
