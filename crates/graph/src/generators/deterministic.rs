//! Deterministic graph families: complete, star, path, cycle, grid, circulant.

use crate::{Graph, GraphBuilder};

/// The complete graph `K_n`: every pair of voters is connected.
///
/// This is the paper's restriction `K_n` (§2.1) under which Algorithm 1 and
/// Theorem 2 are proved, and the topology assumed by Halpern et al. \[21\].
///
/// # Examples
///
/// ```
/// let g = ld_graph::generators::complete(6);
/// assert_eq!(g.m(), 15);
/// assert!(g.degrees().all(|d| d == 5));
/// ```
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_mul(n.saturating_sub(1)) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("complete-graph edges are valid");
        }
    }
    b.build()
}

/// The star `K_{1, n-1}` with the hub at vertex `n - 1`.
///
/// The hub is placed at the *highest* index because the paper orders voters
/// by competency (`p_i ≤ p_j` for `i < j`) and Figure 1's counterexample
/// puts the most competent voter (competency 2/3) at the center with every
/// leaf (competency 1/3) attached to it. With the hub at `n - 1`, assigning
/// a sorted competency profile automatically reproduces that instance.
///
/// Returns the empty graph for `n ≤ 1`.
///
/// # Examples
///
/// ```
/// let g = ld_graph::generators::star(5);
/// assert_eq!(g.degree(4), 4); // hub
/// assert_eq!(g.degree(0), 1); // leaf
/// ```
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    if n >= 2 {
        let hub = n - 1;
        for leaf in 0..hub {
            b.add_edge(leaf, hub).expect("star edges are valid");
        }
    }
    b.build()
}

/// The path `P_n`: vertices `0 — 1 — … — n-1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 0..n.saturating_sub(1) {
        b.add_edge(v, v + 1).expect("path edges are valid");
    }
    b.build()
}

/// The cycle `C_n`. Returns a path for `n < 3` (a 2-cycle would be a
/// duplicate edge in a simple graph).
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 0..n - 1 {
        b.add_edge(v, v + 1).expect("cycle edges are valid");
    }
    b.add_edge(n - 1, 0).expect("cycle closing edge is valid");
    b.build()
}

/// The `rows × cols` grid graph (4-neighbour lattice), a natural
/// bounded-degree (`Δ ≤ 4`) topology.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1))
                    .expect("grid edges are valid");
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c))
                    .expect("grid edges are valid");
            }
        }
    }
    b.build()
}

/// The circulant graph `C_n(offsets)`: vertex `v` is adjacent to
/// `v ± o (mod n)` for every offset `o`. A deterministic `2|offsets|`-regular
/// graph (when all offsets are distinct, nonzero, and `< n/2`).
///
/// Offsets equal to `0` or `≥ n` are ignored; the offset `n/2` (for even
/// `n`) contributes a single edge per vertex pair as required in a simple
/// graph.
///
/// # Examples
///
/// ```
/// let g = ld_graph::generators::circulant(8, &[1, 2]);
/// assert!(g.degrees().all(|d| d == 4));
/// ```
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for &o in offsets {
        if o == 0 || o >= n {
            continue;
        }
        for v in 0..n {
            let w = (v + o) % n;
            if !b.contains_edge(v, w) && v != w {
                b.add_edge(v, w).expect("circulant edges are valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn complete_counts() {
        for n in 0..8 {
            let g = complete(n);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n * n.saturating_sub(1) / 2);
        }
    }

    #[test]
    fn complete_every_pair_adjacent() {
        let g = complete(7);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn star_hub_is_last_vertex() {
        let g = star(10);
        assert_eq!(g.degree(9), 9);
        for leaf in 0..9 {
            assert_eq!(g.degree(leaf), 1);
            assert!(g.has_edge(leaf, 9));
        }
    }

    #[test]
    fn star_degenerate_sizes() {
        assert_eq!(star(0).n(), 0);
        assert_eq!(star(1).m(), 0);
        assert_eq!(star(2).m(), 1);
    }

    #[test]
    fn path_and_cycle_shapes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(cycle(2).m(), 1); // degrades to path
        assert!(cycle(6).degrees().all(|d| d == 2));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        // edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8
        assert_eq!(g.m(), 17);
        assert!(is_connected(&g));
        assert!(g.degrees().all(|d| (2..=4).contains(&d)));
    }

    #[test]
    fn circulant_regularity() {
        let g = circulant(10, &[1, 3]);
        assert!(g.degrees().all(|d| d == 4));
        assert!(is_connected(&g));
    }

    #[test]
    fn circulant_half_offset_is_single_edge() {
        // offset n/2 pairs vertices up once; degree contribution is 1.
        let g = circulant(6, &[3]);
        assert!(g.degrees().all(|d| d == 1));
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn circulant_ignores_invalid_offsets() {
        let g = circulant(5, &[0, 5, 7]);
        assert_eq!(g.m(), 0);
    }
}
