//! Barabási–Albert preferential-attachment graphs.

use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};
use rand::Rng;

/// Samples a Barabási–Albert preferential-attachment graph: starting from a
/// small complete seed of `m + 1` vertices, each new vertex attaches to `m`
/// existing vertices chosen with probability proportional to their current
/// degree.
///
/// The paper's discussion (§6, *Practical Considerations*) explicitly
/// proposes checking whether Barabási–Albert graphs — as models of real
/// social networks — satisfy the sink-weight conditions of Lemma 5; this
/// generator powers that experiment (`X3` in DESIGN.md). BA graphs have
/// heavy-tailed degrees, i.e. exactly the *structural asymmetry* the paper
/// warns concentrates voting power.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `m == 0` or
/// `n < m + 1`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = ld_graph::generators::barabasi_albert(200, 3, &mut rng)?;
/// assert_eq!(g.n(), 200);
/// assert!(g.degrees().min().unwrap() >= 3);
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph> {
    if m == 0 {
        return Err(GraphError::InfeasibleParameters {
            reason: "attachment count m must be positive".to_string(),
        });
    }
    if n < m + 1 {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("n = {n} must be at least m + 1 = {}", m + 1),
        });
    }
    let seed = m + 1;
    let mut b = GraphBuilder::with_capacity(n, seed * (seed - 1) / 2 + (n - seed) * m);
    // `targets` holds one entry per half-edge endpoint, so sampling a
    // uniform element gives degree-proportional selection.
    let mut endpoint_pool: Vec<usize> = Vec::with_capacity(2 * n * m);
    for u in 0..seed {
        for v in (u + 1)..seed {
            b.add_edge(u, v).expect("seed clique edges are valid");
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    let mut chosen = Vec::with_capacity(m);
    for new in seed..n {
        chosen.clear();
        let mut guard = 0usize;
        while chosen.len() < m {
            let target = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            guard += 1;
            if guard > 1000 * m {
                // Fall back to uniform choice to guarantee progress; in
                // practice unreachable because there are ≥ m distinct
                // existing vertices.
                let target = rng.gen_range(0..new);
                if !chosen.contains(&target) {
                    chosen.push(target);
                }
                continue;
            }
            if !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &t in &chosen {
            b.add_edge(new, t).expect("attachment edges are valid");
            endpoint_pool.push(new);
            endpoint_pool.push(t);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_and_counts() {
        let mut rng = StdRng::seed_from_u64(5);
        let (n, m) = (300usize, 3usize);
        let g = barabasi_albert(n, m, &mut rng).unwrap();
        assert_eq!(g.n(), n);
        let seed = m + 1;
        assert_eq!(g.m(), seed * (seed - 1) / 2 + (n - seed) * m);
        assert!(g.degrees().min().unwrap() >= m);
        assert!(is_connected(&g));
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        // The max degree should be far above the median — the structural
        // asymmetry the paper warns about.
        let mut rng = StdRng::seed_from_u64(77);
        let g = barabasi_albert(1000, 2, &mut rng).unwrap();
        let mut degs: Vec<usize> = g.degrees().collect();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(
            max >= 5 * median,
            "max {max} vs median {median}: not heavy-tailed"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(barabasi_albert(10, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn minimal_size_is_just_the_seed_clique() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(4, 3, &mut rng).unwrap();
        assert_eq!(g.m(), 6); // K_4
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(8)).unwrap();
        let b = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_eq!(a, b);
    }
}
