//! Watts–Strogatz small-world graphs.

use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};
use rand::Rng;

/// Samples a Watts–Strogatz small-world graph: a ring lattice where each
/// vertex is joined to its `k` nearest neighbours (`k/2` on each side),
/// with every edge independently *rewired* to a uniform random endpoint
/// with probability `beta`.
///
/// At `beta = 0` the graph is the deterministic circulant lattice (a
/// low-asymmetry topology where the paper predicts delegation behaves
/// well); at `beta = 1` it approaches an Erdős–Rényi-like graph. This
/// interpolation is used by experiment `X3` (DESIGN.md) as a second
/// social-network stand-in alongside Barabási–Albert.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `k` is odd, `k ≥ n`, or
/// `beta` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = ld_graph::generators::watts_strogatz(100, 6, 0.1, &mut rng)?;
/// assert_eq!(g.n(), 100);
/// assert_eq!(g.m(), 300);
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph> {
    if !k.is_multiple_of(2) {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("lattice degree k = {k} must be even"),
        });
    }
    if k >= n {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("lattice degree k = {k} must be < n = {n}"),
        });
    }
    if !(0.0..=1.0).contains(&beta) || !beta.is_finite() {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("rewiring probability {beta} not in [0, 1]"),
        });
    }
    let mut edges = std::collections::HashSet::with_capacity(n * k / 2);
    for u in 0..n {
        for off in 1..=(k / 2) {
            let v = (u + off) % n;
            edges.insert((u.min(v), u.max(v)));
        }
    }
    // Rewire: iterate over a snapshot of the lattice edges.
    let lattice: Vec<(usize, usize)> = {
        let mut v: Vec<_> = edges.iter().copied().collect();
        v.sort_unstable();
        v
    };
    for (u, v) in lattice {
        if rng.gen_bool(beta) {
            // Rewire the (u, v) edge to (u, w) for a fresh random w.
            let mut guard = 0;
            loop {
                let w = rng.gen_range(0..n);
                guard += 1;
                if guard > 100 * n {
                    break; // keep the original edge; graph nearly complete
                }
                if w == u {
                    continue;
                }
                let key = (u.min(w), u.max(w));
                if edges.contains(&key) {
                    continue;
                }
                edges.remove(&(u.min(v), u.max(v)));
                edges.insert(key);
                break;
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v).expect("rewired edges are valid");
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_beta_is_the_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = watts_strogatz(20, 4, 0.0, &mut rng).unwrap();
        assert!(g.degrees().all(|d| d == 4));
        assert_eq!(g.m(), 40);
        assert!(is_connected(&g));
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let mut rng = StdRng::seed_from_u64(6);
        for &beta in &[0.1, 0.5, 1.0] {
            let g = watts_strogatz(60, 6, beta, &mut rng).unwrap();
            assert_eq!(g.m(), 180, "beta = {beta}");
        }
    }

    #[test]
    fn rewiring_changes_the_graph() {
        let lattice = watts_strogatz(50, 4, 0.0, &mut StdRng::seed_from_u64(1)).unwrap();
        let rewired = watts_strogatz(50, 4, 0.5, &mut StdRng::seed_from_u64(1)).unwrap();
        assert_ne!(lattice, rewired);
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err()); // odd k
        assert!(watts_strogatz(10, 10, 0.1, &mut rng).is_err()); // k >= n
        assert!(watts_strogatz(10, 4, 1.5, &mut rng).is_err()); // bad beta
        assert!(watts_strogatz(10, 4, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = watts_strogatz(40, 4, 0.3, &mut StdRng::seed_from_u64(8)).unwrap();
        let b = watts_strogatz(40, 4, 0.3, &mut StdRng::seed_from_u64(8)).unwrap();
        assert_eq!(a, b);
    }
}
