//! Graph generators, one per graph family studied in the paper.
//!
//! | paper artifact | generator |
//! |---|---|
//! | restriction `K_n` (§2.1) | [`complete`] |
//! | restriction `Rand(n, d)` (§2.1, §4.2) | [`random_regular`] |
//! | restriction `Δ ≤ k` (§2.1, §5.1) | [`random_bounded_degree`] |
//! | restriction `δ ≥ k` (§2.1, §5.2) | [`random_min_degree`] |
//! | Figure 1 counterexample | [`star`] |
//! | §6 social-network check | [`barabasi_albert`], [`watts_strogatz`] |
//! | baselines | [`erdos_renyi_gnp`], [`erdos_renyi_gnm`], [`cycle`], [`path`], [`grid`], [`circulant`] |
//!
//! All randomized generators take an explicit `&mut impl Rng` so callers own
//! determinism, and return [`Result`] because parameters can be infeasible
//! (e.g. `n·d` odd for a `d`-regular graph).

mod barabasi_albert;
mod bounded_degree;
mod degree_sequence;
mod deterministic;
mod erdos_renyi;
mod min_degree;
mod regular;
mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use bounded_degree::random_bounded_degree;
pub use degree_sequence::{connected_caveman, from_degree_sequence};
pub use deterministic::{circulant, complete, cycle, grid, path, star};
pub use erdos_renyi::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use min_degree::random_min_degree;
pub use regular::random_regular;
pub use watts_strogatz::watts_strogatz;

/// Retry budget shared by rejection-sampling generators.
pub(crate) const MAX_ATTEMPTS: usize = 1000;
