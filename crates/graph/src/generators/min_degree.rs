//! Random graphs with bounded minimum degree `δ ≥ k` (the k-out model).

use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};
use rand::Rng;

/// Samples a random graph with minimum degree at least `min_degree` using
/// the *k-out* model — the paper's restriction `δ ≥ k` (§2.1), the graph
/// class of Theorem 5.
///
/// Construction: every vertex selects `min_degree` **distinct** random
/// partners (uniform without replacement, excluding itself); the graph is
/// the union of all selected pairs. Each vertex is incident to all of its
/// own distinct picks, so its degree is at least `min_degree`; typical
/// degrees are around `2·min_degree` (own picks plus incoming picks).
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `min_degree >= n`
/// (unless both are zero).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = ld_graph::generators::random_min_degree(100, 4, &mut rng)?;
/// assert!(g.degrees().all(|d| d >= 4));
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn random_min_degree<R: Rng + ?Sized>(
    n: usize,
    min_degree: usize,
    rng: &mut R,
) -> Result<Graph> {
    if min_degree >= n && !(n == 0 && min_degree == 0) {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("min degree {min_degree} must be < n = {n}"),
        });
    }
    let mut edges = std::collections::HashSet::new();
    let mut picks = std::collections::HashSet::new();
    let mut b = GraphBuilder::with_capacity(n, n * min_degree);
    for u in 0..n {
        picks.clear();
        while picks.len() < min_degree {
            let v = rng.gen_range(0..n);
            if v == u || !picks.insert(v) {
                continue; // self or repeated pick: redraw
            }
            let key = (u.min(v), u.max(v));
            if edges.insert(key) {
                b.add_edge(u, v).expect("sampled edges are valid");
            }
            // If the edge already existed (v picked u earlier), it is
            // incident to u and still counts toward u's degree quota.
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn minimum_degree_is_met() {
        let mut rng = StdRng::seed_from_u64(61);
        for &(n, k) in &[(20usize, 2usize), (100, 4), (50, 7), (10, 9)] {
            let g = random_min_degree(n, k, &mut rng).unwrap();
            let dmin = g.degrees().min().unwrap();
            assert!(dmin >= k, "n={n} k={k}: min degree {dmin}");
        }
    }

    #[test]
    fn average_degree_is_moderate() {
        // Expected degree ≈ 2k (own picks + incoming picks); should be well
        // under 3k for n >> k.
        let mut rng = StdRng::seed_from_u64(62);
        let (n, k) = (500usize, 5usize);
        let g = random_min_degree(n, k, &mut rng).unwrap();
        let avg = 2.0 * g.m() as f64 / n as f64;
        assert!(avg >= k as f64 && avg <= 3.0 * k as f64, "avg degree {avg}");
    }

    #[test]
    fn k_out_graphs_are_connected_for_k_ge_2() {
        for seed in 0..10u64 {
            let mut r = StdRng::seed_from_u64(seed);
            let g = random_min_degree(80, 2, &mut r).unwrap();
            assert!(is_connected(&g), "seed {seed} disconnected");
        }
    }

    #[test]
    fn rejects_k_ge_n() {
        let mut rng = StdRng::seed_from_u64(64);
        assert!(random_min_degree(5, 5, &mut rng).is_err());
    }

    #[test]
    fn zero_min_degree_gives_empty_graph() {
        let mut rng = StdRng::seed_from_u64(64);
        let g = random_min_degree(10, 0, &mut rng).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn n_minus_one_min_degree_gives_complete_graph() {
        let mut rng = StdRng::seed_from_u64(65);
        let g = random_min_degree(6, 5, &mut rng).unwrap();
        assert_eq!(g.m(), 15);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g1 = random_min_degree(40, 3, &mut StdRng::seed_from_u64(9)).unwrap();
        let g2 = random_min_degree(40, 3, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(g1, g2);
    }
}
