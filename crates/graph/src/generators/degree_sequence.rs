//! Configuration-model graphs from an arbitrary degree sequence.

use super::MAX_ATTEMPTS;
use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples a simple graph whose vertex `v` has degree exactly `degrees[v]`,
/// via the configuration model with per-pair rejection (Steger–Wormald
/// style), restarting when stuck.
///
/// This generalizes [`super::random_regular`] and lets experiments build
/// electorates with *arbitrary* degree heterogeneity — the structural
/// asymmetry knob the paper's §6 identifies — e.g. two-tier
/// "elite/crowd" sequences interpolating between regular graphs and the
/// star.
///
/// # Errors
///
/// * [`GraphError::InfeasibleParameters`] if the degree sum is odd, some
///   degree is `≥ n`, or the sequence fails the Erdős–Gallai condition
///   grossly (we reject `max degree > remaining stubs`, catching the
///   common infeasible cases; pathological sequences surface as
///   [`GraphError::GenerationFailed`]).
/// * [`GraphError::GenerationFailed`] if the retry budget is exhausted.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let degs = vec![3, 3, 2, 2, 2, 2];
/// let g = ld_graph::generators::from_degree_sequence(&degs, &mut rng)?;
/// for (v, &d) in degs.iter().enumerate() {
///     assert_eq!(g.degree(v), d);
/// }
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn from_degree_sequence<R: Rng + ?Sized>(degrees: &[usize], rng: &mut R) -> Result<Graph> {
    let n = degrees.len();
    let total: usize = degrees.iter().sum();
    if !total.is_multiple_of(2) {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("degree sum {total} is odd"),
        });
    }
    if let Some((v, &d)) = degrees.iter().enumerate().find(|&(_, &d)| d >= n && d > 0) {
        return Err(GraphError::InfeasibleParameters {
            reason: format!("degree {d} at vertex {v} is not < n = {n}"),
        });
    }
    if total == 0 {
        return Ok(Graph::empty(n));
    }
    let all_stubs: Vec<usize> = degrees
        .iter()
        .enumerate()
        .flat_map(|(v, &d)| std::iter::repeat_n(v, d))
        .collect();
    'attempt: for _ in 0..MAX_ATTEMPTS {
        let mut stubs = all_stubs.clone();
        stubs.shuffle(rng);
        let mut edges: Vec<(usize, usize)> = Vec::with_capacity(total / 2);
        let mut seen = std::collections::HashSet::with_capacity(total / 2);
        let mut fails = 0usize;
        while stubs.len() >= 2 {
            let i = rng.gen_range(0..stubs.len());
            let mut j = rng.gen_range(0..stubs.len() - 1);
            if j >= i {
                j += 1;
            }
            let (u, v) = (stubs[i], stubs[j]);
            let key = (u.min(v), u.max(v));
            if u == v || seen.contains(&key) {
                fails += 1;
                if fails <= 50 * stubs.len() + 100 {
                    continue;
                }
                // Endgame repair: the remaining stubs admit no suitable
                // pair directly; splice them into a random existing edge
                // (a, b): remove (a, b), add (u, a) and (v, b). Preserves
                // every degree and clears one stub pair. Skewed sequences
                // (hubs of degree Θ(n)) hit this state almost surely, so
                // repair rather than restart.
                let mut repaired = false;
                for _ in 0..500 {
                    let idx = rng.gen_range(0..edges.len().max(1));
                    let Some(&(a, bb)) = edges.get(idx) else {
                        break;
                    };
                    // Orient the spliced edge both ways at random.
                    let (a, bb) = if rng.gen_bool(0.5) { (a, bb) } else { (bb, a) };
                    let ua = (u.min(a), u.max(a));
                    let vb = (v.min(bb), v.max(bb));
                    if u == a || v == bb || ua == vb || seen.contains(&ua) || seen.contains(&vb) {
                        continue;
                    }
                    seen.remove(&(a.min(bb), a.max(bb)));
                    edges.swap_remove(idx);
                    seen.insert(ua);
                    edges.push((ua.0, ua.1));
                    seen.insert(vb);
                    edges.push((vb.0, vb.1));
                    let (hi, lo) = (i.max(j), i.min(j));
                    stubs.swap_remove(hi);
                    stubs.swap_remove(lo);
                    repaired = true;
                    break;
                }
                if repaired {
                    fails = 0;
                    continue;
                }
                continue 'attempt;
            }
            fails = 0;
            seen.insert(key);
            edges.push(key);
            let (hi, lo) = (i.max(j), i.min(j));
            stubs.swap_remove(hi);
            stubs.swap_remove(lo);
        }
        let mut b = GraphBuilder::with_capacity(n, total / 2);
        for (u, v) in edges {
            b.add_edge(u, v).expect("stub-matching edges are valid");
        }
        return Ok(b.build());
    }
    Err(GraphError::GenerationFailed {
        attempts: MAX_ATTEMPTS,
    })
}

/// A deterministic *connected caveman* community graph: `communities`
/// cliques of `clique_size` vertices arranged in a ring, with one edge of
/// each clique rewired to the next clique to connect them.
///
/// Caveman graphs are a classic stylized model of tightly-knit social
/// communities — low structural asymmetry *within* communities — useful
/// as a realistic middle ground between the lattices and the scale-free
/// graphs in the §6 network experiments.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `communities == 0` or
/// `clique_size < 2`.
pub fn connected_caveman(communities: usize, clique_size: usize) -> Result<Graph> {
    if communities == 0 || clique_size < 2 {
        return Err(GraphError::InfeasibleParameters {
            reason: format!(
                "need communities ≥ 1 and clique size ≥ 2, got {communities} and {clique_size}"
            ),
        });
    }
    let n = communities * clique_size;
    let mut b = GraphBuilder::with_capacity(n, communities * clique_size * clique_size / 2);
    for c in 0..communities {
        let base = c * clique_size;
        for a in 0..clique_size {
            for z in (a + 1)..clique_size {
                // Rewire the (0, 1) edge of each clique to bridge to the
                // next clique (if there is more than one community).
                if communities > 1 && a == 0 && z == 1 {
                    continue;
                }
                b.add_edge(base + a, base + z)
                    .expect("clique edges are valid");
            }
        }
        if communities > 1 {
            let next_base = (c + 1) % communities * clique_size;
            b.add_edge(base, next_base + 1)
                .expect("bridge edges are valid");
        }
    }
    b.try_build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arbitrary_sequence_is_realized_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let degs = vec![5, 4, 4, 3, 2, 2, 2, 2, 1, 1];
        let g = from_degree_sequence(&degs, &mut rng).unwrap();
        for (v, &d) in degs.iter().enumerate() {
            assert_eq!(g.degree(v), d, "vertex {v}");
        }
    }

    #[test]
    fn star_degree_sequence_reproduces_a_star() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut degs = vec![1usize; 8];
        degs.push(8);
        let g = from_degree_sequence(&degs, &mut rng).unwrap();
        assert_eq!(g.degree(8), 8);
        assert!(g.degrees().take(8).all(|d| d == 1));
    }

    #[test]
    fn rejects_infeasible_sequences() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(from_degree_sequence(&[1, 1, 1], &mut rng).is_err()); // odd sum
        assert!(from_degree_sequence(&[3, 1, 1, 1], &mut rng).is_ok()); // star K_{1,3}
        assert!(from_degree_sequence(&[4, 2, 1, 1], &mut rng).is_err()); // degree ≥ n
    }

    #[test]
    fn empty_sequence_and_zero_degrees() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(from_degree_sequence(&[], &mut rng).unwrap().n(), 0);
        let g = from_degree_sequence(&[0, 0, 0], &mut rng).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn caveman_structure() {
        let g = connected_caveman(4, 5).unwrap();
        assert_eq!(g.n(), 20);
        assert!(is_connected(&g));
        // Each clique: C(5,2) - 1 internal edges + 1 bridge.
        assert_eq!(g.m(), 4 * (10 - 1) + 4);
    }

    #[test]
    fn single_community_is_a_clique() {
        let g = connected_caveman(1, 4).unwrap();
        assert_eq!(g.m(), 6);
        assert!(is_connected(&g));
    }

    #[test]
    fn caveman_rejects_bad_parameters() {
        assert!(connected_caveman(0, 5).is_err());
        assert!(connected_caveman(3, 1).is_err());
    }
}
