//! Random graphs with bounded maximum degree `Δ ≤ k`.

use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};
use rand::Rng;

/// Samples a random graph with maximum degree at most `max_degree` and
/// approximately `m` edges — the paper's restriction `Δ ≤ k` (§2.1),
/// the graph class of Theorem 4.
///
/// Construction: repeatedly draw a uniform pair `(u, v)` and add the edge
/// unless it would create a self-loop, a duplicate, or push an endpoint past
/// `max_degree`. The sampler stops after `m` successes or when a stall
/// budget is exhausted (the target may be unreachable, e.g. `m` close to
/// `n·k/2` leaves few legal pairs), so the result can have fewer than `m`
/// edges; the `Δ ≤ k` invariant always holds.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] if `m > n·max_degree/2`
/// (the requested edge count is impossible under the degree cap).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = ld_graph::generators::random_bounded_degree(100, 5, 200, &mut rng)?;
/// assert!(g.degrees().all(|d| d <= 5));
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn random_bounded_degree<R: Rng + ?Sized>(
    n: usize,
    max_degree: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph> {
    if m > n.saturating_mul(max_degree) / 2 {
        return Err(GraphError::InfeasibleParameters {
            reason: format!(
                "m = {m} exceeds n·Δ/2 = {} for Δ ≤ {max_degree}",
                n * max_degree / 2
            ),
        });
    }
    if n < 2 || m == 0 || max_degree == 0 {
        return Ok(Graph::empty(n));
    }
    let mut deg = vec![0usize; n];
    let mut seen = std::collections::HashSet::with_capacity(m);
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut added = 0usize;
    let mut stalls = 0usize;
    let stall_budget = 50 * m + 1000;
    while added < m && stalls < stall_budget {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || deg[u] >= max_degree || deg[v] >= max_degree {
            stalls += 1;
            continue;
        }
        let key = (u.min(v), u.max(v));
        if !seen.insert(key) {
            stalls += 1;
            continue;
        }
        b.add_edge(u, v).expect("sampled edges are valid");
        deg[u] += 1;
        deg[v] += 1;
        added += 1;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_cap_is_respected() {
        let mut rng = StdRng::seed_from_u64(101);
        for &(n, k, m) in &[(50usize, 3usize, 70usize), (100, 5, 240), (20, 2, 20)] {
            let g = random_bounded_degree(n, k, m, &mut rng).unwrap();
            assert!(g.degrees().all(|d| d <= k), "n={n} k={k} m={m}");
        }
    }

    #[test]
    fn usually_reaches_target_edge_count_when_loose() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_bounded_degree(200, 10, 300, &mut rng).unwrap();
        assert_eq!(g.m(), 300);
    }

    #[test]
    fn rejects_impossible_edge_count() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(random_bounded_degree(10, 2, 11, &mut rng).is_err());
    }

    #[test]
    fn tight_target_yields_near_perfect_packing_without_violating_cap() {
        // m = n*k/2 exactly: a perfect k-regular packing may not be reached,
        // but we must never exceed the cap and should get most edges.
        let mut rng = StdRng::seed_from_u64(31);
        let (n, k) = (100usize, 4usize);
        let g = random_bounded_degree(n, k, n * k / 2, &mut rng).unwrap();
        assert!(g.degrees().all(|d| d <= k));
        assert!(
            g.m() >= n * k / 2 - n / 5,
            "m = {} too far below target",
            g.m()
        );
    }

    #[test]
    fn degenerate_inputs_give_empty_graph() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(random_bounded_degree(0, 3, 0, &mut rng).unwrap().n(), 0);
        assert_eq!(random_bounded_degree(5, 0, 0, &mut rng).unwrap().m(), 0);
        assert_eq!(random_bounded_degree(5, 3, 0, &mut rng).unwrap().m(), 0);
        assert_eq!(random_bounded_degree(1, 3, 0, &mut rng).unwrap().m(), 0);
    }
}
