//! Error types for graph construction and generation.

use std::error::Error;
use std::fmt;

/// A specialized result type for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced when building or generating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint of an edge is not a valid vertex index.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied to a simple graph.
    SelfLoop {
        /// The vertex at which the self-loop occurred.
        vertex: usize,
    },
    /// The same undirected edge was supplied more than once.
    DuplicateEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Generator parameters are infeasible (e.g. `n * d` odd for a
    /// `d`-regular graph, or `d >= n`).
    InfeasibleParameters {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A randomized generator exhausted its retry budget without producing a
    /// valid graph (e.g. the pairing model kept producing multi-edges).
    GenerationFailed {
        /// Number of attempts made before giving up.
        attempts: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph on {n} vertices")
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop at vertex {vertex} not allowed in a simple graph"
                )
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge ({u}, {v}) not allowed in a simple graph")
            }
            GraphError::InfeasibleParameters { reason } => {
                write!(f, "infeasible generator parameters: {reason}")
            }
            GraphError::GenerationFailed { attempts } => {
                write!(f, "random generation failed after {attempts} attempts")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::VertexOutOfRange { vertex: 9, n: 4 }, "vertex 9"),
            (GraphError::SelfLoop { vertex: 3 }, "self-loop at vertex 3"),
            (
                GraphError::DuplicateEdge { u: 1, v: 2 },
                "duplicate edge (1, 2)",
            ),
            (
                GraphError::InfeasibleParameters {
                    reason: "d >= n".into(),
                },
                "d >= n",
            ),
            (GraphError::GenerationFailed { attempts: 5 }, "5 attempts"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "message {msg:?} missing {needle:?}");
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg:?}");
        }
    }

    #[test]
    fn error_is_send_sync_and_error_trait() {
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<GraphError>();
    }
}
