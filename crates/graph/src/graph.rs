//! Compact undirected simple graphs with sorted adjacency lists.

use crate::error::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// An undirected edge, stored with `u < v`.
pub type Edge = (usize, usize);

/// A compact undirected simple graph on vertices `0..n`.
///
/// Adjacency lists are stored sorted, giving `O(log deg)` edge queries and
/// cache-friendly neighbour iteration. The graph is immutable once built;
/// use [`GraphBuilder`] (or [`Graph::from_edges`]) to construct one.
///
/// In the liquid-democracy model a [`Graph`] is the social network `(V, E)`:
/// an edge means the two voters are aware of each other and may delegate to
/// one another (subject to the mechanism's approval rule).
///
/// # Examples
///
/// ```
/// use ld_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert!(g.has_edge(1, 2));
/// assert!(!g.has_edge(0, 3));
/// assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// CSR-style offsets into `adj`; `offsets.len() == n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    adj: Vec<usize>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = ld_graph::Graph::empty(3);
    /// assert_eq!(g.n(), 3);
    /// assert_eq!(g.m(), 0);
    /// ```
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
        }
    }

    /// Builds a graph on `n` vertices from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`,
    /// [`GraphError::SelfLoop`] for an edge `(v, v)`, and
    /// [`GraphError::DuplicateEdge`] if the same undirected edge appears
    /// twice.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        b.try_build()
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterator over the degrees of all vertices, in vertex order.
    pub fn degrees(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n()).map(move |v| self.degree(v))
    }

    /// Whether the undirected edge `{u, v}` is present.
    ///
    /// Runs in `O(log deg(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbor_slice(u).binary_search(&v).is_ok()
    }

    /// Iterator over the neighbours of `v`, in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    pub fn neighbors(&self, v: usize) -> Neighbors<'_> {
        Neighbors {
            inner: self.neighbor_slice(v).iter(),
        }
    }

    /// The neighbours of `v` as a sorted slice.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    pub fn neighbor_slice(&self, v: usize) -> &[usize] {
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = ld_graph::generators::path(3);
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges, vec![(0, 1), (1, 2)]);
    /// ```
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n()).flat_map(move |u| {
            self.neighbor_slice(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// The subgraph induced by `vertices`: vertex `i` of the result is
    /// `vertices[i]`, and edges are exactly the edges of `self` with both
    /// endpoints selected.
    ///
    /// Duplicate entries in `vertices` are ignored after the first.
    /// Used to carve communities or sampled sub-electorates out of a
    /// larger network.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if a selected vertex does
    /// not exist.
    ///
    /// # Examples
    ///
    /// ```
    /// use ld_graph::generators;
    /// let g = generators::complete(6);
    /// let sub = g.induced_subgraph(&[0, 2, 4])?;
    /// assert_eq!(sub.n(), 3);
    /// assert_eq!(sub.m(), 3); // still a clique
    /// # Ok::<(), ld_graph::GraphError>(())
    /// ```
    pub fn induced_subgraph(&self, vertices: &[usize]) -> Result<Graph> {
        let mut index = std::collections::HashMap::with_capacity(vertices.len());
        let mut selected = Vec::with_capacity(vertices.len());
        for &v in vertices {
            if v >= self.n() {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    n: self.n(),
                });
            }
            if let std::collections::hash_map::Entry::Vacant(e) = index.entry(v) {
                e.insert(selected.len());
                selected.push(v);
            }
        }
        let mut b = GraphBuilder::new(selected.len());
        for (new_u, &old_u) in selected.iter().enumerate() {
            for old_v in self.neighbors(old_u) {
                if let Some(&new_v) = index.get(&old_v) {
                    if new_u < new_v {
                        b.add_edge(new_u, new_v).expect("induced edges are valid");
                    }
                }
            }
        }
        Ok(b.build())
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::empty(0)
    }
}

/// Iterator over the neighbours of a vertex. Created by [`Graph::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, usize>,
}

impl Iterator for Neighbors<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// Incremental builder for [`Graph`].
///
/// Collects edges, validates them eagerly, and produces the compact sorted
/// representation in `O(n + m log m)` on [`GraphBuilder::build`].
///
/// # Examples
///
/// ```
/// use ld_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(2, 1)?;
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder expecting roughly `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices of the graph under construction.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Duplicate detection is deferred to [`GraphBuilder::build`] for
    /// performance; use [`GraphBuilder::add_edge`] which checks endpoints
    /// and self-loops eagerly. Duplicates are rejected at build time via
    /// [`GraphBuilder::try_build`]; the infallible [`GraphBuilder::build`]
    /// panics on duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<()> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(())
    }

    /// Whether the undirected edge `{u, v}` has already been added.
    ///
    /// Linear scan; intended for generators that add few edges per vertex.
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.contains(&key)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// # Panics
    ///
    /// Panics if a duplicate edge was added. Generators in this crate
    /// guarantee uniqueness by construction; external callers with untrusted
    /// edge lists should prefer [`GraphBuilder::try_build`].
    pub fn build(self) -> Graph {
        self.try_build()
            .expect("duplicate edge passed to GraphBuilder::build")
    }

    /// Finalizes the builder, returning an error on duplicate edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateEdge`] if the same undirected edge was
    /// added more than once.
    pub fn try_build(mut self) -> Result<Graph> {
        self.edges.sort_unstable();
        if let Some(w) = self.edges.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::DuplicateEdge {
                u: w[0].0,
                v: w[0].1,
            });
        }
        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0usize; 2 * self.edges.len()];
        for &(u, v) in &self.edges {
            adj[cursor[u]] = v;
            cursor[u] += 1;
            adj[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Each vertex's list is filled from edges sorted by (min, max); the
        // entries written at `u` from edges where `u` is the min endpoint are
        // ascending, but entries from edges where `u` is the max endpoint
        // interleave, so sort each list.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Ok(Graph { offsets, adj })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert!(g.is_empty());
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(0).count(), 0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.edges().count(), 0);
        let d = Graph::default();
        assert_eq!(d, g);
    }

    #[test]
    fn from_edges_builds_sorted_adjacency() {
        let g = Graph::from_edges(5, [(3, 1), (0, 4), (1, 0), (2, 1)]).unwrap();
        assert_eq!(g.m(), 4);
        assert_eq!(g.neighbor_slice(1), &[0, 2, 3]);
        assert_eq!(g.neighbor_slice(0), &[1, 4]);
        assert!(g.has_edge(4, 0));
        assert!(!g.has_edge(4, 1));
    }

    #[test]
    fn edges_iterator_is_canonical_and_complete() {
        let g = Graph::from_edges(4, [(2, 0), (3, 2), (1, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (2, 3)]);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 3, n: 3 });
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn rejects_duplicate_even_if_reversed() {
        let err = Graph::from_edges(3, [(0, 1), (1, 0)]).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
    }

    #[test]
    fn builder_contains_edge_is_orientation_insensitive() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 1).unwrap();
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
    }

    #[test]
    fn handshake_lemma_on_manual_graph() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]).unwrap();
        let degree_sum: usize = g.degrees().sum();
        assert_eq!(degree_sum, 2 * g.m());
    }

    #[test]
    fn neighbors_is_exact_size() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let it = g.neighbors(0);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn induced_subgraph_basics() {
        // Cycle 0-1-2-3-4-0; select {0, 1, 3}: only edge (0,1) survives.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let sub = g.induced_subgraph(&[0, 1, 3]).unwrap();
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1);
        assert!(sub.has_edge(0, 1)); // relabelled 0 ↔ 1
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_edge_cases() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        // Empty selection.
        assert_eq!(g.induced_subgraph(&[]).unwrap().n(), 0);
        // Duplicates collapse.
        let sub = g.induced_subgraph(&[1, 1, 0]).unwrap();
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.m(), 1);
        // Out of range.
        assert!(g.induced_subgraph(&[9]).is_err());
        // Full selection reproduces the graph up to relabelling.
        let full = g.induced_subgraph(&[0, 1, 2, 3]).unwrap();
        assert_eq!(full, g);
    }

    #[test]
    fn with_capacity_builder_behaves_like_new() {
        let mut a = GraphBuilder::new(3);
        let mut b = GraphBuilder::with_capacity(3, 2);
        a.add_edge(0, 1).unwrap();
        b.add_edge(0, 1).unwrap();
        assert_eq!(a.build(), b.build());
    }
}
