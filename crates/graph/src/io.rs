//! Plain-text edge-list serialization.
//!
//! The paper's §6 proposes checking its graph conditions "in various
//! real-world networks"; this module reads and writes the de-facto
//! standard edge-list format used by SNAP, KONECT and networkx exports, so
//! real datasets can be loaded into [`Graph`] and fed to the experiment
//! pipeline.
//!
//! Format: an optional header line `n m`, then one `u v` pair per line.
//! Lines starting with `#` or `%` are comments; blank lines are ignored.
//! Without a header the vertex count is inferred as `max index + 1`.

use crate::error::{GraphError, Result};
use crate::{Graph, GraphBuilder};
use std::fmt::Write as _;

/// Renders a graph as an edge list with an `n m` header.
///
/// # Examples
///
/// ```
/// use ld_graph::{generators, io};
/// let g = generators::path(3);
/// let text = io::to_edge_list(&g);
/// assert_eq!(text, "3 2\n0 1\n1 2\n");
/// ```
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + 8 * g.m());
    let _ = writeln!(out, "{} {}", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses an edge list into a [`Graph`].
///
/// Accepts an optional `n m` header (detected when the first data line has
/// two fields and a later line would otherwise exceed the declared edge
/// count — in practice: if the first line's first field is ≥ every vertex
/// index that follows it is treated as the header; pass
/// [`parse_edge_list_with_n`] to be explicit). Duplicate edges and
/// self-loops are rejected.
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] for malformed lines, and
/// propagates duplicate/self-loop/range errors from graph construction.
///
/// # Examples
///
/// ```
/// use ld_graph::io;
/// let g = io::parse_edge_list("# a triangle\n0 1\n1 2\n0 2\n")?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 3);
/// # Ok::<(), ld_graph::GraphError>(())
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph> {
    let mut pairs = Vec::new();
    let mut header: Option<(usize, usize)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let a = parse_field(fields.next(), lineno)?;
        let b = parse_field(fields.next(), lineno)?;
        if fields.next().is_some() {
            return Err(GraphError::InfeasibleParameters {
                reason: format!("line {}: expected two fields, got more", lineno + 1),
            });
        }
        if header.is_none() && pairs.is_empty() {
            // Treat the first data line as a header candidate; it is
            // confirmed as a header if its second field matches the number
            // of remaining data lines (checked at the end).
            header = Some((a, b));
            continue;
        }
        pairs.push((a, b));
    }
    match header {
        Some((n, m)) if m == pairs.len() => {
            let mut b = GraphBuilder::with_capacity(n, m);
            for (u, v) in pairs {
                b.add_edge(u, v)?;
            }
            b.try_build()
        }
        Some(first_pair) => {
            // Not a header after all: the first line was an edge.
            let mut all = vec![first_pair];
            all.extend(pairs);
            let n = all.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0);
            Graph::from_edges(n, all)
        }
        None => Ok(Graph::empty(0)),
    }
}

/// Parses an edge list with an explicit vertex count (no header
/// detection).
///
/// # Errors
///
/// Returns [`GraphError::InfeasibleParameters`] for malformed lines, and
/// propagates construction errors.
pub fn parse_edge_list_with_n(text: &str, n: usize) -> Result<Graph> {
    let mut b = GraphBuilder::new(n);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let u = parse_field(fields.next(), lineno)?;
        let v = parse_field(fields.next(), lineno)?;
        b.add_edge(u, v)?;
    }
    b.try_build()
}

fn parse_field(field: Option<&str>, lineno: usize) -> Result<usize> {
    field
        .ok_or_else(|| GraphError::InfeasibleParameters {
            reason: format!("line {}: missing vertex field", lineno + 1),
        })?
        .parse()
        .map_err(|_| GraphError::InfeasibleParameters {
            reason: format!(
                "line {}: vertex index is not a nonnegative integer",
                lineno + 1
            ),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_with_header() {
        let g = generators::complete(6);
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn round_trip_random_graph() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi_gnp(40, 0.2, &mut rng).unwrap();
        assert_eq!(parse_edge_list(&to_edge_list(&g)).unwrap(), g);
    }

    #[test]
    fn headerless_lists_infer_n() {
        // Three lines, first is (0,1): header candidate (0,1) has m = 1
        // but 2 lines follow, so it is re-read as an edge.
        let g = parse_edge_list("0 1\n1 2\n2 3\n").unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# comment\n% other comment\n\n3 2\n0 1\n\n1 2\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse_edge_list("0 1\nx y\n9 9 9\n").unwrap_err();
        assert!(matches!(err, GraphError::InfeasibleParameters { .. }));
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "got {msg}");
    }

    #[test]
    fn too_many_fields_rejected() {
        assert!(parse_edge_list("0 1\n1 2 3\n").is_err());
    }

    #[test]
    fn duplicates_and_self_loops_rejected() {
        assert!(parse_edge_list("3 2\n0 1\n1 0\n").is_err());
        assert!(parse_edge_list("3 2\n0 1\n2 2\n").is_err());
    }

    #[test]
    fn explicit_n_variant() {
        let g = parse_edge_list_with_n("0 1\n1 2\n", 10).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 2);
        assert!(parse_edge_list_with_n("0 99\n", 10).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.n(), 0);
        let g = parse_edge_list("# only comments\n").unwrap();
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn single_edge_file_is_ambiguous_but_sane() {
        // "5 7" alone: header candidate with m = 7 ≠ 0 lines → re-read as
        // the single edge (5, 7).
        let g = parse_edge_list("5 7\n").unwrap();
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(5, 7));
    }
}
