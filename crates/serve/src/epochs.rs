//! The epoch barrier log and election meta file.
//!
//! Per-shard WALs fsync independently, so after a crash the shards'
//! durable prefixes generally differ — and *mixed* prefixes can compose
//! into a global state no single engine ever accepted (two half-applied
//! delegation swaps can even form a cycle). The epoch log is the
//! cross-shard commit point: at every publish, all shard WALs are
//! fsynced first, then one `epochs.log` record captures the per-shard
//! accepted-record counts plus the merged-tally digest. Recovery reads
//! the last whole record and *caps* each shard's replay at its recorded
//! count ([`ld_store::Store::resume_capped`]), reconstructing exactly
//! the engine states behind the last published epoch — and the digest
//! proves it, bit for bit.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ld_store::crc::crc32;

use crate::ServeError;

/// File name of the epoch barrier log inside an election directory.
pub const EPOCHS_FILE: &str = "epochs.log";

/// File name of the election meta file inside an election directory.
pub const META_FILE: &str = "serve.meta";

const EPOCHS_MAGIC: [u8; 8] = *b"LDEPO\x1a\x00\x01";
const META_MAGIC: [u8; 8] = *b"LDSRV\x1a\x00\x01";
const FRAME_HEADER_LEN: usize = 8;

/// One committed epoch: the cross-shard cut the service published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochEntry {
    /// Monotonic epoch counter (first published epoch is 1).
    pub epoch: u64,
    /// Accepted-record count per shard at the barrier (replay caps).
    pub counts: Vec<u64>,
    /// [`crate::merge::tally_digest`] of the published merged tally.
    pub digest: u64,
    /// Cumulative accepted updates at the barrier.
    pub applied: u64,
    /// Cumulative rejected updates at the barrier.
    pub rejected: u64,
}

impl EpochEntry {
    fn payload_len(shards: usize) -> usize {
        8 + 4 + 8 * shards + 8 + 8 + 8
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.counts.len() as u32).to_le_bytes());
        for &c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.digest.to_le_bytes());
        out.extend_from_slice(&self.applied.to_le_bytes());
        out.extend_from_slice(&self.rejected.to_le_bytes());
    }

    fn decode(payload: &[u8], shards: usize) -> Result<EpochEntry, String> {
        if payload.len() != Self::payload_len(shards) {
            return Err(format!(
                "epoch record of {} bytes, expected {}",
                payload.len(),
                Self::payload_len(shards)
            ));
        }
        let u64_at =
            |at: usize| u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
        let epoch = u64_at(0);
        let k = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
        if k != shards {
            return Err(format!(
                "epoch record for {k} shards, election has {shards}"
            ));
        }
        let counts: Vec<u64> = (0..shards).map(|s| u64_at(12 + 8 * s)).collect();
        let tail = 12 + 8 * shards;
        Ok(EpochEntry {
            epoch,
            counts,
            digest: u64_at(tail),
            applied: u64_at(tail + 8),
            rejected: u64_at(tail + 16),
        })
    }
}

/// The append-only epoch log, opened for a fixed shard count.
#[derive(Debug)]
pub struct EpochLog {
    file: File,
    path: PathBuf,
    shards: usize,
    last: Option<EpochEntry>,
}

impl EpochLog {
    /// Opens (or creates) `epochs.log` at `path`, replaying committed
    /// entries. A torn final record (crash mid-append) is truncated;
    /// interior corruption and shard-count mismatches are errors.
    ///
    /// # Errors
    ///
    /// [`ServeError::Meta`] on structural violations, [`ServeError::Io`]
    /// on filesystem failure.
    pub fn open(path: &Path, shards: usize) -> Result<EpochLog, ServeError> {
        let io = |op: &'static str| ServeError::io(op, path);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io("open epoch log"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io("read epoch log"))?;
        let mut last = None;
        let valid_len = if bytes.is_empty() {
            file.write_all(&EPOCHS_MAGIC)
                .map_err(io("write epoch header"))?;
            file.sync_data().map_err(io("sync epoch header"))?;
            EPOCHS_MAGIC.len() as u64
        } else {
            if bytes.len() < EPOCHS_MAGIC.len() || bytes[..EPOCHS_MAGIC.len()] != EPOCHS_MAGIC {
                return Err(ServeError::Meta {
                    path: path.to_path_buf(),
                    reason: "bad epoch log magic".to_string(),
                });
            }
            let record_len = FRAME_HEADER_LEN + EpochEntry::payload_len(shards);
            let mut at = EPOCHS_MAGIC.len();
            loop {
                let rest = &bytes[at..];
                if rest.is_empty() {
                    break;
                }
                if rest.len() < record_len {
                    break; // torn tail
                }
                let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
                let stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
                if len != EpochEntry::payload_len(shards) {
                    return Err(ServeError::Meta {
                        path: path.to_path_buf(),
                        reason: format!("epoch record at byte {at} claims {len} bytes"),
                    });
                }
                let payload = &rest[FRAME_HEADER_LEN..record_len];
                if crc32(payload) != stored {
                    if rest.len() == record_len {
                        break; // torn final record
                    }
                    return Err(ServeError::Meta {
                        path: path.to_path_buf(),
                        reason: format!("CRC mismatch in epoch record at byte {at}"),
                    });
                }
                let entry =
                    EpochEntry::decode(payload, shards).map_err(|reason| ServeError::Meta {
                        path: path.to_path_buf(),
                        reason,
                    })?;
                last = Some(entry);
                at += record_len;
            }
            let valid = at as u64;
            if valid < bytes.len() as u64 {
                file.set_len(valid)
                    .map_err(io("truncate torn epoch tail"))?;
                file.sync_data().map_err(io("sync truncated epoch log"))?;
            }
            valid
        };
        file.seek(SeekFrom::Start(valid_len))
            .map_err(io("seek epoch log"))?;
        Ok(EpochLog {
            file,
            path: path.to_path_buf(),
            shards,
            last,
        })
    }

    /// The last committed epoch, if any.
    #[must_use]
    pub fn last(&self) -> Option<&EpochEntry> {
        self.last.as_ref()
    }

    /// Appends and fsyncs one epoch commit record.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on append failure (the entry is then *not*
    /// committed; recovery falls back to the previous epoch).
    pub fn append(&mut self, entry: &EpochEntry) -> Result<(), ServeError> {
        debug_assert_eq!(entry.counts.len(), self.shards);
        let mut payload = Vec::with_capacity(EpochEntry::payload_len(self.shards));
        entry.encode(&mut payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let path = self.path.clone();
        self.file
            .write_all(&frame)
            .map_err(ServeError::io("append epoch record", &path))?;
        self.file
            .sync_data()
            .map_err(ServeError::io("sync epoch record", &path))?;
        self.last = Some(entry.clone());
        Ok(())
    }
}

/// The immutable facts of a durable election, persisted at creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Meta {
    /// Electorate size.
    pub n: u32,
    /// Shard count.
    pub shards: u32,
    /// Initial competence assigned to every voter at creation.
    pub default_p: f64,
}

impl Meta {
    /// Writes `serve.meta` into `dir` (magic, fields, CRC), fsynced.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on filesystem failure.
    pub fn write(&self, dir: &Path) -> Result<(), ServeError> {
        let path = dir.join(META_FILE);
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&self.n.to_le_bytes());
        payload.extend_from_slice(&self.shards.to_le_bytes());
        payload.extend_from_slice(&self.default_p.to_bits().to_le_bytes());
        let mut bytes = Vec::with_capacity(28);
        bytes.extend_from_slice(&META_MAGIC);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        let mut file = File::create(&path).map_err(ServeError::io("create meta", &path))?;
        file.write_all(&bytes)
            .map_err(ServeError::io("write meta", &path))?;
        file.sync_data()
            .map_err(ServeError::io("sync meta", &path))?;
        Ok(())
    }

    /// Reads and validates `serve.meta` from `dir`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Meta`] when missing or structurally invalid.
    pub fn read(dir: &Path) -> Result<Meta, ServeError> {
        let path = dir.join(META_FILE);
        let bytes = std::fs::read(&path).map_err(ServeError::io("read meta", &path))?;
        if bytes.len() != 28 || bytes[..8] != META_MAGIC {
            return Err(ServeError::Meta {
                path,
                reason: "bad magic or length".to_string(),
            });
        }
        let payload = &bytes[8..24];
        let stored = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
        if crc32(payload) != stored {
            return Err(ServeError::Meta {
                path,
                reason: "CRC mismatch".to_string(),
            });
        }
        Ok(Meta {
            n: u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")),
            shards: u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")),
            default_p: f64::from_bits(u64::from_le_bytes(
                payload[8..16].try_into().expect("8 bytes"),
            )),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ld-serve-epochs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn entry(epoch: u64) -> EpochEntry {
        EpochEntry {
            epoch,
            counts: vec![epoch * 10, epoch * 10 + 1, epoch * 10 + 2],
            digest: 0x1234_5678_9ABC_DEF0 ^ epoch,
            applied: epoch * 31,
            rejected: epoch,
        }
    }

    #[test]
    fn epoch_log_replays_the_last_committed_entry() {
        let dir = scratch("replay");
        let path = dir.join(EPOCHS_FILE);
        {
            let mut log = EpochLog::open(&path, 3).expect("open");
            assert!(log.last().is_none());
            for e in 1..=5u64 {
                log.append(&entry(e)).expect("append");
            }
        }
        let log = EpochLog::open(&path, 3).expect("reopen");
        assert_eq!(log.last(), Some(&entry(5)));
        // Torn tail: drop two bytes, the last whole entry wins.
        let whole = std::fs::read(&path).expect("read");
        std::fs::write(&path, &whole[..whole.len() - 2]).expect("tear");
        let log = EpochLog::open(&path, 3).expect("reopen torn");
        assert_eq!(log.last(), Some(&entry(4)));
        // Wrong shard count: typed error, not silent misparse.
        assert!(matches!(
            EpochLog::open(&path, 4),
            Err(ServeError::Meta { .. })
        ));
    }

    #[test]
    fn meta_round_trips_and_validates() {
        let dir = scratch("meta");
        let meta = Meta {
            n: 10_000,
            shards: 8,
            default_p: 0.55,
        };
        meta.write(&dir).expect("write");
        assert_eq!(Meta::read(&dir).expect("read"), meta);
        let path = dir.join(META_FILE);
        let mut bytes = std::fs::read(&path).expect("read bytes");
        bytes[9] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(matches!(Meta::read(&dir), Err(ServeError::Meta { .. })));
    }
}
