//! Merging per-shard engine views into one exact global tally.
//!
//! Each shard holds a *full-width* [`LiveEngine`] over all `n` voters
//! but applies only the updates of the voters it owns (per
//! [`ld_core::ids::shard_of`]). A voter that is not owned by a shard
//! therefore sits at its initial `Vote` action there — a *phantom*
//! self-vote of weight 1 — and any weight delegated to it inside that
//! shard pools on the phantom. The merge strips the phantoms and
//! forwards the pooled weight along each voter's *canonical* chain (the
//! view of its owner shard) until it lands on an owned, voting terminal
//! or is discarded by an abstainer:
//!
//! * owned sink `v` in shard `s`: its action is canonical, so its whole
//!   weight transfers to the global tally at `v`;
//! * ghost sink `v` (owned elsewhere): `weight − 1` units (the phantom
//!   vote subtracted) forward to `sink_of(v)` in `v`'s owner — itself
//!   owned (terminal), discarded (`None`), or another ghost (hop on).
//!
//! Every voter's unit is counted exactly once — in its owner shard it
//! either reaches an owned terminal, pools on a ghost (then forwarded
//! here), or is discarded — and the hop sequence walks the acyclic
//! composite canonical graph, so the pass is `O(n·S + hops)` and exact:
//! the result equals a single engine that applied the whole accepted
//! stream. The conformance suite pins that equality, and the
//! `shard-route` mutation demonstrates the merge *fails loudly* when
//! the routing invariant is broken.

use ld_core::ids::shard_of;
use ld_core::tally::TieBreak;
use ld_live::LiveEngine;
use ld_prob::normal::std_normal_cdf;

/// One merged, published tally over all shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedTally {
    /// Electorate size.
    pub n: u32,
    /// Global per-voter vote weight (index = voter; 0 for non-sinks).
    pub weights: Vec<u64>,
    /// Votes discarded through abstention.
    pub discarded: u64,
    /// Votes reaching a ballot (`n − discarded`).
    pub tallied: u64,
    /// Number of distinct sinks.
    pub sink_count: u64,
    /// Heaviest single sink.
    pub max_weight: u64,
    /// Mean correct-vote weight `Σ w·p`.
    pub mean: f64,
    /// Correct-vote weight variance `Σ w²·p(1-p)`.
    pub variance: f64,
    /// Normal-approximation probability that the correct option wins a
    /// strict weighted majority (coin-flip tie credit), mirroring
    /// [`LiveEngine::decision_probability_normal`].
    pub p_correct: f64,
    /// FNV-1a digest of the integer outcome (weights, discarded,
    /// tallied) — the bit-identity token for restart conformance.
    pub digest: u64,
}

/// FNV-1a over the integer tally outcome. Floats are deliberately
/// excluded: the digest certifies the *exact* combinatorial result and
/// must not depend on accumulated floating-point drift.
#[must_use]
pub fn tally_digest(weights: &[u64], discarded: u64, tallied: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(weights.len() as u64);
    for &w in weights {
        eat(w);
    }
    eat(discarded);
    eat(tallied);
    h
}

/// Merges the shard engines (index = shard id) into the exact global
/// tally. All engines must share the same `n`; `engines.len()` is the
/// shard count the router partitioned by.
///
/// The hop walk is capped at `n + 1` steps per forwarded sink; the cap
/// is unreachable for any correctly routed state (the composite
/// canonical graph is acyclic) and turns a routing bug into discarded
/// weight — which the digest/oracle comparison then flags — instead of
/// a hang.
#[must_use]
pub fn merge_shards(engines: &[&LiveEngine]) -> MergedTally {
    let shards = engines.len() as u32;
    let n = engines.first().map_or(0, |e| e.n());
    debug_assert!(engines.iter().all(|e| e.n() == n), "shard width mismatch");
    let mut weights = vec![0u64; n];
    let mut discarded = 0u64;
    for (s, engine) in engines.iter().enumerate() {
        let local = engine.weights();
        for (v, &w) in local.iter().enumerate() {
            if w == 0 {
                continue;
            }
            if shard_of(v as u32, shards) == s as u32 {
                // Owned sink: canonical terminal, weight is final.
                weights[v] += w as u64;
            } else {
                // Ghost sink: strip the phantom self-vote and forward
                // the pooled delegated weight along canonical chains.
                let fw = (w - 1) as u64;
                if fw > 0 {
                    forward(engines, shards, n, v, fw, &mut weights, &mut discarded);
                }
            }
        }
        discarded += engine.discarded() as u64;
    }
    let tallied = (n as u64).saturating_sub(discarded);
    let (mut sink_count, mut max_weight) = (0u64, 0u64);
    let (mut mean, mut variance) = (0.0f64, 0.0f64);
    for (v, &w) in weights.iter().enumerate() {
        if w == 0 {
            continue;
        }
        sink_count += 1;
        max_weight = max_weight.max(w);
        let p = engines[shard_of(v as u32, shards) as usize].competences()[v];
        mean += w as f64 * p;
        variance += (w * w) as f64 * p * (1.0 - p);
    }
    let p_correct = decision_probability_normal(tallied, mean, variance);
    let digest = tally_digest(&weights, discarded, tallied);
    MergedTally {
        n: n as u32,
        weights,
        discarded,
        tallied,
        sink_count,
        max_weight,
        mean,
        variance,
        p_correct,
        digest,
    }
}

/// Forwards `fw` units pooled on ghost sink `v` along canonical chains.
fn forward(
    engines: &[&LiveEngine],
    shards: u32,
    n: usize,
    mut v: usize,
    fw: u64,
    weights: &mut [u64],
    discarded: &mut u64,
) {
    let mut hops = 0usize;
    loop {
        let owner = shard_of(v as u32, shards) as usize;
        match engines[owner].sink_of(v) {
            // Canonical chain ends at an abstainer: units discarded.
            None => {
                *discarded += fw;
                return;
            }
            Some(u) if shard_of(u as u32, shards) as usize == owner => {
                // Owned terminal: its action is canonical `Vote`.
                weights[u] += fw;
                return;
            }
            Some(u) => {
                // Another ghost: hop to its owner's view.
                v = u;
                hops += 1;
                if hops > n {
                    // Unreachable when routing holds (acyclic composite
                    // graph); misrouting turns into detectable loss.
                    *discarded += fw;
                    return;
                }
            }
        }
    }
}

/// Mirror of [`LiveEngine::decision_probability_normal`] with
/// [`TieBreak::CoinFlip`] credit, over merged accumulators.
#[must_use]
pub fn decision_probability_normal(tallied: u64, mean: f64, variance: f64) -> f64 {
    let threshold = tallied as f64 / 2.0;
    let var = variance.max(0.0);
    if var <= f64::EPSILON * tallied.max(1) as f64 {
        return if mean > threshold + 1e-12 {
            1.0
        } else if (mean - threshold).abs() <= 1e-12 {
            TieBreak::CoinFlip.credit()
        } else {
            0.0
        };
    }
    1.0 - std_normal_cdf((threshold - mean) / var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::delegation::Action;
    use ld_live::Update;

    /// Builds shard engines the way the router does: full-width, each
    /// applying only its owned voters' updates.
    fn sharded(n: usize, shards: u32, updates: &[Update]) -> Vec<LiveEngine> {
        let mut engines: Vec<LiveEngine> = (0..shards)
            .map(|_| LiveEngine::new(vec![Action::Vote; n], vec![0.6; n]).expect("engine"))
            .collect();
        for &u in updates {
            let s = shard_of(u.voter() as u32, shards) as usize;
            engines[s].apply(u).expect("shard apply");
        }
        engines
    }

    #[test]
    fn merge_matches_a_single_engine_across_shard_boundaries() {
        let n = 64;
        // A long chain crosses many shard boundaries, plus an abstain
        // pocket and a competence change.
        let mut updates = Vec::new();
        for v in 1..24 {
            updates.push(Update::Delegate {
                voter: v,
                target: v - 1,
            });
        }
        updates.push(Update::Abstain { voter: 40 });
        for v in 41..45 {
            updates.push(Update::Delegate {
                voter: v,
                target: 40,
            });
        }
        updates.push(Update::Competence { voter: 0, p: 0.93 });
        updates.push(Update::Vote { voter: 12 }); // splits the chain
        let mut oracle = LiveEngine::new(vec![Action::Vote; n], vec![0.6; n]).expect("oracle");
        for &u in &updates {
            oracle.apply(u).expect("oracle apply");
        }
        for shards in [1u32, 2, 3, 8] {
            let engines = sharded(n, shards, &updates);
            let refs: Vec<&LiveEngine> = engines.iter().collect();
            let merged = merge_shards(&refs);
            let want: Vec<u64> = oracle.weights().iter().map(|&w| w as u64).collect();
            assert_eq!(merged.weights, want, "{shards} shards");
            assert_eq!(merged.discarded, oracle.discarded() as u64);
            assert_eq!(merged.tallied, oracle.tallied() as u64);
            assert_eq!(merged.sink_count, oracle.sink_count() as u64);
            assert!(
                (merged.p_correct - oracle.decision_probability_normal(TieBreak::CoinFlip)).abs()
                    < 1e-9,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn digest_is_order_sensitive_and_pinned_to_content() {
        let a = tally_digest(&[1, 2, 3], 0, 3);
        let b = tally_digest(&[3, 2, 1], 0, 3);
        let c = tally_digest(&[1, 2, 3], 1, 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, tally_digest(&[1, 2, 3], 0, 3));
    }

    #[test]
    fn misrouted_updates_are_visible_in_the_merge() {
        let n = 16;
        let shards = 4u32;
        let updates = [
            Update::Delegate {
                voter: 3,
                target: 7,
            },
            Update::Delegate {
                voter: 7,
                target: 1,
            },
        ];
        let mut oracle = LiveEngine::new(vec![Action::Vote; n], vec![0.6; n]).expect("oracle");
        for &u in &updates {
            oracle.apply(u).expect("oracle apply");
        }
        let mut engines: Vec<LiveEngine> = (0..shards)
            .map(|_| LiveEngine::new(vec![Action::Vote; n], vec![0.6; n]).expect("engine"))
            .collect();
        for &u in &updates {
            let mut s = shard_of(u.voter() as u32, shards);
            if u.voter() == 7 {
                s = (s + 1) % shards; // misroute voter 7
            }
            engines[s as usize].apply(u).expect("apply");
        }
        let refs: Vec<&LiveEngine> = engines.iter().collect();
        let merged = merge_shards(&refs);
        let want: Vec<u64> = oracle.weights().iter().map(|&w| w as u64).collect();
        assert_ne!(merged.weights, want, "misrouting must corrupt the merge");
    }
}
