//! One hosted election: batched ingest, sharded apply, epoch publish.
//!
//! # Threading model
//!
//! ```text
//!  submit() ──mpsc──▶ router thread ──┬─▶ shard 0 thread ─▶ engine + WAL
//!                     (validate,      ├─▶ shard 1 thread ─▶ engine + WAL
//!                      window, route) └─▶ …
//!                            │ barrier + merge
//!                            ▼
//!                    Arc<EpochSnapshot>  ◀── snapshot() (readers)
//! ```
//!
//! The router is the single *sequencer*: it drains the ingest channel
//! in ~window-sized batches, validates every update against the global
//! action vector in arrival order (the exact rules of
//! [`LiveEngine::apply`], so acceptance is deterministic and identical
//! to one engine), routes accepted updates to their owner shard, and
//! counts rejects. Validation is a cheap chain walk; the expensive work
//! — subtree recomputation, tally deltas, WAL appends and fsyncs —
//! happens in the shard threads, in parallel, for disjoint voter sets.
//!
//! Every `publish_every` windows (and on every flush) the router runs
//! the epoch barrier: shards quiesce and fsync, the merge pass builds
//! the exact global tally, the epoch commits to `epochs.log` (when
//! durable), and the new [`EpochSnapshot`] is swapped in behind a
//! briefly-held write lock. Readers clone the `Arc` under the read
//! lock and never touch engines, so queries cost O(1) regardless of
//! ingest pressure.
//!
//! # Shard-local validity
//!
//! A shard engine sees only its owned voters' updates, so its view is
//! the *restriction* of the globally accepted edge set — a subgraph of
//! an acyclic graph. Every globally accepted update therefore passes
//! the shard's own validation too (a cycle visible to the shard would
//! be a global cycle), which is asserted in debug builds: shards apply,
//! they never decide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ld_core::delegation::Action;
use ld_core::ids::shard_of;
use ld_live::{LiveEngine, RejectReason, Update};
use ld_store::{Store, StoreOptions};

use crate::epochs::{EpochEntry, EpochLog, Meta, EPOCHS_FILE};
use crate::identity::{IdentityError, IdentityLog, IdentityMap, IDENTITY_FILE};
use crate::merge::{merge_shards, MergedTally};
use crate::ServeError;

/// How an [`Election`] is sized and tuned.
#[derive(Debug, Clone)]
pub struct ElectionConfig {
    /// Fixed electorate size (engines are fixed-width).
    pub n: u32,
    /// Shard count (`>= 1`).
    pub shards: u32,
    /// Initial competence for every voter.
    pub default_p: f64,
    /// Explicit per-voter initial competences (overrides `default_p`;
    /// must have length `n`).
    pub competences: Option<Vec<f64>>,
    /// Ingest batching window: the router keeps draining the channel
    /// this long after the first update of a batch.
    pub window: Duration,
    /// Hard cap on updates per routed batch.
    pub max_batch: usize,
    /// Windows between automatic epoch publishes (`0` = publish only
    /// on flush and shutdown).
    pub publish_every: u32,
    /// Durable root directory; `None` keeps the election in memory.
    pub dir: Option<PathBuf>,
    /// Store tuning for the per-shard WALs (durable elections only).
    pub store: StoreOptions,
    /// Conformance hook: route this voter's updates to the *wrong*
    /// shard. Exists so the `shard-route` mutation can prove the
    /// merge/digest machinery detects routing bugs; never set in
    /// production paths.
    pub misroute: Option<u32>,
}

impl ElectionConfig {
    /// Defaults tuned for tests and moderate loads: 4 shards, 1 ms
    /// windows, publish every 8 windows, in-memory.
    #[must_use]
    pub fn new(n: u32) -> Self {
        ElectionConfig {
            n,
            shards: 4,
            default_p: 0.5,
            competences: None,
            window: Duration::from_millis(1),
            max_batch: 4096,
            publish_every: 8,
            dir: None,
            store: StoreOptions::default(),
            misroute: None,
        }
    }
}

/// One published, immutable view of the election at an epoch barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Monotonic epoch counter (0 = initial state, pre-ingest).
    pub epoch: u64,
    /// Cumulative accepted updates.
    pub applied: u64,
    /// Cumulative rejected updates.
    pub rejected: u64,
    /// Accepted updates routed to each shard (WAL replay caps).
    pub shard_records: Vec<u64>,
    /// The exact merged tally.
    pub tally: MergedTally,
}

/// Cumulative service counters, cheap to sample at any time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Updates accepted into the ingest queue.
    pub enqueued: u64,
    /// Updates accepted by the sequencer (as of the latest epoch).
    pub applied: u64,
    /// Updates rejected by the sequencer (as of the latest epoch).
    pub rejected: u64,
    /// Latest published epoch.
    pub epoch: u64,
    /// Per-shard accepted-record counts (as of the latest epoch).
    pub shard_records: Vec<u64>,
}

/// What a durable restart reconstructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRecovery {
    /// The epoch the service resumed at.
    pub epoch: u64,
    /// Digest of the recovered merged tally (verified against the
    /// epoch log when an epoch was committed).
    pub digest: u64,
    /// Per-shard record counts replayed.
    pub shard_records: Vec<u64>,
    /// Cumulative accepted updates restored.
    pub applied: u64,
    /// Cumulative rejected updates restored.
    pub rejected: u64,
}

/// State shared between ingest handles, the router, and readers.
struct Published {
    epoch: AtomicU64,
    snap: RwLock<Arc<EpochSnapshot>>,
    enqueued: AtomicU64,
    latencies_ns: Mutex<Vec<u64>>,
    failure: Mutex<Option<(u32, String)>>,
}

/// A shard's mutable state: the engine plus its optional store. The
/// shard thread holds the lock while applying; the router takes it only
/// at barriers, when the shard is provably idle (it acked the barrier).
struct ShardState {
    engine: LiveEngine,
    store: Option<Store>,
    failure: Option<String>,
}

enum Msg {
    Update(Update, Instant),
    Flush(Sender<Result<Arc<EpochSnapshot>, (u32, String)>>),
    Kill,
}

enum ShardMsg {
    Batch(Vec<Update>),
    Barrier { sync: bool },
    Stop,
}

/// A live, hosted election. Dropping it shuts down gracefully: pending
/// ingest drains, shard WALs fsync, and a final epoch publishes.
pub struct Election {
    n: u32,
    shards: u32,
    ingest: Option<Sender<Msg>>,
    router: Option<JoinHandle<()>>,
    shard_handles: Vec<JoinHandle<()>>,
    published: Arc<Published>,
    identity: Mutex<IdentityBackend>,
}

enum IdentityBackend {
    Mem(IdentityMap),
    Durable(IdentityLog),
}

impl Election {
    /// Creates a fresh election per `cfg` — durable (per-shard stores,
    /// meta, epoch and identity logs under `cfg.dir`) when a directory
    /// is configured, in-memory otherwise — and starts its threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for unusable configurations, durable-layer
    /// errors when store files cannot be created.
    pub fn create(cfg: &ElectionConfig) -> Result<Election, ServeError> {
        if cfg.shards == 0 {
            return Err(ServeError::Config("shard count must be >= 1".to_string()));
        }
        let n = cfg.n as usize;
        let competences = match &cfg.competences {
            Some(ps) if ps.len() != n => {
                return Err(ServeError::Config(format!(
                    "{} competences for {n} voters",
                    ps.len()
                )));
            }
            Some(ps) => ps.clone(),
            None => vec![cfg.default_p; n],
        };
        let mut engines = Vec::with_capacity(cfg.shards as usize);
        for _ in 0..cfg.shards {
            let engine = LiveEngine::new(vec![Action::Vote; n], competences.clone())
                .map_err(|e| ServeError::Config(e.to_string()))?;
            engines.push(engine);
        }
        let (stores, epoch_log, identity) = if let Some(dir) = &cfg.dir {
            std::fs::create_dir_all(dir).map_err(ServeError::io("create election dir", dir))?;
            Meta {
                n: cfg.n,
                shards: cfg.shards,
                default_p: cfg.default_p,
            }
            .write(dir)?;
            let mut stores = Vec::with_capacity(engines.len());
            for (s, engine) in engines.iter().enumerate() {
                let shard_dir = dir.join(format!("shard-{s}"));
                stores.push(Some(Store::create(&shard_dir, engine, cfg.store)?));
            }
            let epoch_log = Some(EpochLog::open(&dir.join(EPOCHS_FILE), cfg.shards as usize)?);
            let identity =
                IdentityBackend::Durable(IdentityLog::open(&dir.join(IDENTITY_FILE), cfg.n)?);
            (stores, epoch_log, identity)
        } else {
            (
                (0..cfg.shards).map(|_| None).collect(),
                None,
                IdentityBackend::Mem(IdentityMap::with_capacity(cfg.n)),
            )
        };
        let refs: Vec<&LiveEngine> = engines.iter().collect();
        let initial = EpochSnapshot {
            epoch: 0,
            applied: 0,
            rejected: 0,
            shard_records: vec![0; cfg.shards as usize],
            tally: merge_shards(&refs),
        };
        Self::start(
            cfg,
            engines,
            stores,
            epoch_log,
            identity,
            initial,
            vec![Action::Vote; n],
        )
    }

    /// Reopens the durable election under `dir` at its last committed
    /// epoch: per-shard WAL replay is *capped* at the epoch's recorded
    /// counts, the merged tally is recomputed, and its digest must
    /// match the one logged at publish time — recovery is bit-identical
    /// or it is an error.
    ///
    /// Only the runtime tuning of `tuning` is used (`window`,
    /// `max_batch`, `publish_every`, `store`); the election's facts
    /// (`n`, shard count, competences) come from its own files.
    ///
    /// # Errors
    ///
    /// Durable-layer errors, [`ServeError::Meta`] for invalid service
    /// files, and [`ServeError::DigestMismatch`] when the recovered
    /// state does not reproduce the committed epoch.
    pub fn recover(
        dir: &Path,
        tuning: &ElectionConfig,
    ) -> Result<(Election, ServeRecovery), ServeError> {
        let meta = Meta::read(dir)?;
        let epoch_log = EpochLog::open(&dir.join(EPOCHS_FILE), meta.shards as usize)?;
        let committed = epoch_log.last().cloned();
        let caps: Vec<u64> = committed
            .as_ref()
            .map_or_else(|| vec![0; meta.shards as usize], |e| e.counts.clone());
        let mut engines = Vec::with_capacity(meta.shards as usize);
        let mut stores = Vec::with_capacity(meta.shards as usize);
        for (s, &cap) in caps.iter().enumerate() {
            let shard_dir = dir.join(format!("shard-{s}"));
            let (store, recovery) = Store::resume_capped(&shard_dir, tuning.store, cap)?;
            engines.push(recovery.engine);
            stores.push(Some(store));
        }
        let refs: Vec<&LiveEngine> = engines.iter().collect();
        let tally = merge_shards(&refs);
        if let Some(entry) = &committed {
            if tally.digest != entry.digest {
                return Err(ServeError::DigestMismatch {
                    epoch: entry.epoch,
                    expected: entry.digest,
                    actual: tally.digest,
                });
            }
        }
        let n = meta.n as usize;
        let mut actions = vec![Action::Vote; n];
        for (v, slot) in actions.iter_mut().enumerate() {
            let owner = shard_of(v as u32, meta.shards) as usize;
            *slot = engines[owner].actions()[v].clone();
        }
        let identity =
            IdentityBackend::Durable(IdentityLog::open(&dir.join(IDENTITY_FILE), meta.n)?);
        let (epoch, applied, rejected) = committed
            .as_ref()
            .map_or((0, 0, 0), |e| (e.epoch, e.applied, e.rejected));
        let report = ServeRecovery {
            epoch,
            digest: tally.digest,
            shard_records: caps.clone(),
            applied,
            rejected,
        };
        let initial = EpochSnapshot {
            epoch,
            applied,
            rejected,
            shard_records: caps,
            tally,
        };
        let cfg = ElectionConfig {
            n: meta.n,
            shards: meta.shards,
            default_p: meta.default_p,
            competences: None,
            dir: Some(dir.to_path_buf()),
            misroute: None,
            ..tuning.clone()
        };
        let election = Self::start(
            &cfg,
            engines,
            stores,
            Some(epoch_log),
            identity,
            initial,
            actions,
        )?;
        Ok((election, report))
    }

    /// Spawns the shard and router threads around prepared state.
    fn start(
        cfg: &ElectionConfig,
        engines: Vec<LiveEngine>,
        stores: Vec<Option<Store>>,
        epoch_log: Option<EpochLog>,
        identity: IdentityBackend,
        initial: EpochSnapshot,
        actions: Vec<Action>,
    ) -> Result<Election, ServeError> {
        let durable = epoch_log.is_some();
        let sent = initial.shard_records.clone();
        let (applied, rejected, epoch) = (initial.applied, initial.rejected, initial.epoch);
        let published = Arc::new(Published {
            epoch: AtomicU64::new(epoch),
            snap: RwLock::new(Arc::new(initial)),
            enqueued: AtomicU64::new(0),
            latencies_ns: Mutex::new(Vec::new()),
            failure: Mutex::new(None),
        });
        let (ack_tx, ack_rx) = mpsc::channel();
        let mut shard_txs = Vec::with_capacity(engines.len());
        let mut shard_handles = Vec::with_capacity(engines.len());
        let mut states = Vec::with_capacity(engines.len());
        for (s, (engine, store)) in engines.into_iter().zip(stores).enumerate() {
            let state = Arc::new(Mutex::new(ShardState {
                engine,
                store,
                failure: None,
            }));
            let (tx, rx) = mpsc::channel();
            let thread_state = Arc::clone(&state);
            let thread_ack = ack_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ld-serve-shard-{s}"))
                .spawn(move || shard_main(s as u32, &thread_state, &rx, &thread_ack))
                .map_err(|e| ServeError::Config(format!("spawn shard thread: {e}")))?;
            shard_txs.push(tx);
            shard_handles.push(handle);
            states.push(state);
        }
        drop(ack_tx);
        let (ingest_tx, ingest_rx) = mpsc::channel();
        let router = RouterCtx {
            shards: cfg.shards,
            misroute: cfg.misroute,
            window: cfg.window,
            max_batch: cfg.max_batch.max(1),
            publish_every: cfg.publish_every,
            durable,
            actions,
            rx: ingest_rx,
            shard_txs,
            ack_rx,
            states,
            published: Arc::clone(&published),
            epoch_log,
            sent,
            applied,
            rejected,
            stamps: Vec::new(),
            windows: 0,
        };
        let router_handle = std::thread::Builder::new()
            .name("ld-serve-router".to_string())
            .spawn(move || router_main(router))
            .map_err(|e| ServeError::Config(format!("spawn router thread: {e}")))?;
        Ok(Election {
            n: cfg.n,
            shards: cfg.shards,
            ingest: Some(ingest_tx),
            router: Some(router_handle),
            shard_handles,
            published,
            identity: Mutex::new(identity),
        })
    }

    /// Electorate size.
    #[must_use]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Shard count.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Registers an identity key, minting the next dense voter id
    /// (durably logged for durable elections).
    ///
    /// # Errors
    ///
    /// Typed [`IdentityError`]s (duplicate, full, bad key, log I/O).
    pub fn register(&self, key: &[u8]) -> Result<u32, IdentityError> {
        match &mut *self.identity.lock().expect("identity lock") {
            IdentityBackend::Mem(map) => map.register(key),
            IdentityBackend::Durable(log) => log.register(key),
        }
    }

    /// The id a key maps to, if registered.
    #[must_use]
    pub fn lookup(&self, key: &[u8]) -> Option<u32> {
        match &*self.identity.lock().expect("identity lock") {
            IdentityBackend::Mem(map) => map.lookup(key),
            IdentityBackend::Durable(log) => log.map().lookup(key),
        }
    }

    /// Fire-and-forget ingest: enqueues the update for the router.
    /// Acceptance is decided (and counted) at sequencing time; the
    /// effect is visible in the next published epoch.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] once the service has shut down.
    pub fn submit(&self, update: Update) -> Result<(), ServeError> {
        let tx = self.ingest.as_ref().ok_or(ServeError::Closed)?;
        tx.send(Msg::Update(update, Instant::now()))
            .map_err(|_| ServeError::Closed)?;
        self.published.enqueued.fetch_add(1, Ordering::Relaxed);
        ld_obs::counter("serve.enqueued").incr();
        Ok(())
    }

    /// The latest published epoch snapshot — an `Arc` clone under a
    /// briefly-held read lock; never blocks on ingest or merging.
    #[must_use]
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.snap.read().expect("snapshot lock"))
    }

    /// The latest published epoch number.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.published.epoch.load(Ordering::Acquire)
    }

    /// Drains everything enqueued so far through the shards, runs the
    /// epoch barrier, and returns the freshly published snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Closed`] after shutdown, [`ServeError::Shard`] if
    /// a shard reported a durable-layer failure.
    pub fn flush(&self) -> Result<Arc<EpochSnapshot>, ServeError> {
        let tx = self.ingest.as_ref().ok_or(ServeError::Closed)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        tx.send(Msg::Flush(reply_tx))
            .map_err(|_| ServeError::Closed)?;
        match reply_rx.recv() {
            Ok(Ok(snap)) => Ok(snap),
            Ok(Err((shard, message))) => Err(ServeError::Shard { shard, message }),
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// Cumulative counters (epoch-granular for sequencer counts).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let snap = self.snapshot();
        ServeStats {
            enqueued: self.published.enqueued.load(Ordering::Relaxed),
            applied: snap.applied,
            rejected: snap.rejected,
            epoch: snap.epoch,
            shard_records: snap.shard_records.clone(),
        }
    }

    /// Ingest-to-publish latencies recorded so far, in nanoseconds
    /// (one sample per enqueued update, stamped at `submit` and closed
    /// at the publish that covered it).
    #[must_use]
    pub fn latencies_ns(&self) -> Vec<u64> {
        self.published
            .latencies_ns
            .lock()
            .expect("latency lock")
            .clone()
    }

    /// Graceful shutdown: drains pending ingest, fsyncs every shard
    /// WAL, publishes (and commits) a final epoch, joins all threads,
    /// and returns the final snapshot. Also runs on drop; calling it
    /// explicitly surfaces errors instead of swallowing them.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shard`] if a shard failed at any point.
    pub fn shutdown(mut self) -> Result<Arc<EpochSnapshot>, ServeError> {
        self.shutdown_inner();
        if let Some((shard, message)) = self.published.failure.lock().expect("failure lock").take()
        {
            return Err(ServeError::Shard { shard, message });
        }
        Ok(self.snapshot())
    }

    /// Abrupt stop: pending ingest is dropped, no final barrier runs,
    /// no epoch commits — the crash path, for recovery testing. The
    /// durable state is whatever the last committed epoch covers.
    pub fn kill(mut self) {
        if let Some(tx) = self.ingest.take() {
            let _ = tx.send(Msg::Kill);
        }
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
    }

    fn shutdown_inner(&mut self) {
        // Dropping the sender is the shutdown signal: the router drains
        // what is already queued, publishes a final epoch, and stops
        // the shards.
        drop(self.ingest.take());
        if let Some(h) = self.router.take() {
            let _ = h.join();
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Election {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Election {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Election")
            .field("n", &self.n)
            .field("shards", &self.shards)
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// Mirror of the engine's validation rules over the global action
/// vector — kept byte-identical in effect so the sequencer accepts
/// exactly what a single engine streaming the same updates would (the
/// `serve-replay` conformance check pins this equivalence end to end).
fn validate(actions: &[Action], update: Update) -> Result<(), RejectReason> {
    let n = actions.len();
    let voter = update.voter();
    if voter >= n {
        return Err(RejectReason::VoterOutOfRange { voter, n });
    }
    match update {
        Update::Delegate { target, .. } if target >= n => {
            Err(RejectReason::TargetOutOfRange { voter, target, n })
        }
        // A self-delegation is a terminal (counts as voting), never a
        // cycle — matching `resolve`.
        Update::Delegate { target, .. } if target == voter => Ok(()),
        Update::Delegate { target, .. } => {
            let mut cur = target;
            loop {
                if cur == voter {
                    return Err(RejectReason::WouldCreateCycle { voter, target });
                }
                match actions[cur] {
                    Action::Delegate(t) if t != cur => cur = t,
                    _ => return Ok(()),
                }
            }
        }
        Update::Competence { p, .. } if !p.is_finite() || !(0.0..=1.0).contains(&p) => {
            Err(RejectReason::InvalidCompetence { voter, value: p })
        }
        _ => Ok(()),
    }
}

/// Applies an accepted update to the sequencer's action vector.
fn apply_action(actions: &mut [Action], update: Update) {
    match update {
        Update::Delegate { voter, target } => actions[voter] = Action::Delegate(target),
        Update::Vote { voter } => actions[voter] = Action::Vote,
        Update::Abstain { voter } => actions[voter] = Action::Abstain,
        Update::Competence { .. } => {}
    }
}

fn shard_main(
    shard: u32,
    state: &Arc<Mutex<ShardState>>,
    rx: &Receiver<ShardMsg>,
    ack: &Sender<u32>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Batch(updates) => {
                let mut st = state.lock().expect("shard state");
                if st.failure.is_some() {
                    continue;
                }
                // Write-ahead: the record hits the log before the
                // engine, so the WAL always covers the applied state.
                if let Some(store) = st.store.as_mut() {
                    if let Err(e) = store.append_batch(&updates) {
                        st.failure = Some(format!("wal append: {e}"));
                        continue;
                    }
                }
                let report = st.engine.apply_batch(&updates);
                debug_assert!(
                    report.rejected.is_empty(),
                    "globally accepted update rejected by shard {shard}: {:?}",
                    report.rejected
                );
            }
            ShardMsg::Barrier { sync } => {
                {
                    let mut st = state.lock().expect("shard state");
                    let ShardState {
                        engine,
                        store,
                        failure,
                    } = &mut *st;
                    if sync && failure.is_none() {
                        if let Some(store) = store.as_mut() {
                            if let Err(e) = store.sync() {
                                *failure = Some(format!("wal sync: {e}"));
                            } else if let Err(e) = store.maybe_compact(engine) {
                                *failure = Some(format!("compact: {e}"));
                            }
                        }
                    }
                }
                let _ = ack.send(shard);
            }
            ShardMsg::Stop => break,
        }
    }
}

/// Everything the router thread owns.
struct RouterCtx {
    shards: u32,
    misroute: Option<u32>,
    window: Duration,
    max_batch: usize,
    publish_every: u32,
    durable: bool,
    actions: Vec<Action>,
    rx: Receiver<Msg>,
    shard_txs: Vec<Sender<ShardMsg>>,
    ack_rx: Receiver<u32>,
    states: Vec<Arc<Mutex<ShardState>>>,
    published: Arc<Published>,
    epoch_log: Option<EpochLog>,
    sent: Vec<u64>,
    applied: u64,
    rejected: u64,
    stamps: Vec<Instant>,
    windows: u32,
}

fn router_main(mut ctx: RouterCtx) {
    loop {
        match ctx.rx.recv() {
            Ok(Msg::Update(update, at)) => {
                let mut buf = vec![(update, at)];
                let deadline = Instant::now() + ctx.window;
                let mut flush_reply = None;
                let mut killed = false;
                while buf.len() < ctx.max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match ctx.rx.recv_timeout(deadline - now) {
                        Ok(Msg::Update(u, t)) => buf.push((u, t)),
                        Ok(Msg::Flush(reply)) => {
                            flush_reply = Some(reply);
                            break;
                        }
                        Ok(Msg::Kill) => {
                            killed = true;
                            break;
                        }
                        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
                    }
                }
                if killed {
                    // Crash semantics: the window in flight is lost.
                    ctx.stop_shards();
                    return;
                }
                ctx.dispatch(buf);
                ctx.windows += 1;
                if let Some(reply) = flush_reply {
                    let _ = reply.send(ctx.barrier_and_publish());
                } else if ctx.publish_every > 0 && ctx.windows >= ctx.publish_every {
                    let _ = ctx.barrier_and_publish();
                }
            }
            Ok(Msg::Flush(reply)) => {
                let _ = reply.send(ctx.barrier_and_publish());
            }
            Ok(Msg::Kill) => {
                ctx.stop_shards();
                return;
            }
            Err(_) => {
                // All senders gone: graceful shutdown. Everything
                // enqueued was already drained (recv returns queued
                // messages before reporting disconnection), so one
                // final barrier makes it durable and visible.
                let _ = ctx.barrier_and_publish();
                ctx.stop_shards();
                return;
            }
        }
    }
}

impl RouterCtx {
    /// Validates, sequences, and routes one ingest window.
    fn dispatch(&mut self, buf: Vec<(Update, Instant)>) {
        ld_obs::histogram("serve.window_updates").record(buf.len() as u64);
        let mut per_shard: Vec<Vec<Update>> = vec![Vec::new(); self.shards as usize];
        for (update, at) in buf {
            self.stamps.push(at);
            match validate(&self.actions, update) {
                Ok(()) => {
                    apply_action(&mut self.actions, update);
                    let voter = update.voter() as u32;
                    let mut s = shard_of(voter, self.shards);
                    if self.misroute == Some(voter) {
                        s = (s + 1) % self.shards;
                    }
                    per_shard[s as usize].push(update);
                    self.applied += 1;
                }
                Err(_) => {
                    self.rejected += 1;
                    ld_obs::counter("serve.rejected").incr();
                }
            }
        }
        for (s, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                self.sent[s] += batch.len() as u64;
                let _ = self.shard_txs[s].send(ShardMsg::Batch(batch));
            }
        }
    }

    /// The epoch barrier: quiesce + fsync shards, merge, commit, swap.
    fn barrier_and_publish(&mut self) -> Result<Arc<EpochSnapshot>, (u32, String)> {
        let _span = ld_obs::span("serve.publish_ns");
        self.windows = 0;
        for tx in &self.shard_txs {
            let _ = tx.send(ShardMsg::Barrier { sync: self.durable });
        }
        for _ in 0..self.shard_txs.len() {
            if self.ack_rx.recv().is_err() {
                let failure = (u32::MAX, "shard thread died".to_string());
                *self.published.failure.lock().expect("failure lock") = Some(failure.clone());
                return Err(failure);
            }
        }
        // Shards acked and now idle on their channels; take the locks
        // to read a coherent cross-shard cut.
        let guards: Vec<_> = self
            .states
            .iter()
            .map(|s| s.lock().expect("shard state"))
            .collect();
        for (s, guard) in guards.iter().enumerate() {
            if let Some(message) = &guard.failure {
                let failure = (s as u32, message.clone());
                *self.published.failure.lock().expect("failure lock") = Some(failure.clone());
                return Err(failure);
            }
        }
        let engines: Vec<&LiveEngine> = guards.iter().map(|g| &g.engine).collect();
        let tally = merge_shards(&engines);
        drop(guards);
        let epoch = self.published.epoch.load(Ordering::Acquire) + 1;
        if let Some(log) = self.epoch_log.as_mut() {
            let entry = EpochEntry {
                epoch,
                counts: self.sent.clone(),
                digest: tally.digest,
                applied: self.applied,
                rejected: self.rejected,
            };
            if let Err(e) = log.append(&entry) {
                let failure = (u32::MAX, format!("epoch commit: {e}"));
                *self.published.failure.lock().expect("failure lock") = Some(failure.clone());
                return Err(failure);
            }
        }
        let snap = Arc::new(EpochSnapshot {
            epoch,
            applied: self.applied,
            rejected: self.rejected,
            shard_records: self.sent.clone(),
            tally,
        });
        *self.published.snap.write().expect("snapshot lock") = Arc::clone(&snap);
        self.published.epoch.store(epoch, Ordering::Release);
        let now = Instant::now();
        {
            let mut lat = self.published.latencies_ns.lock().expect("latency lock");
            for at in self.stamps.drain(..) {
                let ns = now.saturating_duration_since(at).as_nanos() as u64;
                lat.push(ns);
                ld_obs::histogram("serve.ingest_to_publish_ns").record(ns);
            }
        }
        ld_obs::counter("serve.epochs").incr();
        ld_obs::counter("serve.applied").add(snap.applied);
        Ok(snap)
    }

    fn stop_shards(&self) {
        for tx in &self.shard_txs {
            let _ = tx.send(ShardMsg::Stop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_mirror_matches_the_engine() {
        let n = 8;
        let stream = [
            Update::Delegate {
                voter: 1,
                target: 0,
            },
            Update::Delegate {
                voter: 2,
                target: 1,
            },
            Update::Delegate {
                voter: 0,
                target: 2,
            }, // cycle
            Update::Delegate {
                voter: 0,
                target: 0,
            }, // self: fine
            Update::Abstain { voter: 5 },
            Update::Delegate {
                voter: 9,
                target: 0,
            }, // out of range
            Update::Delegate {
                voter: 3,
                target: 11,
            }, // target oor
            Update::Competence { voter: 3, p: 1.5 }, // invalid
            Update::Competence { voter: 3, p: 0.25 },
            Update::Vote { voter: 1 },
            Update::Delegate {
                voter: 0,
                target: 1,
            }, // now fine (1 votes)
        ];
        let mut engine = LiveEngine::new(vec![Action::Vote; n], vec![0.5; n]).expect("engine");
        let mut actions = vec![Action::Vote; n];
        for &u in &stream {
            let mirror = validate(&actions, u);
            let real = engine.apply(u).map(|_| ());
            assert_eq!(mirror, real, "diverged on {u:?}");
            if mirror.is_ok() {
                apply_action(&mut actions, u);
            }
        }
        assert_eq!(&actions, engine.actions(), "action vectors track");
    }
}
