//! The compact binary wire protocol of the election service.
//!
//! Every message travels as one frame — `[len: u32][crc32: u32]` then
//! `len` payload bytes, little-endian, the same framing discipline as
//! the `ld-store` WAL (and reusing its CRC32). Payloads open with a tag
//! byte; request tags sit below `0x80`, response tags at or above it,
//! so a stream desynchronisation is caught by the tag check even when
//! the CRC happens to collide. [`Update`] payloads reuse
//! [`ld_live::codec`] verbatim — the service logs the exact bytes it
//! receives, so wire format and WAL format can never drift apart.

use ld_live::codec::{decode_update, encode_update};
use ld_live::Update;
use ld_store::crc::crc32;
use std::io::{Read, Write};

use crate::identity::MAX_KEY_LEN;

/// Hard cap on a frame payload: a tag plus a few fixed fields plus a
/// bounded identity key or error string never legitimately exceeds it.
pub const MAX_WIRE_PAYLOAD: u32 = 512;

/// Frame header length: payload length + CRC32, both `u32` LE.
pub const FRAME_HEADER_LEN: usize = 8;

const TAG_CREATE: u8 = 0x01;
const TAG_REGISTER: u8 = 0x02;
const TAG_LOOKUP: u8 = 0x03;
const TAG_SUBMIT: u8 = 0x04;
const TAG_QUERY: u8 = 0x05;
const TAG_FLUSH: u8 = 0x06;
const TAG_SHUTDOWN: u8 = 0x07;

const TAG_CREATED: u8 = 0x81;
const TAG_REGISTERED: u8 = 0x82;
const TAG_FOUND: u8 = 0x83;
const TAG_ENQUEUED: u8 = 0x84;
const TAG_TALLY: u8 = 0x85;
const TAG_BYE: u8 = 0x86;
const TAG_ERROR: u8 = 0xFF;

/// Wire-level failures (framing, checksum, or payload shape).
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The stream ended inside a frame.
    Truncated,
    /// A frame header claims more than [`MAX_WIRE_PAYLOAD`] bytes.
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The payload checksum does not match its header.
    Crc {
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The payload carries an unknown message tag.
    BadTag(u8),
    /// The payload is structurally wrong for its tag.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O: {e}"),
            WireError::Truncated => write!(f, "stream ended inside a frame"),
            WireError::Oversized { len } => {
                write!(f, "frame claims {len} bytes (cap {MAX_WIRE_PAYLOAD})")
            }
            WireError::Crc { stored, computed } => {
                write!(f, "frame CRC {stored:#010x} != computed {computed:#010x}")
            }
            WireError::BadTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A client request to the election host.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create an in-memory election `election` with a fixed electorate.
    Create {
        /// Host-scoped election id.
        election: u32,
        /// Electorate size.
        n: u32,
        /// Shard count.
        shards: u32,
        /// Initial competence for every voter.
        default_p: f64,
    },
    /// Register an identity key, minting the next dense voter id.
    Register {
        /// Target election.
        election: u32,
        /// Opaque identity key (`1..=MAX_KEY_LEN` bytes).
        key: Vec<u8>,
    },
    /// Look up the id a key was registered under.
    Lookup {
        /// Target election.
        election: u32,
        /// The key to resolve.
        key: Vec<u8>,
    },
    /// Enqueue one delegation-stream update (fire-and-forget).
    Submit {
        /// Target election.
        election: u32,
        /// The update, by dense voter id.
        update: Update,
    },
    /// Read the latest published epoch snapshot.
    Query {
        /// Target election.
        election: u32,
    },
    /// Drain pending ingest and publish a fresh epoch, then report it.
    Flush {
        /// Target election.
        election: u32,
    },
    /// Ask the host to shut down gracefully.
    Shutdown,
}

/// The tally fields of a published epoch, as sent on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireTally {
    /// Epoch counter of the snapshot.
    pub epoch: u64,
    /// Electorate size.
    pub n: u32,
    /// Votes reaching a ballot.
    pub tallied: u64,
    /// Votes discarded through abstention.
    pub discarded: u64,
    /// Number of distinct sinks.
    pub sink_count: u64,
    /// Heaviest single sink.
    pub max_weight: u64,
    /// Mean correct-vote weight `Σ w·p`.
    pub mean: f64,
    /// Variance `Σ w²·p(1-p)`.
    pub variance: f64,
    /// Normal-approximation probability the correct option wins.
    pub p_correct: f64,
    /// Integer digest of the full weight vector (restart conformance).
    pub digest: u64,
}

/// A host response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The election was created.
    Created {
        /// Its host-scoped id.
        election: u32,
    },
    /// A key was registered.
    Registered {
        /// The minted dense voter id.
        id: u32,
    },
    /// Lookup result (`None` when the key is unknown).
    Found {
        /// The id, if registered.
        id: Option<u32>,
    },
    /// The update was accepted into the ingest queue.
    Enqueued,
    /// A published tally snapshot.
    Tally(WireTally),
    /// Acknowledges shutdown; the connection closes after this.
    Bye,
    /// The request failed.
    Error {
        /// Machine-readable error class (stable across releases).
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

/// Error codes carried by [`Response::Error`].
pub mod error_code {
    /// The addressed election does not exist.
    pub const NO_SUCH_ELECTION: u8 = 1;
    /// The election id is already taken.
    pub const ELECTION_EXISTS: u8 = 2;
    /// Identity registration or lookup failed.
    pub const IDENTITY: u8 = 3;
    /// The service rejected or could not accept the update.
    pub const REJECTED: u8 = 4;
    /// Internal service failure.
    pub const INTERNAL: u8 = 5;
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, k: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(k)
            .ok_or(WireError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(WireError::Malformed("payload shorter than its tag implies"));
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn rest(self) -> &'a [u8] {
        &self.buf[self.at..]
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

fn check_key(key: &[u8]) -> Result<(), WireError> {
    if key.is_empty() || key.len() > MAX_KEY_LEN {
        return Err(WireError::Malformed("identity key length out of bounds"));
    }
    Ok(())
}

impl Request {
    /// Appends this request's payload (tag + fields) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Request::Create {
                election,
                n,
                shards,
                default_p,
            } => {
                out.push(TAG_CREATE);
                put_u32(out, election);
                put_u32(out, n);
                put_u32(out, shards);
                put_f64(out, default_p);
            }
            Request::Register { election, ref key } => {
                out.push(TAG_REGISTER);
                put_u32(out, election);
                out.extend_from_slice(key);
            }
            Request::Lookup { election, ref key } => {
                out.push(TAG_LOOKUP);
                put_u32(out, election);
                out.extend_from_slice(key);
            }
            Request::Submit {
                election,
                ref update,
            } => {
                out.push(TAG_SUBMIT);
                put_u32(out, election);
                encode_update(update, out);
            }
            Request::Query { election } => {
                out.push(TAG_QUERY);
                put_u32(out, election);
            }
            Request::Flush { election } => {
                out.push(TAG_FLUSH);
                put_u32(out, election);
            }
            Request::Shutdown => out.push(TAG_SHUTDOWN),
        }
    }

    /// Decodes one request payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unknown tags, short or oversized fields, and
    /// invalid embedded update encodings.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let (&tag, body) = payload
            .split_first()
            .ok_or(WireError::Malformed("empty payload"))?;
        let mut c = Cursor::new(body);
        match tag {
            TAG_CREATE => {
                let req = Request::Create {
                    election: c.u32()?,
                    n: c.u32()?,
                    shards: c.u32()?,
                    default_p: c.f64()?,
                };
                c.done()?;
                Ok(req)
            }
            TAG_REGISTER => {
                let election = c.u32()?;
                let key = c.rest();
                check_key(key)?;
                Ok(Request::Register {
                    election,
                    key: key.to_vec(),
                })
            }
            TAG_LOOKUP => {
                let election = c.u32()?;
                let key = c.rest();
                check_key(key)?;
                Ok(Request::Lookup {
                    election,
                    key: key.to_vec(),
                })
            }
            TAG_SUBMIT => {
                let election = c.u32()?;
                let update = decode_update(c.rest())
                    .map_err(|_| WireError::Malformed("embedded update encoding"))?;
                Ok(Request::Submit { election, update })
            }
            TAG_QUERY => {
                let req = Request::Query { election: c.u32()? };
                c.done()?;
                Ok(req)
            }
            TAG_FLUSH => {
                let req = Request::Flush { election: c.u32()? };
                c.done()?;
                Ok(req)
            }
            TAG_SHUTDOWN => {
                c.done()?;
                Ok(Request::Shutdown)
            }
            other => Err(WireError::BadTag(other)),
        }
    }
}

impl Response {
    /// Appends this response's payload (tag + fields) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Response::Created { election } => {
                out.push(TAG_CREATED);
                put_u32(out, election);
            }
            Response::Registered { id } => {
                out.push(TAG_REGISTERED);
                put_u32(out, id);
            }
            Response::Found { id } => {
                out.push(TAG_FOUND);
                out.push(u8::from(id.is_some()));
                put_u32(out, id.unwrap_or(0));
            }
            Response::Enqueued => out.push(TAG_ENQUEUED),
            Response::Tally(t) => {
                out.push(TAG_TALLY);
                put_u64(out, t.epoch);
                put_u32(out, t.n);
                put_u64(out, t.tallied);
                put_u64(out, t.discarded);
                put_u64(out, t.sink_count);
                put_u64(out, t.max_weight);
                put_f64(out, t.mean);
                put_f64(out, t.variance);
                put_f64(out, t.p_correct);
                put_u64(out, t.digest);
            }
            Response::Bye => out.push(TAG_BYE),
            Response::Error { code, ref message } => {
                out.push(TAG_ERROR);
                out.push(code);
                let cap = MAX_WIRE_PAYLOAD as usize - FRAME_HEADER_LEN - 2;
                let msg = message.as_bytes();
                out.extend_from_slice(&msg[..msg.len().min(cap)]);
            }
        }
    }

    /// Decodes one response payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on unknown tags or malformed fields.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let (&tag, body) = payload
            .split_first()
            .ok_or(WireError::Malformed("empty payload"))?;
        let mut c = Cursor::new(body);
        match tag {
            TAG_CREATED => {
                let r = Response::Created { election: c.u32()? };
                c.done()?;
                Ok(r)
            }
            TAG_REGISTERED => {
                let r = Response::Registered { id: c.u32()? };
                c.done()?;
                Ok(r)
            }
            TAG_FOUND => {
                let some = match c.take(1)?[0] {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("found flag")),
                };
                let id = c.u32()?;
                c.done()?;
                Ok(Response::Found {
                    id: some.then_some(id),
                })
            }
            TAG_ENQUEUED => {
                c.done()?;
                Ok(Response::Enqueued)
            }
            TAG_TALLY => {
                let t = WireTally {
                    epoch: c.u64()?,
                    n: c.u32()?,
                    tallied: c.u64()?,
                    discarded: c.u64()?,
                    sink_count: c.u64()?,
                    max_weight: c.u64()?,
                    mean: c.f64()?,
                    variance: c.f64()?,
                    p_correct: c.f64()?,
                    digest: c.u64()?,
                };
                c.done()?;
                Ok(Response::Tally(t))
            }
            TAG_BYE => {
                c.done()?;
                Ok(Response::Bye)
            }
            TAG_ERROR => {
                let code = c.take(1)?[0];
                let message = String::from_utf8_lossy(c.rest()).into_owned();
                Ok(Response::Error { code, message })
            }
            other => Err(WireError::BadTag(other)),
        }
    }
}

/// Writes one `[len][crc][payload]` frame.
///
/// # Errors
///
/// [`WireError::Oversized`] if the payload exceeds the cap, otherwise
/// stream I/O errors.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized { len: u32::MAX })?;
    if len > MAX_WIRE_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, validating length and checksum.
///
/// Returns `Ok(None)` on a clean end-of-stream (no header byte read) —
/// a peer hanging up between frames is normal connection teardown.
///
/// # Errors
///
/// [`WireError::Truncated`] when the stream dies inside a frame, plus
/// checksum/length violations and I/O errors.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let stored = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_WIRE_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    let computed = crc32(&payload);
    if computed != stored {
        return Err(WireError::Crc { stored, computed });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Create {
                election: 1,
                n: 100,
                shards: 8,
                default_p: 0.625,
            },
            Request::Register {
                election: 1,
                key: b"alice".to_vec(),
            },
            Request::Lookup {
                election: 1,
                key: vec![0xAB; MAX_KEY_LEN],
            },
            Request::Submit {
                election: 2,
                update: Update::Delegate {
                    voter: 3,
                    target: 9,
                },
            },
            Request::Submit {
                election: 2,
                update: Update::Competence { voter: 7, p: 0.75 },
            },
            Request::Query { election: 9 },
            Request::Flush { election: 0 },
            Request::Shutdown,
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Created { election: 4 },
            Response::Registered { id: 17 },
            Response::Found { id: Some(3) },
            Response::Found { id: None },
            Response::Enqueued,
            Response::Tally(WireTally {
                epoch: 12,
                n: 1000,
                tallied: 990,
                discarded: 10,
                sink_count: 402,
                max_weight: 31,
                mean: 512.25,
                variance: 199.5,
                p_correct: 0.875,
                digest: 0xDEAD_BEEF_CAFE_F00D,
            }),
            Response::Bye,
            Response::Error {
                code: error_code::REJECTED,
                message: "voter 9 outside the 4-voter set".to_string(),
            },
        ]
    }

    #[test]
    fn requests_and_responses_round_trip_through_frames() {
        for req in requests() {
            let mut payload = Vec::new();
            req.encode(&mut payload);
            let mut stream = Vec::new();
            write_frame(&mut stream, &payload).expect("write");
            let got = read_frame(&mut stream.as_slice())
                .expect("read")
                .expect("one frame");
            assert_eq!(Request::decode(&got).expect("decode"), req);
        }
        for resp in responses() {
            let mut payload = Vec::new();
            resp.encode(&mut payload);
            assert_eq!(Response::decode(&payload).expect("decode"), resp);
        }
    }

    #[test]
    fn several_frames_stream_back_to_back() {
        let mut stream = Vec::new();
        for req in requests() {
            let mut payload = Vec::new();
            req.encode(&mut payload);
            write_frame(&mut stream, &payload).expect("write");
        }
        let mut r = stream.as_slice();
        for req in requests() {
            let got = read_frame(&mut r).expect("read").expect("frame");
            assert_eq!(Request::decode(&got).expect("decode"), req);
        }
        assert!(read_frame(&mut r).expect("eof").is_none(), "clean end");
    }

    #[test]
    fn framing_violations_are_typed() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &[TAG_SHUTDOWN]).expect("write");
        // Flip a payload byte: CRC catches it.
        let mut evil = stream.clone();
        let last = evil.len() - 1;
        evil[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut evil.as_slice()),
            Err(WireError::Crc { .. })
        ));
        // Chop inside the payload: truncated.
        assert!(matches!(
            read_frame(&mut &stream[..stream.len() - 1]),
            Err(WireError::Truncated)
        ));
        // Chop inside the header: truncated.
        assert!(matches!(
            read_frame(&mut &stream[..3]),
            Err(WireError::Truncated)
        ));
        // Oversized claim.
        let mut huge = (MAX_WIRE_PAYLOAD + 1).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0; 4]);
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(WireError::Oversized { .. })
        ));
        // Unknown tag and malformed bodies.
        assert!(matches!(
            Request::decode(&[0x6F]),
            Err(WireError::BadTag(0x6F))
        ));
        assert!(matches!(
            Request::decode(&[TAG_QUERY, 1, 2]),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Request::decode(&[TAG_REGISTER, 1, 0, 0, 0]),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            Response::decode(&[]),
            Err(WireError::Malformed(_))
        ));
    }
}
