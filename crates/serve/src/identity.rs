//! Stable voter identity: opaque byte keys interned to dense ids.
//!
//! The engines, WALs, and wire updates all speak dense `u32` voter ids
//! (`0..n`), but clients hold opaque identity keys — public keys,
//! account handles, whatever the deployment uses. The [`IdentityMap`]
//! interns keys to ids first-come-first-served; [`IdentityLog`] makes
//! the assignment durable with the same length-prefixed CRC framing as
//! the `ld-store` WAL, so a restarted service hands every returning key
//! the exact id its votes were logged under. Losing that mapping would
//! silently re-key the electorate, which is why registration fsyncs
//! per entry (registration is rare; updates are the hot path).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ld_store::crc::crc32;

/// Longest accepted identity key, in bytes. Generous for hashes and
/// handles while keeping wire frames and log records small.
pub const MAX_KEY_LEN: usize = 64;

/// File name of the durable identity log inside an election directory.
pub const IDENTITY_FILE: &str = "identity.log";

/// Magic + version header of the identity log.
const IDENTITY_MAGIC: [u8; 8] = *b"LDIDN\x1a\x00\x01";

/// Frame header: payload length (`u32`) + payload CRC32 (`u32`).
const FRAME_HEADER_LEN: usize = 8;

/// Why a key could not be registered or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IdentityError {
    /// The key is already registered, to the returned id.
    Duplicate {
        /// The id the key already maps to.
        id: u32,
    },
    /// Empty keys are reserved (they cannot round-trip usefully).
    EmptyKey,
    /// The key exceeds [`MAX_KEY_LEN`].
    KeyTooLong {
        /// The offending key length.
        len: usize,
    },
    /// Every dense id is taken; the election was sized for `capacity`.
    Full {
        /// The fixed electorate size.
        capacity: u32,
    },
    /// A filesystem operation on the identity log failed.
    Io {
        /// What was being attempted.
        op: &'static str,
        /// The log path.
        path: PathBuf,
        /// Stringified source error (kept `Clone` for test plumbing).
        message: String,
    },
    /// The identity log exists but fails structural validation.
    Corrupt {
        /// The log path.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for IdentityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdentityError::Duplicate { id } => {
                write!(f, "key already registered as voter {id}")
            }
            IdentityError::EmptyKey => write!(f, "identity keys must be non-empty"),
            IdentityError::KeyTooLong { len } => {
                write!(
                    f,
                    "identity key of {len} bytes exceeds the {MAX_KEY_LEN}-byte cap"
                )
            }
            IdentityError::Full { capacity } => {
                write!(f, "all {capacity} voter ids are registered")
            }
            IdentityError::Io { op, path, message } => {
                write!(f, "{op} ({}): {message}", path.display())
            }
            IdentityError::Corrupt { path, reason } => {
                write!(f, "corrupt identity log {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for IdentityError {}

/// In-memory key interner: opaque byte keys to dense ids `0..capacity`,
/// assigned in registration order.
#[derive(Debug, Clone, Default)]
pub struct IdentityMap {
    ids: HashMap<Box<[u8]>, u32>,
    keys: Vec<Box<[u8]>>,
    capacity: u32,
}

impl IdentityMap {
    /// An empty map that will hand out at most `capacity` ids.
    #[must_use]
    pub fn with_capacity(capacity: u32) -> Self {
        IdentityMap {
            ids: HashMap::new(),
            keys: Vec::new(),
            capacity,
        }
    }

    /// Validates a key without registering it.
    fn check_key(key: &[u8]) -> Result<(), IdentityError> {
        if key.is_empty() {
            return Err(IdentityError::EmptyKey);
        }
        if key.len() > MAX_KEY_LEN {
            return Err(IdentityError::KeyTooLong { len: key.len() });
        }
        Ok(())
    }

    /// Interns `key`, returning its fresh dense id.
    ///
    /// # Errors
    ///
    /// Typed [`IdentityError`] for duplicates, empty or oversized keys,
    /// and a full electorate; the map is unchanged on error.
    pub fn register(&mut self, key: &[u8]) -> Result<u32, IdentityError> {
        Self::check_key(key)?;
        if let Some(&id) = self.ids.get(key) {
            return Err(IdentityError::Duplicate { id });
        }
        let id = u32::try_from(self.keys.len()).expect("ids bounded by u32 capacity");
        if id >= self.capacity {
            return Err(IdentityError::Full {
                capacity: self.capacity,
            });
        }
        let owned: Box<[u8]> = key.into();
        self.ids.insert(owned.clone(), id);
        self.keys.push(owned);
        Ok(id)
    }

    /// The id a key maps to, if registered.
    #[must_use]
    pub fn lookup(&self, key: &[u8]) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// The key a dense id was assigned to, if any.
    #[must_use]
    pub fn key_of(&self, id: u32) -> Option<&[u8]> {
        self.keys.get(id as usize).map(|k| &**k)
    }

    /// Number of registered keys.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.keys.len() as u32
    }

    /// Whether no key is registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The fixed id capacity.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }
}

/// The durable identity map: [`IdentityMap`] plus an append-only log
/// whose replay reproduces the exact key-to-id assignment.
#[derive(Debug)]
pub struct IdentityLog {
    map: IdentityMap,
    file: File,
    path: PathBuf,
}

impl IdentityLog {
    /// Opens (or creates) the identity log at `path`, replaying every
    /// whole record into a fresh map of `capacity` ids. A torn tail —
    /// the crash mid-append case — is truncated away, mirroring the WAL
    /// recovery contract; a corrupt *interior* record is an error.
    ///
    /// # Errors
    ///
    /// [`IdentityError::Io`] on filesystem failure, `Corrupt` when the
    /// header or an interior record fails validation or the log holds
    /// more keys than `capacity`.
    pub fn open(path: &Path, capacity: u32) -> Result<IdentityLog, IdentityError> {
        let io = |op: &'static str| {
            let path = path.to_path_buf();
            move |e: std::io::Error| IdentityError::Io {
                op,
                path: path.clone(),
                message: e.to_string(),
            }
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io("open identity log"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(io("read identity log"))?;
        let mut map = IdentityMap::with_capacity(capacity);
        let valid_len = if bytes.is_empty() {
            file.write_all(&IDENTITY_MAGIC)
                .map_err(io("write identity header"))?;
            file.sync_data().map_err(io("sync identity header"))?;
            IDENTITY_MAGIC.len() as u64
        } else {
            if bytes.len() < IDENTITY_MAGIC.len() || bytes[..IDENTITY_MAGIC.len()] != IDENTITY_MAGIC
            {
                return Err(IdentityError::Corrupt {
                    path: path.to_path_buf(),
                    reason: "bad magic or truncated header".to_string(),
                });
            }
            let mut at = IDENTITY_MAGIC.len();
            // Scan whole frames; stop (and truncate) at the first torn
            // tail, but treat a bad CRC on a *complete* frame that is
            // followed by more data as corruption, not a crash artifact.
            loop {
                let rest = &bytes[at..];
                if rest.is_empty() {
                    break;
                }
                if rest.len() < FRAME_HEADER_LEN {
                    break; // torn header
                }
                let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
                let stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
                if len == 0 || len > MAX_KEY_LEN {
                    return Err(IdentityError::Corrupt {
                        path: path.to_path_buf(),
                        reason: format!("record at byte {at} claims {len}-byte key"),
                    });
                }
                if rest.len() < FRAME_HEADER_LEN + len {
                    break; // torn payload
                }
                let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
                if crc32(payload) != stored {
                    if rest.len() == FRAME_HEADER_LEN + len {
                        break; // torn final frame: payload half-written
                    }
                    return Err(IdentityError::Corrupt {
                        path: path.to_path_buf(),
                        reason: format!("CRC mismatch in interior record at byte {at}"),
                    });
                }
                map.register(payload).map_err(|e| IdentityError::Corrupt {
                    path: path.to_path_buf(),
                    reason: format!("replayed record rejected: {e}"),
                })?;
                at += FRAME_HEADER_LEN + len;
            }
            let valid = at as u64;
            if valid < bytes.len() as u64 {
                file.set_len(valid)
                    .map_err(io("truncate torn identity tail"))?;
                file.sync_data()
                    .map_err(io("sync truncated identity log"))?;
            }
            valid
        };
        file.seek(SeekFrom::Start(valid_len))
            .map_err(io("seek identity log"))?;
        Ok(IdentityLog {
            map,
            file,
            path: path.to_path_buf(),
        })
    }

    /// Registers a key durably: the log record is appended and fsynced
    /// *before* the in-memory map commits, so a crash can lose at most
    /// an unacknowledged registration, never invent one.
    ///
    /// # Errors
    ///
    /// Validation errors from [`IdentityMap::register`], or
    /// [`IdentityError::Io`] if the append fails (the map is unchanged).
    pub fn register(&mut self, key: &[u8]) -> Result<u32, IdentityError> {
        IdentityMap::check_key(key)?;
        if let Some(&id) = self.map.ids.get(key) {
            return Err(IdentityError::Duplicate { id });
        }
        if self.map.len() >= self.map.capacity {
            return Err(IdentityError::Full {
                capacity: self.map.capacity,
            });
        }
        let log_path = self.path.clone();
        let io = move |op: &'static str| {
            let path = log_path.clone();
            move |e: std::io::Error| IdentityError::Io {
                op,
                path: path.clone(),
                message: e.to_string(),
            }
        };
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + key.len());
        frame.extend_from_slice(&(key.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(key).to_le_bytes());
        frame.extend_from_slice(key);
        self.file
            .write_all(&frame)
            .map_err(io("append identity record"))?;
        self.file.sync_data().map_err(io("sync identity record"))?;
        self.map.register(key)
    }

    /// The replayed/committed in-memory view.
    #[must_use]
    pub fn map(&self) -> &IdentityMap {
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ld-serve-identity-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join(IDENTITY_FILE)
    }

    #[test]
    fn registers_dense_ids_and_rejects_bad_keys() {
        let mut map = IdentityMap::with_capacity(2);
        assert_eq!(map.register(b"alice"), Ok(0));
        assert_eq!(map.register(b"bob"), Ok(1));
        assert_eq!(
            map.register(b"alice"),
            Err(IdentityError::Duplicate { id: 0 })
        );
        assert_eq!(
            map.register(b"carol"),
            Err(IdentityError::Full { capacity: 2 })
        );
        assert_eq!(map.register(b""), Err(IdentityError::EmptyKey));
        assert_eq!(
            map.register(&[7u8; MAX_KEY_LEN + 1]),
            Err(IdentityError::KeyTooLong {
                len: MAX_KEY_LEN + 1
            })
        );
        assert_eq!(map.lookup(b"bob"), Some(1));
        assert_eq!(map.key_of(0), Some(&b"alice"[..]));
        assert_eq!(map.key_of(9), None);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn log_replay_reproduces_the_assignment() {
        let path = tmp("replay");
        let keys: Vec<Vec<u8>> = (0..40u32)
            .map(|k| format!("voter-{k}").into_bytes())
            .collect();
        {
            let mut log = IdentityLog::open(&path, 64).expect("open fresh");
            for key in &keys {
                log.register(key).expect("register");
            }
            assert_eq!(
                log.register(&keys[3]),
                Err(IdentityError::Duplicate { id: 3 })
            );
        }
        let log = IdentityLog::open(&path, 64).expect("reopen");
        for (id, key) in keys.iter().enumerate() {
            assert_eq!(log.map().lookup(key), Some(id as u32), "key {id}");
        }
        assert_eq!(log.map().len(), 40);
    }

    #[test]
    fn torn_tail_is_truncated_but_interior_corruption_is_typed() {
        let path = tmp("torn");
        {
            let mut log = IdentityLog::open(&path, 8).expect("open");
            log.register(b"alice").expect("a");
            log.register(b"bob").expect("b");
        }
        let whole = std::fs::read(&path).expect("read log");
        // Chop mid-record: replay keeps the whole prefix only.
        std::fs::write(&path, &whole[..whole.len() - 2]).expect("tear");
        let log = IdentityLog::open(&path, 8).expect("reopen torn");
        assert_eq!(log.map().lookup(b"alice"), Some(0));
        assert_eq!(log.map().lookup(b"bob"), None, "torn record dropped");
        assert_eq!(
            std::fs::metadata(&path).expect("stat").len(),
            whole.len() as u64 - (FRAME_HEADER_LEN as u64 + 3),
            "torn frame physically truncated"
        );
        // Interior flip: typed corruption, not silent truncation.
        let mut evil = whole.clone();
        let flip_at = IDENTITY_MAGIC.len() + FRAME_HEADER_LEN; // first key byte
        evil[flip_at] ^= 0xFF;
        std::fs::write(&path, &evil).expect("corrupt");
        match IdentityLog::open(&path, 8) {
            Err(IdentityError::Corrupt { reason, .. }) => {
                assert!(reason.contains("CRC"), "got: {reason}")
            }
            other => panic!("interior corruption not detected: {other:?}"),
        }
    }
}
