//! # `ld-serve` — the sharded election service
//!
//! Everything below this crate computes; this crate *serves*. It hosts
//! long-running elections behind a batching ingest front-end and keeps
//! a coherent global tally continuously publishable while updates
//! stream in:
//!
//! * [`identity`] — opaque byte keys interned to the dense `u32` voter
//!   ids the engines speak, with a CRC-framed durable log so restarts
//!   preserve the assignment.
//! * [`election`] — the tentpole: one election hash-partitioned across
//!   a set of full-width [`LiveEngine`](ld_live::LiveEngine) shards
//!   (per [`ld_core::ids::shard_of`]). A single router thread validates
//!   the stream globally in arrival order — acceptance is deterministic
//!   and identical to a single engine — then fans batches out to shard
//!   threads that carry the heavy per-update work (subtree recompute,
//!   WAL appends) in parallel for the voters they own.
//! * [`merge`] — the exact cross-shard tally: phantom self-votes are
//!   stripped and pooled ghost weight forwarded along canonical owner
//!   chains, reproducing a single engine's weights bit for bit.
//! * [`epochs`] — the cross-shard commit point: every publish fsyncs
//!   all shard WALs and logs per-shard replay caps plus a tally digest,
//!   so a killed service recovers *exactly* the last published epoch
//!   ([`ld_store::Store::resume_capped`]) and can prove it.
//! * [`wire`] / [`server`] — a compact length-prefixed CRC-framed
//!   protocol (reusing the WAL codec for updates) with a Unix-socket
//!   host and an in-process loopback that exercises the same bytes.
//!
//! Readers never wait on ingest: the latest [`EpochSnapshot`] is an
//! `Arc` swapped behind a briefly-held lock, so `snapshot()` is a
//! clone, not a tally. Driven from the CLI as `repro serve`,
//! `repro serve-bench`, and `repro serve-recover`, and pinned by the
//! `serve-replay` conformance check (sharded == streamed == batched ==
//! from-scratch, including after a mid-run kill).

#![warn(missing_docs)]

pub mod election;
pub mod epochs;
pub mod identity;
pub mod merge;
pub mod server;
pub mod wire;

pub use election::{Election, ElectionConfig, EpochSnapshot, ServeRecovery, ServeStats};
pub use identity::{IdentityError, IdentityLog, IdentityMap, MAX_KEY_LEN};
pub use merge::{merge_shards, tally_digest, MergedTally};
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{install_sigterm_flag, Host, LoopbackClient};
pub use wire::{Request, Response, WireError, WireTally};

use std::path::{Path, PathBuf};

use ld_store::StoreError;

/// Errors from the service layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The configuration is unusable (zero shards, bad competences…).
    Config(String),
    /// The service has already shut down; the ingest channel is gone.
    Closed,
    /// A shard thread reported a failure (store append, sync, panic).
    Shard {
        /// The failing shard.
        shard: u32,
        /// What it reported.
        message: String,
    },
    /// The durable layer failed underneath a shard or recovery.
    Store(StoreError),
    /// The identity layer failed.
    Identity(IdentityError),
    /// A service-level file (meta, epoch log) is missing or invalid.
    Meta {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
    /// A filesystem operation outside the store failed.
    Io {
        /// What was being attempted.
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Recovery reproduced a state whose digest does not match the
    /// epoch log — the shard WALs and epoch log disagree.
    DigestMismatch {
        /// The epoch being recovered.
        epoch: u64,
        /// Digest recorded at publish time.
        expected: u64,
        /// Digest of the recovered merge.
        actual: u64,
    },
}

impl ServeError {
    /// Adapter: `map_err(ServeError::io("write meta", &path))`.
    pub(crate) fn io<'a>(
        op: &'static str,
        path: &'a Path,
    ) -> impl Fn(std::io::Error) -> ServeError + 'a {
        move |source| ServeError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(reason) => write!(f, "bad service configuration: {reason}"),
            ServeError::Closed => write!(f, "election service already shut down"),
            ServeError::Shard { shard, message } => {
                write!(f, "shard {shard} failed: {message}")
            }
            ServeError::Store(e) => write!(f, "durable layer: {e}"),
            ServeError::Identity(e) => write!(f, "identity layer: {e}"),
            ServeError::Meta { path, reason } => {
                write!(f, "service file {}: {reason}", path.display())
            }
            ServeError::Io { op, path, source } => {
                write!(f, "{op} ({}): {source}", path.display())
            }
            ServeError::DigestMismatch {
                epoch,
                expected,
                actual,
            } => write!(
                f,
                "epoch {epoch} recovery digest {actual:#018x} != logged {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            ServeError::Identity(e) => Some(e),
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<IdentityError> for ServeError {
    fn from(e: IdentityError) -> Self {
        ServeError::Identity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = ServeError::from(IdentityError::EmptyKey);
        assert!(e.to_string().contains("identity"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ServeError::DigestMismatch {
            epoch: 3,
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("epoch 3"));
        fn assert_good<E: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<ServeError>();
    }
}
