//! The multi-election host and its transports.
//!
//! [`Host`] owns a set of named [`Election`]s and answers [`Request`]s
//! with [`Response`]s — transport-agnostic, so the same handler backs
//! both the Unix-socket server ([`serve_unix`]) and the in-process
//! [`LoopbackClient`]. The loopback is not a shortcut around the wire
//! format: it encodes each request to bytes, decodes it, dispatches,
//! and round-trips the response the same way, so every CLI smoke test
//! exercises the real codec path.
//!
//! Shutdown is cooperative: the accept loop polls a stop flag (set by
//! a `Shutdown` request or by SIGTERM via [`install_sigterm_flag`]),
//! then drops the host — and dropping an [`Election`] *is* the
//! graceful path: pending ingest drains, shard WALs fsync, and a final
//! epoch publishes before the process exits.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::election::{Election, ElectionConfig};
use crate::wire::{error_code, read_frame, write_frame, Request, Response, WireError, WireTally};
use crate::{IdentityError, ServeError};

/// A transport-agnostic host for multiple named elections.
#[derive(Debug, Default)]
pub struct Host {
    elections: Mutex<HashMap<u32, Election>>,
}

impl Host {
    /// An empty host.
    #[must_use]
    pub fn new() -> Host {
        Host::default()
    }

    /// Installs an already-created election under `id` (the CLI uses
    /// this for durable or pre-configured elections that wire `Create`
    /// — which is in-memory only — cannot express).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if the id is taken.
    pub fn insert(&self, id: u32, election: Election) -> Result<(), ServeError> {
        let mut map = self.elections.lock().expect("elections lock");
        if map.contains_key(&id) {
            return Err(ServeError::Config(format!("election {id} already exists")));
        }
        map.insert(id, election);
        Ok(())
    }

    /// Handles one request. Never panics on bad input — protocol-level
    /// problems come back as [`Response::Error`].
    pub fn handle(&self, request: &Request) -> Response {
        match *request {
            Request::Create {
                election,
                n,
                shards,
                default_p,
            } => {
                let mut cfg = ElectionConfig::new(n);
                cfg.shards = shards.max(1);
                cfg.default_p = default_p;
                match Election::create(&cfg) {
                    Ok(e) => {
                        let mut map = self.elections.lock().expect("elections lock");
                        if map.contains_key(&election) {
                            return Response::Error {
                                code: error_code::ELECTION_EXISTS,
                                message: format!("election {election} already exists"),
                            };
                        }
                        map.insert(election, e);
                        Response::Created { election }
                    }
                    Err(e) => Response::Error {
                        code: error_code::INTERNAL,
                        message: e.to_string(),
                    },
                }
            }
            Request::Register { election, ref key } => {
                self.with_election(election, |e| match e.register(key) {
                    Ok(id) => Response::Registered { id },
                    Err(err) => Response::Error {
                        code: identity_code(&err),
                        message: err.to_string(),
                    },
                })
            }
            Request::Lookup { election, ref key } => {
                self.with_election(election, |e| Response::Found { id: e.lookup(key) })
            }
            Request::Submit {
                election,
                ref update,
            } => self.with_election(election, |e| match e.submit(*update) {
                Ok(()) => Response::Enqueued,
                Err(err) => Response::Error {
                    code: error_code::REJECTED,
                    message: err.to_string(),
                },
            }),
            Request::Query { election } => {
                self.with_election(election, |e| Response::Tally(wire_tally(&e.snapshot())))
            }
            Request::Flush { election } => self.with_election(election, |e| match e.flush() {
                Ok(snap) => Response::Tally(wire_tally(&snap)),
                Err(err) => Response::Error {
                    code: error_code::INTERNAL,
                    message: err.to_string(),
                },
            }),
            Request::Shutdown => Response::Bye,
        }
    }

    fn with_election(&self, id: u32, f: impl FnOnce(&Election) -> Response) -> Response {
        let map = self.elections.lock().expect("elections lock");
        match map.get(&id) {
            Some(e) => f(e),
            None => Response::Error {
                code: error_code::NO_SUCH_ELECTION,
                message: format!("no election {id}"),
            },
        }
    }

    /// Gracefully shuts down every hosted election, surfacing the
    /// first failure.
    ///
    /// # Errors
    ///
    /// The first [`ServeError`] any election reported.
    pub fn shutdown_all(&self) -> Result<(), ServeError> {
        let mut map = self.elections.lock().expect("elections lock");
        let mut first = None;
        for (_, election) in map.drain() {
            if let Err(e) = election.shutdown() {
                first.get_or_insert(e);
            }
        }
        first.map_or(Ok(()), Err)
    }
}

fn wire_tally(snap: &crate::election::EpochSnapshot) -> WireTally {
    WireTally {
        epoch: snap.epoch,
        n: snap.tally.n,
        tallied: snap.tally.tallied,
        discarded: snap.tally.discarded,
        sink_count: snap.tally.sink_count,
        max_weight: snap.tally.max_weight,
        mean: snap.tally.mean,
        variance: snap.tally.variance,
        p_correct: snap.tally.p_correct,
        digest: snap.tally.digest,
    }
}

fn identity_code(err: &IdentityError) -> u8 {
    match err {
        IdentityError::Io { .. } | IdentityError::Corrupt { .. } => error_code::INTERNAL,
        _ => error_code::IDENTITY,
    }
}

/// An in-process client that still round-trips every message through
/// the binary wire codec — the loopback transport of the CLI and the
/// conformance checks.
#[derive(Debug)]
pub struct LoopbackClient<'a> {
    host: &'a Host,
}

impl<'a> LoopbackClient<'a> {
    /// A loopback client for `host`.
    #[must_use]
    pub fn new(host: &'a Host) -> Self {
        LoopbackClient { host }
    }

    /// Encodes `request`, decodes it, dispatches it, and round-trips
    /// the response — byte-identical to one socket exchange.
    ///
    /// # Errors
    ///
    /// [`WireError`] if either direction fails to round-trip (a codec
    /// bug, which the conformance suite would flag).
    pub fn call(&self, request: &Request) -> Result<Response, WireError> {
        let mut frame = Vec::new();
        let mut payload = Vec::new();
        request.encode(&mut payload);
        write_frame(&mut frame, &payload)?;
        let echoed = read_frame(&mut frame.as_slice())?.ok_or(WireError::Truncated)?;
        let decoded = Request::decode(&echoed)?;
        let response = self.host.handle(&decoded);
        let mut back = Vec::new();
        let mut resp_payload = Vec::new();
        response.encode(&mut resp_payload);
        write_frame(&mut back, &resp_payload)?;
        let got = read_frame(&mut back.as_slice())?.ok_or(WireError::Truncated)?;
        Response::decode(&got)
    }
}

/// The process-wide SIGTERM latch used by [`install_sigterm_flag`].
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Installs a SIGTERM handler that sets (and returns) a process-wide
/// stop flag, for use as [`serve_unix`]'s stop signal. The handler
/// only stores to an atomic — async-signal-safe — and the accept loop
/// does the actual draining. On non-Unix targets the flag is returned
/// uninstalled (nothing will set it).
pub fn install_sigterm_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" fn on_sigterm(_: i32) {
            SIGTERM.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM_NO: i32 = 15;
        // SAFETY: installs an async-signal-safe handler (a single
        // atomic store) for SIGTERM via the C `signal` entry point.
        unsafe {
            signal(SIGTERM_NO, on_sigterm as *const () as usize);
        }
    }
    &SIGTERM
}

/// Serves `host` over a Unix domain socket at `path` until `stop` goes
/// true (SIGTERM, or a client `Shutdown` request). Connections are
/// handled sequentially — this is an operational endpoint, not a
/// high-fanout gateway; the ingest hot path stays in-process.
///
/// Returns after the listener closes; the caller decides when to run
/// [`Host::shutdown_all`].
///
/// # Errors
///
/// Socket setup failures. Per-connection protocol errors terminate
/// that connection only.
#[cfg(unix)]
pub fn serve_unix(
    host: &Host,
    path: &std::path::Path,
    stop: &AtomicBool,
) -> Result<(), std::io::Error> {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(Duration::from_millis(100)))?;
                serve_connection(host, stream, stop);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Handles one connection: frames in, frames out, until the peer hangs
/// up, the stop flag trips, or the peer asks for shutdown.
#[cfg(unix)]
fn serve_connection(host: &Host, mut stream: impl Read + Write, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame_patient(&mut stream, stop) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(request) => {
                let r = host.handle(&request);
                if matches!(request, Request::Shutdown) {
                    stop.store(true, Ordering::SeqCst);
                }
                r
            }
            Err(e) => Response::Error {
                code: error_code::INTERNAL,
                message: e.to_string(),
            },
        };
        let mut out = Vec::new();
        response.encode(&mut out);
        if write_frame(&mut stream, &out).is_err() {
            return;
        }
        if matches!(response, Response::Bye) {
            return;
        }
    }
}

/// Like [`read_frame`], but tolerates read timeouts *between* frames
/// (checking the stop flag) while treating a timeout *inside* a frame
/// as fatal truncation. Keeps idle connections responsive to SIGTERM.
#[cfg(unix)]
fn read_frame_patient(
    stream: &mut impl Read,
    stop: &AtomicBool,
) -> Result<Option<Vec<u8>>, WireError> {
    use crate::wire::FRAME_HEADER_LEN;

    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match stream.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(k) => got += k,
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    // Header complete: delegate the rest to the strict reader by
    // re-assembling a chained stream.
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let stored = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > crate::wire::MAX_WIRE_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut at = 0;
    while at < payload.len() {
        match stream.read(&mut payload[at..]) {
            Ok(0) => return Err(WireError::Truncated),
            Ok(k) => at += k,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let computed = ld_store::crc::crc32(&payload);
    if computed != stored {
        return Err(WireError::Crc { stored, computed });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_live::Update;

    fn tiny_host() -> Host {
        let host = Host::new();
        let resp = host.handle(&Request::Create {
            election: 1,
            n: 8,
            shards: 3,
            default_p: 0.6,
        });
        assert_eq!(resp, Response::Created { election: 1 });
        host
    }

    #[test]
    fn loopback_drives_a_full_session_through_the_codec() {
        let host = tiny_host();
        let client = LoopbackClient::new(&host);
        let resp = client
            .call(&Request::Register {
                election: 1,
                key: b"alice".to_vec(),
            })
            .expect("register");
        assert_eq!(resp, Response::Registered { id: 0 });
        assert_eq!(
            client
                .call(&Request::Lookup {
                    election: 1,
                    key: b"alice".to_vec(),
                })
                .expect("lookup"),
            Response::Found { id: Some(0) }
        );
        for update in [
            Update::Delegate {
                voter: 1,
                target: 0,
            },
            Update::Delegate {
                voter: 2,
                target: 1,
            },
            Update::Abstain { voter: 5 },
        ] {
            assert_eq!(
                client
                    .call(&Request::Submit {
                        election: 1,
                        update
                    })
                    .expect("submit"),
                Response::Enqueued
            );
        }
        let resp = client.call(&Request::Flush { election: 1 }).expect("flush");
        let Response::Tally(t) = resp else {
            panic!("expected tally, got {resp:?}");
        };
        assert_eq!(t.n, 8);
        assert_eq!(t.discarded, 1, "5 abstained");
        assert_eq!(t.max_weight, 3, "0 carries 0,1,2");
        assert!(t.epoch >= 1);
        // Query re-reads the same published epoch.
        let again = client.call(&Request::Query { election: 1 }).expect("query");
        assert_eq!(again, Response::Tally(t));
        // Unknown election: typed protocol error.
        let missing = client.call(&Request::Query { election: 9 }).expect("call");
        assert!(matches!(
            missing,
            Response::Error {
                code: error_code::NO_SUCH_ELECTION,
                ..
            }
        ));
        host.shutdown_all().expect("shutdown");
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_and_shuts_down() {
        let dir = std::env::temp_dir().join(format!("ld-serve-sock-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        let sock = dir.join("serve.sock");
        let host = std::sync::Arc::new(tiny_host());
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let server = {
            let host = std::sync::Arc::clone(&host);
            let stop = std::sync::Arc::clone(&stop);
            let sock = sock.clone();
            std::thread::spawn(move || serve_unix(&host, &sock, &stop))
        };
        // Wait for the socket to appear.
        for _ in 0..200 {
            if sock.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut conn = std::os::unix::net::UnixStream::connect(&sock).expect("connect");
        let call = |conn: &mut std::os::unix::net::UnixStream, req: &Request| -> Response {
            let mut payload = Vec::new();
            req.encode(&mut payload);
            write_frame(conn, &payload).expect("write");
            let frame = read_frame(conn).expect("read").expect("frame");
            Response::decode(&frame).expect("decode")
        };
        assert_eq!(
            call(
                &mut conn,
                &Request::Register {
                    election: 1,
                    key: b"bob".to_vec(),
                }
            ),
            Response::Registered { id: 0 }
        );
        assert_eq!(
            call(
                &mut conn,
                &Request::Submit {
                    election: 1,
                    update: Update::Delegate {
                        voter: 1,
                        target: 0
                    },
                }
            ),
            Response::Enqueued
        );
        let Response::Tally(t) = call(&mut conn, &Request::Flush { election: 1 }) else {
            panic!("expected tally");
        };
        assert_eq!(t.max_weight, 2);
        assert_eq!(call(&mut conn, &Request::Shutdown), Response::Bye);
        server.join().expect("join").expect("serve ok");
        assert!(stop.load(Ordering::SeqCst), "shutdown tripped the flag");
        host.shutdown_all().expect("shutdown");
    }
}
