//! Property tests for the identity layer: arbitrary interleavings of
//! registrations, duplicate attempts, and lookups must keep the
//! in-memory map, the durable log, and a model `HashMap` in exact
//! agreement — and a reopen of the log must reproduce the assignment
//! byte for byte. Failures shrink to the minimal operation sequence.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ld_serve::identity::{IdentityLog, IDENTITY_FILE};
use ld_serve::{IdentityError, IdentityMap, MAX_KEY_LEN};
use proptest::collection::vec;
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ld-serve-idprop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Op encoding: key index into a small universe (forcing duplicate
/// collisions), key length, and whether this step registers or only
/// looks up.
fn key(idx: u64, len: usize) -> Vec<u8> {
    let mut k = format!("key-{idx}-").into_bytes();
    while k.len() < len.clamp(1, MAX_KEY_LEN) {
        k.push(b'a' + (idx % 26) as u8);
    }
    k.truncate(len.clamp(1, MAX_KEY_LEN));
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The durable log agrees with the in-memory map and a model map
    /// under any interleaving, and replay reproduces the assignment.
    #[test]
    fn log_map_and_model_agree_under_interleavings(
        ops in vec((0u64..24, 1usize..=MAX_KEY_LEN, 0u8..4), 1..60),
        capacity in 1u32..40,
    ) {
        let dir = scratch();
        let path = dir.join(IDENTITY_FILE);
        let mut log = IdentityLog::open(&path, capacity).expect("open log");
        let mut map = IdentityMap::with_capacity(capacity);
        let mut model: HashMap<Vec<u8>, u32> = HashMap::new();
        for &(idx, len, action) in &ops {
            let k = key(idx, len);
            if action == 0 {
                // Lookup-only step: all three views agree.
                prop_assert_eq!(log.map().lookup(&k), map.lookup(&k));
                prop_assert_eq!(map.lookup(&k), model.get(&k).copied());
                continue;
            }
            let from_log = log.register(&k);
            let from_map = map.register(&k);
            prop_assert_eq!(&from_log, &from_map, "log and map disagree");
            match from_log {
                Ok(id) => {
                    prop_assert_eq!(id as usize, model.len(), "ids are dense");
                    prop_assert!(model.insert(k.clone(), id).is_none());
                    prop_assert_eq!(log.map().key_of(id), Some(&k[..]));
                }
                Err(IdentityError::Duplicate { id }) => {
                    prop_assert_eq!(model.get(&k).copied(), Some(id));
                }
                Err(IdentityError::Full { capacity: c }) => {
                    prop_assert_eq!(c, capacity);
                    prop_assert_eq!(model.len() as u32, capacity);
                }
                Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
            }
        }
        // A reopen replays to the identical assignment.
        drop(log);
        let reopened = IdentityLog::open(&path, capacity).expect("reopen log");
        prop_assert_eq!(reopened.map().len() as usize, model.len());
        for (k, &id) in &model {
            prop_assert_eq!(reopened.map().lookup(k), Some(id), "key {:?}", k);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Round-trip: any batch of distinct keys registers to ids
    /// `0..k` in order, and every id resolves back to its exact key.
    #[test]
    fn distinct_keys_round_trip_in_registration_order(
        lens in vec(1usize..=MAX_KEY_LEN, 1..50),
    ) {
        let mut map = IdentityMap::with_capacity(lens.len() as u32);
        // First byte is unique, so truncation to any length keeps the
        // keys distinct.
        let keys: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let mut k = vec![i as u8];
                k.extend_from_slice(&key(1000 + i as u64, len));
                k.truncate(len);
                k
            })
            .collect();
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(map.register(k), Ok(i as u32));
        }
        for (i, k) in keys.iter().enumerate() {
            prop_assert_eq!(map.lookup(k), Some(i as u32));
            prop_assert_eq!(map.key_of(i as u32), Some(&k[..]));
        }
        prop_assert_eq!(
            map.register(&keys[0]),
            Err(IdentityError::Duplicate { id: 0 })
        );
    }
}
