//! End-to-end service conformance: the sharded, batched, epoch-published
//! service must be observationally identical to one `LiveEngine`
//! applying the same stream — including across graceful shutdowns and
//! abrupt kills with WAL-backed recovery.

use std::path::PathBuf;
use std::time::Duration;

use ld_core::delegation::Action;
use ld_core::tally::TieBreak;
use ld_live::{LiveEngine, Update};
use ld_serve::{Election, ElectionConfig};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ld-serve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic mixed-op stream: delegations (some forming chains
/// and attempted cycles), direct votes, abstentions, competence churn,
/// and a sprinkle of invalid updates the sequencer must reject.
fn stream(n: usize, ops: usize, seed: u64) -> Vec<Update> {
    (0..ops)
        .map(|k| {
            let r = splitmix64(seed ^ (k as u64).wrapping_mul(0x9E37_79B9));
            let voter = (r >> 8) as usize % n;
            match r % 100 {
                0..=54 => Update::Delegate {
                    voter,
                    // Mostly near neighbours, so chains and cycle
                    // attempts actually happen; occasionally out of
                    // range to exercise rejection.
                    target: if r.is_multiple_of(97) {
                        n + 3
                    } else {
                        (voter + 1 + (r >> 32) as usize % 7) % n
                    },
                },
                55..=69 => Update::Vote { voter },
                70..=79 => Update::Abstain { voter },
                80..=97 => Update::Competence {
                    voter,
                    p: ((r >> 16) % 1000) as f64 / 1000.0,
                },
                _ => Update::Competence {
                    voter,
                    p: 1.5, // invalid: must be rejected
                },
            }
        })
        .collect()
}

/// Streams through a single reference engine, returning the engine and
/// the accepted updates in acceptance order.
fn oracle(n: usize, updates: &[Update]) -> (LiveEngine, Vec<Update>) {
    let mut engine = LiveEngine::new(vec![Action::Vote; n], vec![0.5; n]).expect("oracle engine");
    let mut accepted = Vec::new();
    for &u in updates {
        if engine.apply(u).is_ok() {
            accepted.push(u);
        }
    }
    (engine, accepted)
}

fn assert_matches_engine(snap: &ld_serve::EpochSnapshot, engine: &LiveEngine, what: &str) {
    let want: Vec<u64> = engine.weights().iter().map(|&w| w as u64).collect();
    assert_eq!(snap.tally.weights, want, "{what}: weights");
    assert_eq!(
        snap.tally.discarded,
        engine.discarded() as u64,
        "{what}: discarded"
    );
    assert_eq!(
        snap.tally.tallied,
        engine.tallied() as u64,
        "{what}: tallied"
    );
    assert_eq!(
        snap.tally.sink_count,
        engine.sink_count() as u64,
        "{what}: sinks"
    );
    let p = engine.decision_probability_normal(TieBreak::CoinFlip);
    assert!(
        (snap.tally.p_correct - p).abs() < 1e-9,
        "{what}: p_correct {} vs {p}",
        snap.tally.p_correct
    );
}

#[test]
fn sharded_service_matches_the_single_engine_oracle() {
    let n = 97;
    let updates = stream(n, 1500, 0xC0FFEE);
    let (engine, accepted) = oracle(n, &updates);
    for shards in [1u32, 2, 8] {
        let mut cfg = ElectionConfig::new(n as u32);
        cfg.shards = shards;
        cfg.window = Duration::from_micros(200);
        cfg.publish_every = 4;
        let election = Election::create(&cfg).expect("create");
        for &u in &updates {
            election.submit(u).expect("submit");
        }
        let snap = election.flush().expect("flush");
        assert_eq!(
            snap.applied,
            accepted.len() as u64,
            "{shards} shards: applied"
        );
        assert_eq!(
            snap.rejected,
            (updates.len() - accepted.len()) as u64,
            "{shards} shards: rejected"
        );
        assert_matches_engine(&snap, &engine, &format!("{shards} shards"));
        // A second flush republishes the same combinatorial state.
        let again = election.flush().expect("reflush");
        assert_eq!(
            again.tally.digest, snap.tally.digest,
            "{shards} shards: digest"
        );
        // Every enqueued op got a latency sample by now.
        assert_eq!(
            election.latencies_ns().len(),
            updates.len(),
            "{shards} shards: latency samples"
        );
        election.shutdown().expect("shutdown");
    }
}

#[test]
fn graceful_shutdown_loses_no_accepted_op() {
    let n = 64;
    let updates = stream(n, 700, 0xBEEF);
    let (engine, accepted) = oracle(n, &updates);
    let mut cfg = ElectionConfig::new(n as u32);
    cfg.shards = 4;
    cfg.publish_every = 0; // publish only at shutdown: the drain must carry everything
    let election = Election::create(&cfg).expect("create");
    for &u in &updates {
        election.submit(u).expect("submit");
    }
    // No flush: shutdown itself must drain the queue, sync, publish.
    let snap = election.shutdown().expect("shutdown");
    assert_eq!(
        snap.applied + snap.rejected,
        updates.len() as u64,
        "every enqueued op was sequenced"
    );
    assert_eq!(snap.applied, accepted.len() as u64);
    assert_matches_engine(&snap, &engine, "graceful shutdown");
}

#[test]
fn killed_service_recovers_the_committed_epoch_bit_identically() {
    let n = 80;
    let dir = scratch("kill-recover");
    let phase1 = stream(n, 400, 0xA11CE);
    let lost = stream(n, 200, 0xDEAD); // submitted after the commit, then killed
    let phase2 = stream(n, 150, 0xF00D);

    let mut cfg = ElectionConfig::new(n as u32);
    cfg.shards = 4;
    cfg.publish_every = 0; // epochs commit only on flush: the cut is exact
    cfg.dir = Some(dir.clone());
    let election = Election::create(&cfg).expect("create durable");
    assert_eq!(election.register(b"auditor"), Ok(0));
    for &u in &phase1 {
        election.submit(u).expect("submit");
    }
    let committed = election.flush().expect("flush");
    for &u in &lost {
        election.submit(u).expect("submit lost");
    }
    election.kill(); // no barrier, no commit: crash semantics

    let (revived, report) = Election::recover(&dir, &cfg).expect("recover");
    assert_eq!(
        report.epoch, committed.epoch,
        "resumes at the committed epoch"
    );
    assert_eq!(
        report.digest, committed.tally.digest,
        "digest proves bit-identity"
    );
    assert_eq!(report.applied, committed.applied);
    assert_eq!(report.shard_records, committed.shard_records);
    let resnap = revived.snapshot();
    assert_eq!(
        resnap.tally, committed.tally,
        "full tally survives the crash"
    );
    assert_eq!(revived.lookup(b"auditor"), Some(0), "identity survives");
    assert_eq!(
        revived.register(b"auditor"),
        Err(ld_serve::IdentityError::Duplicate { id: 0 })
    );

    // The revived service keeps serving: phase 2 lands on the recovered
    // state exactly as it would have on a never-crashed service that
    // had only seen phase 1.
    for &u in &phase2 {
        revived.submit(u).expect("submit phase2");
    }
    let fin = revived.flush().expect("flush phase2");
    let mut replay: Vec<Update> = phase1.clone();
    replay.extend_from_slice(&phase2);
    let (engine, _) = oracle(n, &replay);
    assert_matches_engine(&fin, &engine, "post-recovery");
    revived.shutdown().expect("shutdown");
}

#[test]
fn midrun_kill_recovers_some_accepted_prefix_exactly() {
    let n = 50;
    let dir = scratch("midrun-kill");
    let updates = stream(n, 600, 0x5EED);
    let (_, accepted) = oracle(n, &updates);

    let mut cfg = ElectionConfig::new(n as u32);
    cfg.shards = 3;
    cfg.window = Duration::from_micros(100);
    cfg.publish_every = 2; // commit often so the kill lands mid-history
    cfg.dir = Some(dir.clone());
    let election = Election::create(&cfg).expect("create durable");
    for &u in &updates {
        election.submit(u).expect("submit");
    }
    election.kill();

    // Whatever epoch the kill left committed, it must be an exact
    // prefix of the deterministic acceptance order.
    let (revived, report) = Election::recover(&dir, &cfg).expect("recover");
    let k = usize::try_from(report.applied).expect("fits");
    assert!(
        k <= accepted.len(),
        "committed prefix within accepted stream"
    );
    let mut prefix_engine =
        LiveEngine::new(vec![Action::Vote; n], vec![0.5; n]).expect("prefix engine");
    let report2 = prefix_engine.apply_batch(&accepted[..k]);
    assert!(
        report2.rejected.is_empty(),
        "accepted prefix replays cleanly"
    );
    assert_matches_engine(&revived.snapshot(), &prefix_engine, "mid-run recovery");
    revived.shutdown().expect("shutdown");
}

#[test]
fn misrouting_one_voter_is_detected_by_the_oracle_comparison() {
    let n = 40;
    let updates = stream(n, 500, 0x0DDBA11);
    let (engine, _) = oracle(n, &updates);
    // Pick a voter whose final action is a real delegation — the case
    // where routing matters.
    let delegator = engine
        .actions()
        .iter()
        .enumerate()
        .find_map(|(v, a)| match a {
            Action::Delegate(t) if *t != v => Some(v as u32),
            _ => None,
        })
        .expect("stream produces a delegation");
    let mut cfg = ElectionConfig::new(n as u32);
    cfg.shards = 4;
    cfg.misroute = Some(delegator);
    let election = Election::create(&cfg).expect("create");
    for &u in &updates {
        election.submit(u).expect("submit");
    }
    let snap = election.flush().expect("flush");
    let want: Vec<u64> = engine.weights().iter().map(|&w| w as u64).collect();
    assert_ne!(
        snap.tally.weights, want,
        "a misrouted delegator must corrupt the merged tally"
    );
    election.shutdown().expect("shutdown");
}
