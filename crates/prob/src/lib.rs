//! # `ld-prob` — probability substrate for liquid democracy
//!
//! The analysis in *When is Liquid Democracy Possible?* (PODC 2025) rests on
//! a small toolbox of probabilistic machinery, all of which this crate
//! implements from scratch:
//!
//! * [`normal`] — `erf`, the standard normal CDF, and the normal
//!   approximation of Bernoulli sums (Lemma 4 in the paper, quoting Kahng
//!   et al.), used by Lemma 3's anti-concentration argument.
//! * [`poisson_binomial`] — the exact distribution of a sum of independent,
//!   non-identical Bernoulli variables, including the **weighted** variant
//!   needed to evaluate weighted-majority outcomes exactly. This is the
//!   engine behind exact computation of the probability of a correct
//!   decision `P^M(G)` given a delegation graph.
//! * [`bounds`] — Chernoff and Hoeffding (the paper's Theorem 1) tail
//!   bounds, Lemma 3's erf-based outcome-flip bound, and Lemma 5/6's
//!   `√(n^{1+ε}·w)` concentration radius.
//! * [`recycle`] — **recycle sampling** (Definition 6): the paper's novel
//!   model of positively-correlated Bernoulli variables that captures vote
//!   delegation, with realization sampling and the deviation measurements
//!   behind Lemmas 1 and 2.
//! * [`stats`] — Welford streaming moments, binomial confidence intervals,
//!   empirical tail frequencies, and log–log regression for extracting
//!   convergence rates from finite-size sweeps.
//! * [`rng`] — deterministic seed-splitting so that parallel Monte Carlo
//!   runs are exactly reproducible.
//! * [`coins`] — bit-packed Bernoulli coin kernels (64 voters per `u64`
//!   word, bit-plane thresholding with geometric skips for skewed `p`)
//!   plus the scalar oracle they are pinned against.
//!
//! # Examples
//!
//! ```
//! use ld_prob::poisson_binomial::PoissonBinomial;
//!
//! // Three voters with competencies 0.9, 0.6, 0.55: majority-correct probability.
//! let pb = PoissonBinomial::new(&[0.9, 0.6, 0.55])?;
//! let p_majority = pb.tail_ge(2);
//! assert!(p_majority > 0.7 && p_majority < 0.95);
//! # Ok::<(), ld_prob::ProbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod bounds;
pub mod coins;
pub mod normal;
pub mod poisson_binomial;
pub mod recycle;
pub mod rng;
pub mod stats;

pub use error::{ProbError, Result};
