//! Bit-packed Bernoulli coin kernels: 64 voters per `u64` word.
//!
//! The Monte-Carlo gain estimator flips one competence coin per voter per
//! trial. Drawn scalar-wise that is one RNG call and one branch per
//! voter; packed, a whole 64-lane word of coins costs a handful of RNG
//! words. This module defines the **packed coin contract** — the exact
//! mapping from an RNG word stream to coin bits — and provides two
//! independent implementations of it:
//!
//! * [`PackedCompetence::draw_packed`] — the fast path: per-lane
//!   thresholds pre-transposed into 32 bit-planes, compared against RNG
//!   words most-significant-plane first with an undecided mask and early
//!   exit (a 64-lane word is fully decided after ~`log2(64) + 2` planes
//!   in expectation), plus a batched geometric-skip path for words whose
//!   lanes share one small probability.
//! * [`draw_scalar_coins`] — the oracle: a scalar per-lane walk over the
//!   same word stream, kept deliberately naive so the packed kernel can
//!   be re-pinned against it bit for bit (see the `packed-tally-oracle`
//!   conformance check and the `packed_coins` proptest suite).
//!
//! ## The contract
//!
//! Voter `i` maps to bit `i % 64` of word `i / 64`; a final *ragged tail
//! word* carries `n % 64` valid lanes and its spare high bits are always
//! zero. Each lane's probability is quantized to `q = round(p · 2³²)`
//! and the coin is `1` iff `U < q` for a 32-bit uniform `U` (so `p = 0`
//! and `p = 1` are exact). Words are processed in increasing order and
//! each consumes RNG words as follows:
//!
//! 1. **Pre-decided** (every valid lane has `q ∈ {0, 2³²}`): zero RNG
//!    words.
//! 2. **Geometric skip** (every valid lane shares one `q` with
//!    `0 < q ≤` [`GEO_MAX_Q`]): one RNG word per *success plus one*,
//!    jumping `⌊ln u / ln(1 − q·2⁻³²)⌋` lanes between set bits.
//! 3. **Threshold planes** (otherwise): one RNG word per plane,
//!    most-significant first, stopping after the plane that decides the
//!    last undecided lane (at most 32). Bit `i` of the plane-`j` RNG
//!    word is bit `31 − j` of lane `i`'s uniform `U`; a lane still
//!    undecided after all 32 planes has `U = q` and the coin is `0`.
//!
//! Seeding is unchanged from the scalar engine: trial `t` draws from
//! `stream_rng(seed, t)`, so packed results are reproducible across any
//! worker count and chunk schedule.

use crate::error::{check_probability, Result};
use rand::RngCore;

/// Number of threshold bit-planes: coin probabilities are quantized to
/// 32 bits (`q = round(p · 2³²)`).
pub const PLANES: usize = 32;

/// Largest shared quantized probability routed to the geometric-skip
/// path: `2²⁸`, i.e. `p ≤ 1/16`. Above this, expected successes per word
/// make plane comparison cheaper than per-success jumps.
pub const GEO_MAX_Q: u64 = 1 << 28;

const Q_ONE: u64 = 1 << 32;

/// Quantizes a probability to the 32-bit threshold used by both the
/// packed kernel and the scalar oracle: `q = round(p · 2³²)`, clamped to
/// `[0, 2³²]`. This rounding is part of the coin contract.
pub fn quantize(p: f64) -> u64 {
    ((p * Q_ONE as f64).round() as u64).min(Q_ONE)
}

/// Converts an RNG word to the uniform `u ∈ (0, 1]` used by the
/// geometric-skip jump. Part of the coin contract: the top 53 bits form
/// the mantissa and the `+1` excludes zero so `ln u` is finite.
fn geo_uniform(r: u64) -> f64 {
    ((r >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// How one 64-lane word of the competence vector is drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WordKind {
    /// Every valid lane is `p ∈ {0, 1}`: no RNG words consumed.
    PreDecided,
    /// All valid lanes share one small `q`: per-success geometric jumps.
    Geometric {
        /// The shared quantized probability.
        q: u64,
        /// Number of valid lanes (the tail word has fewer than 64).
        lanes: u32,
    },
    /// General case: most-significant-first bit-plane thresholding.
    Planes,
}

/// A competency profile transposed into packed per-word coin layouts,
/// built once per instance and reused across every trial and sample.
#[derive(Debug, Clone)]
pub struct PackedCompetence {
    n: usize,
    /// Lanes whose coin is always 1 (`q = 2³²`), per word.
    ones: Vec<u64>,
    /// Lanes decided by threshold comparison (`0 < q < 2³²`), per word.
    active: Vec<u64>,
    /// Word-major threshold planes: `planes[w * 32 + j]` holds bit
    /// `31 − j` of each active lane's quantizer.
    planes: Vec<u64>,
    kinds: Vec<WordKind>,
    /// Test-only mutation hook: start the plane comparison at plane 1,
    /// skipping the most-significant plane (an off-by-one in the
    /// threshold comparison the conformance suite must catch).
    skew: bool,
}

impl PackedCompetence {
    /// Packs a competency vector. Probabilities must be finite and in
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`crate::ProbError::InvalidProbability`] on any out-of-range
    /// entry.
    pub fn new(ps: &[f64]) -> Result<Self> {
        for &p in ps {
            check_probability(p, "packed competence")?;
        }
        let n = ps.len();
        let words = n.div_ceil(64);
        let mut ones = vec![0u64; words];
        let mut active = vec![0u64; words];
        let mut planes = vec![0u64; words * PLANES];
        let mut kinds = Vec::with_capacity(words);
        for w in 0..words {
            let base = w * 64;
            let lanes = (n - base).min(64);
            let qs: Vec<u64> = (0..lanes).map(|l| quantize(ps[base + l])).collect();
            for (l, &q) in qs.iter().enumerate() {
                if q == Q_ONE {
                    ones[w] |= 1u64 << l;
                } else if q > 0 {
                    active[w] |= 1u64 << l;
                    for j in 0..PLANES {
                        planes[w * PLANES + j] |= ((q >> (31 - j)) & 1) << l;
                    }
                }
            }
            let kind = if active[w] == 0 {
                WordKind::PreDecided
            } else if qs.iter().all(|&q| q == qs[0]) && qs[0] <= GEO_MAX_Q {
                // All valid lanes share one small q (so none is a
                // pre-decided 0/1 lane and the active mask is the full
                // valid-lane prefix).
                WordKind::Geometric {
                    q: qs[0],
                    lanes: lanes as u32,
                }
            } else {
                WordKind::Planes
            };
            kinds.push(kind);
        }
        Ok(PackedCompetence {
            n,
            ones,
            active,
            planes,
            kinds,
            skew: false,
        })
    }

    /// Number of voters (valid lanes).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of 64-lane words, including the ragged tail word.
    pub fn words(&self) -> usize {
        self.ones.len()
    }

    /// Arms the `packed-threshold` mutation: the plane comparison starts
    /// at plane 1 instead of plane 0, dropping the most-significant
    /// threshold bit. Deliberately wrong — exists so the conformance
    /// suite can prove the scalar-oracle identity check has teeth.
    pub fn skew_threshold_for_tests(&mut self) {
        self.skew = true;
    }

    /// Draws one packed competence vector: bit `i % 64` of
    /// `out[i / 64]` is voter `i`'s coin. Tail bits above `n` are zero.
    /// `out` is resized to [`PackedCompetence::words`].
    pub fn draw_packed(&self, rng: &mut dyn RngCore, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.words(), 0);
        let start = usize::from(self.skew);
        for (w, kind) in self.kinds.iter().enumerate() {
            out[w] = match *kind {
                WordKind::PreDecided => self.ones[w],
                WordKind::Geometric { q, lanes } => draw_geometric_word(q, lanes, rng),
                WordKind::Planes => {
                    let mut x = self.ones[w];
                    let mut m = self.active[w];
                    let base = w * PLANES;
                    for j in start..PLANES {
                        let r = rng.next_u64();
                        let b = self.planes[base + j];
                        // Lane decided 1 where the quantizer bit exceeds
                        // the uniform bit; decided either way wherever
                        // the bits differ.
                        x |= m & b & !r;
                        m &= !(b ^ r);
                        if m == 0 {
                            break;
                        }
                    }
                    // Survivors have U = q: strictly-less fails, coin 0.
                    x
                }
            };
        }
    }
}

/// Draws one geometric-skip word: each of the `lanes` low bits is an
/// independent Bernoulli(`q · 2⁻³²`), materialized success-by-success.
fn draw_geometric_word(q: u64, lanes: u32, rng: &mut dyn RngCore) -> u64 {
    let p = q as f64 / Q_ONE as f64;
    let ln_fail = (1.0 - p).ln();
    let mut x = 0u64;
    let mut idx = 0u64;
    loop {
        let u = geo_uniform(rng.next_u64());
        // Failures before the next success; saturate on tiny u / tiny p.
        let jump = (u.ln() / ln_fail).floor();
        idx = if jump >= u64::MAX as f64 {
            u64::MAX
        } else {
            idx.saturating_add(jump as u64)
        };
        if idx >= u64::from(lanes) {
            return x;
        }
        x |= 1u64 << idx;
        idx += 1;
    }
}

/// The scalar oracle: draws the same coins as
/// [`PackedCompetence::draw_packed`] from the same RNG stream, one lane
/// at a time, sharing nothing with the packed kernel but the contract
/// constants. `out` is resized to `ps.len()`.
///
/// # Errors
///
/// [`crate::ProbError::InvalidProbability`] on any out-of-range entry.
pub fn draw_scalar_coins(ps: &[f64], rng: &mut dyn RngCore, out: &mut Vec<bool>) -> Result<()> {
    for &p in ps {
        check_probability(p, "scalar coin oracle")?;
    }
    let n = ps.len();
    out.clear();
    out.resize(n, false);
    let mut w = 0usize;
    while w * 64 < n {
        let base = w * 64;
        let lanes = (n - base).min(64);
        let qs: Vec<u64> = (0..lanes).map(|l| quantize(ps[base + l])).collect();
        let any_active = qs.iter().any(|&q| q > 0 && q < Q_ONE);
        if !any_active {
            for (l, &q) in qs.iter().enumerate() {
                out[base + l] = q == Q_ONE;
            }
        } else if qs.iter().all(|&q| q == qs[0]) && qs[0] <= GEO_MAX_Q {
            // Geometric path: walk successes exactly as the packed
            // kernel does, lane indices instead of bit positions.
            let p = qs[0] as f64 / Q_ONE as f64;
            let ln_fail = (1.0 - p).ln();
            let mut idx = 0u64;
            loop {
                let u = geo_uniform(rng.next_u64());
                let jump = (u.ln() / ln_fail).floor();
                idx = if jump >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    idx.saturating_add(jump as u64)
                };
                if idx >= lanes as u64 {
                    break;
                }
                out[base + idx as usize] = true;
                idx += 1;
            }
        } else {
            // Plane path: assemble each lane's uniform bit by bit,
            // most-significant first, until it differs from the
            // quantizer or the planes run out.
            let mut decided = vec![false; lanes];
            for (l, &q) in qs.iter().enumerate() {
                if q == 0 || q == Q_ONE {
                    decided[l] = true;
                    out[base + l] = q == Q_ONE;
                }
            }
            for j in 0..PLANES {
                if decided.iter().all(|&d| d) {
                    break;
                }
                let r = rng.next_u64();
                for (l, &q) in qs.iter().enumerate() {
                    if decided[l] {
                        continue;
                    }
                    let q_bit = (q >> (31 - j)) & 1;
                    let u_bit = (r >> l) & 1;
                    if u_bit != q_bit {
                        // u_bit < q_bit means U < q at the first
                        // differing (most significant) bit: coin is 1.
                        out[base + l] = u_bit < q_bit;
                        decided[l] = true;
                    }
                }
            }
            // Undecided lanes have U = q: the strict comparison fails.
        }
        w += 1;
    }
    Ok(())
}

/// Reads voter `i`'s coin out of a packed word vector.
pub fn packed_bit(coins: &[u64], i: usize) -> bool {
    (coins[i / 64] >> (i % 64)) & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;
    use rand::Rng;

    fn packed_vs_scalar(ps: &[f64], seed: u64) {
        let packed = PackedCompetence::new(ps).unwrap();
        for t in 0..6u64 {
            let mut rng_a = stream_rng(seed, t);
            let mut rng_b = stream_rng(seed, t);
            let mut words = Vec::new();
            let mut bools = Vec::new();
            packed.draw_packed(&mut rng_a, &mut words);
            draw_scalar_coins(ps, &mut rng_b, &mut bools).unwrap();
            for (i, &b) in bools.iter().enumerate() {
                assert_eq!(packed_bit(&words, i), b, "voter {i}, trial {t}");
            }
            for i in ps.len()..words.len() * 64 {
                assert!(!packed_bit(&words, i), "tail bit {i} set");
            }
            // Both paths must consume the same number of RNG words.
            assert_eq!(
                rng_a.next_u64(),
                rng_b.next_u64(),
                "stream desync, trial {t}"
            );
        }
    }

    #[test]
    fn quantize_pins_the_endpoints() {
        assert_eq!(quantize(0.0), 0);
        assert_eq!(quantize(1.0), Q_ONE);
        assert_eq!(quantize(0.5), 1 << 31);
        assert!(quantize(0.3) > 0 && quantize(0.3) < Q_ONE);
    }

    #[test]
    fn packed_matches_scalar_on_mixed_profiles() {
        let mut rng = stream_rng(0xC015, 0);
        for n in [1usize, 7, 63, 64, 65, 128, 130, 257] {
            let ps: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..=1.0)).collect();
            packed_vs_scalar(&ps, 0xFEED ^ n as u64);
        }
    }

    #[test]
    fn packed_matches_scalar_with_exact_zero_one_lanes() {
        let mut ps = vec![0.5; 100];
        for i in (0..100).step_by(3) {
            ps[i] = if i % 2 == 0 { 1.0 } else { 0.0 };
        }
        packed_vs_scalar(&ps, 42);
    }

    #[test]
    fn pre_decided_words_consume_no_entropy() {
        let ps = [1.0, 0.0, 1.0, 1.0, 0.0];
        let packed = PackedCompetence::new(&ps).unwrap();
        let mut rng_a = stream_rng(9, 0);
        let mut rng_b = stream_rng(9, 0);
        let mut words = Vec::new();
        packed.draw_packed(&mut rng_a, &mut words);
        assert_eq!(words, vec![0b01101]);
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "consumed entropy");
    }

    #[test]
    fn geometric_path_is_taken_and_matches_scalar() {
        // Uniform small p routes every word through the skip path.
        let ps = vec![0.01; 150];
        let packed = PackedCompetence::new(&ps).unwrap();
        assert!(packed
            .kinds
            .iter()
            .all(|k| matches!(k, WordKind::Geometric { .. })));
        packed_vs_scalar(&ps, 7);
        // Mixed q (one lane differs) falls back to planes.
        let mut mixed = vec![0.01; 70];
        mixed[3] = 0.02;
        let packed = PackedCompetence::new(&mixed).unwrap();
        assert_eq!(packed.kinds[0], WordKind::Planes);
        packed_vs_scalar(&mixed, 8);
    }

    #[test]
    fn coin_frequencies_track_probabilities() {
        let ps = [0.05, 0.3, 0.5, 0.8, 0.97];
        let packed = PackedCompetence::new(&ps).unwrap();
        let mut rng = stream_rng(1234, 0);
        let mut counts = [0u32; 5];
        let mut words = Vec::new();
        let draws = 20_000;
        for _ in 0..draws {
            packed.draw_packed(&mut rng, &mut words);
            for (i, c) in counts.iter_mut().enumerate() {
                *c += u32::from(packed_bit(&words, i));
            }
        }
        for (i, &p) in ps.iter().enumerate() {
            let freq = f64::from(counts[i]) / f64::from(draws);
            assert!((freq - p).abs() < 0.02, "voter {i}: freq {freq} vs p {p}");
        }
    }

    #[test]
    fn skewed_threshold_diverges_from_the_oracle() {
        let ps = vec![0.5; 64];
        let mut packed = PackedCompetence::new(&ps).unwrap();
        packed.skew_threshold_for_tests();
        let mut rng_a = stream_rng(3, 0);
        let mut rng_b = stream_rng(3, 0);
        let mut words = Vec::new();
        let mut bools = Vec::new();
        packed.draw_packed(&mut rng_a, &mut words);
        draw_scalar_coins(&ps, &mut rng_b, &mut bools).unwrap();
        let mismatches = (0..64)
            .filter(|&i| packed_bit(&words, i) != bools[i])
            .count();
        assert!(mismatches > 0, "the skew mutation must be observable");
    }

    #[test]
    fn rejects_invalid_probabilities() {
        assert!(PackedCompetence::new(&[0.5, 1.2]).is_err());
        assert!(PackedCompetence::new(&[f64::NAN]).is_err());
        let mut out = Vec::new();
        let mut rng = stream_rng(1, 0);
        assert!(draw_scalar_coins(&[-0.1], &mut rng, &mut out).is_err());
    }
}
