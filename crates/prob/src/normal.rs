//! The error function, the standard normal distribution, and the normal
//! approximation of Bernoulli sums (the paper's Lemma 4).
//!
//! The standard library provides no special functions and no special-function
//! crate is in the approved offline set, so `erf` is implemented here with
//! the Abramowitz–Stegun rational approximation 7.1.26 (max absolute error
//! `1.5e-7`, ample for the paper's asymptotic arguments).

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{-t²} dt`.
///
/// Implemented with Abramowitz & Stegun formula 7.1.26; absolute error is
/// below `1.5e-7` everywhere. Lemma 3 of the paper bounds the probability
/// that delegation flips the voting outcome by `erf(n^{-ε}/√2)`, which this
/// function evaluates.
///
/// # Examples
///
/// ```
/// use ld_prob::normal::erf;
/// assert!((erf(0.0)).abs() < 1e-6);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    // erf is odd; work on |x| and restore the sign.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    let y = 1.0 - poly * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// The standard normal cumulative distribution function `Φ(z)`.
///
/// # Examples
///
/// ```
/// use ld_prob::normal::std_normal_cdf;
/// assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!(std_normal_cdf(3.0) > 0.998);
/// ```
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// The standard normal density `φ(z)`.
pub fn std_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// A normal distribution `N(mean, variance)` summarizing a Bernoulli sum.
///
/// Lemma 4 of the paper (quoted from Kahng et al.) states that a sum of
/// independent Bernoulli variables with parameters bounded in `[β, 1-β]`
/// converges to `N(Σ E[Y_k], Σ Var[Y_k])`. [`NormalApprox::of_bernoulli_sum`]
/// builds exactly that approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalApprox {
    /// Mean of the approximating normal.
    pub mean: f64,
    /// Variance of the approximating normal (must be ≥ 0).
    pub variance: f64,
}

impl NormalApprox {
    /// Creates the normal approximation of `Σ Bernoulli(p_i)` per Lemma 4:
    /// mean `Σ p_i`, variance `Σ p_i (1 - p_i)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ld_prob::normal::NormalApprox;
    /// let approx = NormalApprox::of_bernoulli_sum(&[0.5, 0.5, 0.5, 0.5]);
    /// assert_eq!(approx.mean, 2.0);
    /// assert_eq!(approx.variance, 1.0);
    /// ```
    pub fn of_bernoulli_sum(ps: &[f64]) -> Self {
        let mean = ps.iter().sum();
        let variance = ps.iter().map(|p| p * (1.0 - p)).sum();
        NormalApprox { mean, variance }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// `P[X ≤ x]` under the approximation. For zero variance this is a step
    /// function at the mean.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.variance <= 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        std_normal_cdf((x - self.mean) / self.std_dev())
    }

    /// `P[a ≤ X ≤ b]` under the approximation.
    pub fn prob_in(&self, a: f64, b: f64) -> f64 {
        if b < a {
            return 0.0;
        }
        (self.cdf(b) - self.cdf(a)).max(0.0)
    }

    /// `P[X > x]` under the approximation.
    pub fn tail_above(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // (x, erf(x)) reference pairs, tolerance 1.5e-7 per A&S 7.1.26.
        let cases = [
            (0.0, 0.0),
            (0.1, 0.1124629160),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (1.5, 0.9661051465),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x}) asymmetric");
        }
    }

    #[test]
    fn erf_is_odd_and_monotone() {
        let xs: Vec<f64> = (-40..=40).map(|i| i as f64 / 10.0).collect();
        for w in xs.windows(2) {
            assert!(erf(w[0]) <= erf(w[1]), "erf not monotone at {}", w[0]);
        }
        for &x in &xs {
            // Exact sign symmetry away from 0; at x = 0 the rational
            // approximation leaves a residual of ~1e-9 on each side.
            assert!((erf(x) + erf(-x)).abs() < 1e-6, "erf not odd at {x}");
        }
    }

    #[test]
    fn erf_limits() {
        assert!((erf(6.0) - 1.0).abs() < 1e-9);
        assert!((erf(-6.0) + 1.0).abs() < 1e-9);
        assert!((erfc(6.0)).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for z in [0.1, 0.7, 1.3, 2.9] {
            let s = std_normal_cdf(z) + std_normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-9, "cdf symmetry broken at {z}");
        }
    }

    #[test]
    fn normal_pdf_integrates_to_one() {
        // Trapezoid rule over [-8, 8].
        let steps = 10_000;
        let h = 16.0 / steps as f64;
        let integral: f64 = (0..=steps)
            .map(|i| {
                let z = -8.0 + i as f64 * h;
                let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
                w * std_normal_pdf(z)
            })
            .sum::<f64>()
            * h;
        assert!((integral - 1.0).abs() < 1e-6, "integral {integral}");
    }

    #[test]
    fn bernoulli_sum_approx_moments() {
        let ps = [0.2, 0.8, 0.5];
        let a = NormalApprox::of_bernoulli_sum(&ps);
        assert!((a.mean - 1.5).abs() < 1e-12);
        assert!((a.variance - (0.16 + 0.16 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_cdf_is_step() {
        let a = NormalApprox {
            mean: 2.0,
            variance: 0.0,
        };
        assert_eq!(a.cdf(1.9), 0.0);
        assert_eq!(a.cdf(2.0), 1.0);
        assert_eq!(a.prob_in(0.0, 1.0), 0.0);
        assert_eq!(a.prob_in(0.0, 3.0), 1.0);
    }

    #[test]
    fn prob_in_empty_interval_is_zero() {
        let a = NormalApprox {
            mean: 0.0,
            variance: 1.0,
        };
        assert_eq!(a.prob_in(1.0, -1.0), 0.0);
    }

    #[test]
    fn direct_vote_majority_approximation_matches_intuition() {
        // 101 voters at p = 0.6: majority correct with probability ≈ 0.98.
        let ps = vec![0.6; 101];
        let a = NormalApprox::of_bernoulli_sum(&ps);
        let p_majority = a.tail_above(50.5);
        assert!(p_majority > 0.95 && p_majority < 1.0, "p = {p_majority}");
    }
}
