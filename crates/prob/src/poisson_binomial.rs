//! Exact distributions of (weighted) sums of independent Bernoulli
//! variables.
//!
//! Direct voting is a sum of independent `Bernoulli(p_i)`; a resolved
//! delegation graph is a **weighted** sum `Σ w_i · Bernoulli(p_i)` over its
//! sinks. Both distributions are computed exactly here by dynamic
//! programming, which lets the simulator evaluate the probability of a
//! correct decision `P^M(G)` without vote-level sampling noise.

use crate::error::{check_probability, ProbError, Result};

/// The exact distribution of `Σ Bernoulli(p_i)` (the Poisson-binomial
/// distribution).
///
/// # Examples
///
/// ```
/// use ld_prob::poisson_binomial::PoissonBinomial;
///
/// let pb = PoissonBinomial::new(&[0.5, 0.5])?;
/// assert!((pb.pmf(1) - 0.5).abs() < 1e-12);
/// assert!((pb.mean() - 1.0).abs() < 1e-12);
/// # Ok::<(), ld_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonBinomial {
    /// `pmf[k] = P[X = k]`, length `n + 1`.
    pmf: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl PoissonBinomial {
    /// Computes the exact distribution by convolution DP in `O(n²)`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidProbability`] if any `p_i` is outside
    /// `[0, 1]` or not finite.
    pub fn new(ps: &[f64]) -> Result<Self> {
        for &p in ps {
            check_probability(p, "Poisson-binomial parameter")?;
        }
        let mut pmf = vec![0.0f64; ps.len() + 1];
        pmf[0] = 1.0;
        for (i, &p) in ps.iter().enumerate() {
            // In-place backward update: after processing i+1 variables the
            // support is 0..=i+1.
            for k in (0..=i + 1).rev() {
                let stay = pmf[k] * (1.0 - p);
                let up = if k > 0 { pmf[k - 1] * p } else { 0.0 };
                pmf[k] = stay + up;
            }
        }
        let mean = ps.iter().sum();
        let variance = ps.iter().map(|p| p * (1.0 - p)).sum();
        Ok(PoissonBinomial {
            pmf,
            mean,
            variance,
        })
    }

    /// Number of summands `n`.
    pub fn n(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `P[X = k]`; zero for `k > n`.
    pub fn pmf(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    /// The full probability mass function as a slice of length `n + 1`.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// `P[X ≥ k]`.
    pub fn tail_ge(&self, k: usize) -> f64 {
        self.pmf.iter().skip(k).sum()
    }

    /// `P[X ≤ k]`.
    pub fn cdf(&self, k: usize) -> f64 {
        self.pmf.iter().take(k.saturating_add(1)).sum()
    }

    /// Exact mean `Σ p_i`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Exact variance `Σ p_i (1 - p_i)`.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Probability that a strict majority of the `n` variables is 1, i.e.
    /// `P[X > n/2]` — the probability that direct voting decides correctly
    /// under the paper's strict-majority rule.
    pub fn strict_majority(&self) -> f64 {
        let n = self.n();
        // strict majority: X > n/2  ⇔  2X > n  ⇔  X ≥ floor(n/2) + 1
        self.tail_ge(n / 2 + 1)
    }
}

/// The exact distribution of a **weighted** Bernoulli sum
/// `Σ w_i · Bernoulli(p_i)` with nonnegative integer weights.
///
/// For a delegation graph with sinks `s_1, …, s_k` carrying weights
/// `w_1, …, w_k` (Σ w_i = n), the number of correct votes is exactly this
/// distribution; [`WeightedBernoulliSum::strict_majority`] with total `n`
/// is the probability the delegated election is decided correctly.
///
/// # Examples
///
/// ```
/// use ld_prob::poisson_binomial::WeightedBernoulliSum;
///
/// // One dictator holding all 9 votes with competency 2/3 (Figure 1).
/// let w = WeightedBernoulliSum::new(&[(9, 2.0 / 3.0)])?;
/// assert!((w.strict_majority(9) - 2.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), ld_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedBernoulliSum {
    /// `pmf[t] = P[Σ w_i x_i = t]`, length `W + 1` where `W = Σ w_i`.
    pmf: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl WeightedBernoulliSum {
    /// Computes the exact distribution by DP over total weight in
    /// `O(k · W)` where `k` is the number of terms and `W = Σ w_i`.
    ///
    /// Terms with zero weight are permitted and contribute nothing.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidProbability`] for a parameter outside
    /// `[0, 1]`.
    pub fn new(terms: &[(usize, f64)]) -> Result<Self> {
        for &(_, p) in terms {
            check_probability(p, "weighted Bernoulli parameter")?;
        }
        let total: usize = terms.iter().map(|&(w, _)| w).sum();
        let mut pmf = vec![0.0f64; total + 1];
        pmf[0] = 1.0;
        let mut reached = 0usize;
        for &(w, p) in terms {
            if w == 0 {
                continue;
            }
            for t in (0..=reached).rev() {
                let mass = pmf[t];
                if mass == 0.0 {
                    continue;
                }
                pmf[t] = mass * (1.0 - p);
                pmf[t + w] += mass * p;
            }
            reached += w;
        }
        let mean = terms.iter().map(|&(w, p)| w as f64 * p).sum();
        let variance = terms
            .iter()
            .map(|&(w, p)| (w as f64).powi(2) * p * (1.0 - p))
            .sum();
        Ok(WeightedBernoulliSum {
            pmf,
            mean,
            variance,
        })
    }

    /// Total weight `W = Σ w_i`.
    pub fn total_weight(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `P[Σ w_i x_i = t]`; zero for `t > W`.
    pub fn pmf(&self, t: usize) -> f64 {
        self.pmf.get(t).copied().unwrap_or(0.0)
    }

    /// `P[Σ w_i x_i ≥ t]`.
    pub fn tail_ge(&self, t: usize) -> f64 {
        self.pmf.iter().skip(t).sum()
    }

    /// Exact mean `Σ w_i p_i`.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Exact variance `Σ w_i² p_i (1 - p_i)`.
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Probability that the correct side holds a **strict** majority of
    /// `total_votes`: `P[Σ w_i x_i > total_votes / 2]`.
    ///
    /// `total_votes` is passed explicitly because abstention (§6 of the
    /// paper) can make the tallied weight smaller than the electorate; the
    /// paper's rule compares correct weight against incorrect weight, i.e.
    /// against `W - X` where `W` is the tallied weight.
    ///
    /// With `total_votes = W` this is `P[X > W - X]`.
    pub fn strict_majority(&self, total_votes: usize) -> f64 {
        // X > total/2  ⇔  2X > total  ⇔  X ≥ total/2 + 1 (integer X)
        self.tail_ge(total_votes / 2 + 1)
    }

    /// Probability of a correct decision under a tie-handling policy:
    /// strict majority wins outright; an exact tie is correct with
    /// probability `tie_credit` (0 for the paper's pessimistic rule, 0.5
    /// for a fair coin flip).
    pub fn majority_with_ties(&self, total_votes: usize, tie_credit: f64) -> f64 {
        let strict = self.strict_majority(total_votes);
        if total_votes.is_multiple_of(2) {
            strict + tie_credit * self.pmf(total_votes / 2)
        } else {
            strict
        }
    }
}

/// Brute-force reference: exact majority probability by enumerating all
/// `2^k` outcomes. Exponential; intended for testing the DPs (`k ≤ ~20`).
pub fn brute_force_majority(terms: &[(usize, f64)], total_votes: usize) -> Result<f64> {
    for &(_, p) in terms {
        check_probability(p, "brute-force parameter")?;
    }
    if terms.len() > 25 {
        return Err(ProbError::InvalidParameter {
            reason: format!("brute force limited to 25 terms, got {}", terms.len()),
        });
    }
    let k = terms.len();
    let mut acc = 0.0;
    for mask in 0u32..(1u32 << k) {
        let mut prob = 1.0;
        let mut weight = 0usize;
        for (i, &(w, p)) in terms.iter().enumerate() {
            if mask >> i & 1 == 1 {
                prob *= p;
                weight += w;
            } else {
                prob *= 1.0 - p;
            }
        }
        if 2 * weight > total_votes {
            acc += prob;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_special_case() {
        // 4 fair coins: pmf = (1, 4, 6, 4, 1) / 16.
        let pb = PoissonBinomial::new(&[0.5; 4]).unwrap();
        let want = [1.0, 4.0, 6.0, 4.0, 1.0].map(|x| x / 16.0);
        for (k, w) in want.iter().enumerate() {
            assert!((pb.pmf(k) - w).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn empty_sum_is_deterministic_zero() {
        let pb = PoissonBinomial::new(&[]).unwrap();
        assert_eq!(pb.n(), 0);
        assert_eq!(pb.pmf(0), 1.0);
        assert_eq!(pb.mean(), 0.0);
        // 0 > 0/2 is false: strict majority of zero voters is impossible.
        assert_eq!(pb.strict_majority(), 0.0);
    }

    #[test]
    fn pmf_sums_to_one_and_moments_match() {
        let ps = [0.1, 0.9, 0.33, 0.77, 0.5];
        let pb = PoissonBinomial::new(&ps).unwrap();
        let total: f64 = pb.pmf_slice().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mean_from_pmf: f64 = pb
            .pmf_slice()
            .iter()
            .enumerate()
            .map(|(k, &p)| k as f64 * p)
            .sum();
        assert!((mean_from_pmf - pb.mean()).abs() < 1e-9);
        let var_from_pmf: f64 = pb
            .pmf_slice()
            .iter()
            .enumerate()
            .map(|(k, &p)| (k as f64 - pb.mean()).powi(2) * p)
            .sum();
        assert!((var_from_pmf - pb.variance()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_parameters() {
        let pb = PoissonBinomial::new(&[1.0, 1.0, 0.0]).unwrap();
        assert_eq!(pb.pmf(2), 1.0);
        assert_eq!(pb.strict_majority(), 1.0); // 2 > 1.5
    }

    #[test]
    fn rejects_invalid_probability() {
        assert!(PoissonBinomial::new(&[0.5, 1.2]).is_err());
        assert!(PoissonBinomial::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn strict_majority_condorcet_grows_with_n() {
        // Condorcet jury theorem: p = 0.6, probability of a correct
        // majority increases with n (odd sizes).
        let mut last = 0.0;
        for n in [1usize, 11, 31, 101] {
            let pb = PoissonBinomial::new(&vec![0.6; n]).unwrap();
            let p = pb.strict_majority();
            assert!(p > last, "n = {n}: {p} not above {last}");
            last = p;
        }
        assert!(last > 0.97);
    }

    #[test]
    fn tail_and_cdf_are_complementary() {
        let pb = PoissonBinomial::new(&[0.3, 0.6, 0.2, 0.9]).unwrap();
        for k in 0..=4usize {
            let total = pb.cdf(k) + pb.tail_ge(k + 1);
            assert!((total - 1.0).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn weighted_matches_unweighted_when_weights_are_one() {
        let ps = [0.25, 0.5, 0.8, 0.66];
        let pb = PoissonBinomial::new(&ps).unwrap();
        let terms: Vec<(usize, f64)> = ps.iter().map(|&p| (1, p)).collect();
        let wb = WeightedBernoulliSum::new(&terms).unwrap();
        for t in 0..=4usize {
            assert!((pb.pmf(t) - wb.pmf(t)).abs() < 1e-12, "t = {t}");
        }
        assert!((pb.strict_majority() - wb.strict_majority(4)).abs() < 1e-12);
    }

    #[test]
    fn weighted_dictator_is_figure_one() {
        // Figure 1: all votes delegated to a single center with p = 2/3.
        let wb = WeightedBernoulliSum::new(&[(9, 2.0 / 3.0)]).unwrap();
        assert!((wb.strict_majority(9) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(wb.total_weight(), 9);
    }

    #[test]
    fn weighted_zero_weight_terms_are_ignored() {
        let a = WeightedBernoulliSum::new(&[(2, 0.7), (0, 0.9), (1, 0.4)]).unwrap();
        let b = WeightedBernoulliSum::new(&[(2, 0.7), (1, 0.4)]).unwrap();
        assert_eq!(a.pmf, b.pmf);
    }

    #[test]
    fn weighted_moments() {
        let wb = WeightedBernoulliSum::new(&[(3, 0.5), (2, 0.25)]).unwrap();
        assert!((wb.mean() - (1.5 + 0.5)).abs() < 1e-12);
        assert!((wb.variance() - (9.0 * 0.25 + 4.0 * 0.1875)).abs() < 1e-12);
        let s: f64 = wb.pmf.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_agrees_with_brute_force() {
        let terms = [(3usize, 0.8), (2, 0.3), (1, 0.5), (4, 0.65), (1, 0.1)];
        let total: usize = terms.iter().map(|t| t.0).sum();
        let wb = WeightedBernoulliSum::new(&terms).unwrap();
        let brute = brute_force_majority(&terms, total).unwrap();
        assert!((wb.strict_majority(total) - brute).abs() < 1e-12);
    }

    #[test]
    fn tie_handling() {
        // Two voters, one vote each, p = 0.5 each: P[X = 1] = 0.5 tie mass.
        let wb = WeightedBernoulliSum::new(&[(1, 0.5), (1, 0.5)]).unwrap();
        assert!((wb.majority_with_ties(2, 0.0) - 0.25).abs() < 1e-12);
        assert!((wb.majority_with_ties(2, 0.5) - 0.5).abs() < 1e-12);
        assert!((wb.majority_with_ties(2, 1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn abstention_smaller_total() {
        // 3 voters but only 2 votes tallied (one abstained): strict
        // majority needs ≥ 2 of the 2 tallied.
        let wb = WeightedBernoulliSum::new(&[(1, 1.0), (1, 1.0)]).unwrap();
        assert_eq!(wb.strict_majority(2), 1.0);
        let wb2 = WeightedBernoulliSum::new(&[(1, 1.0), (1, 0.0)]).unwrap();
        assert_eq!(wb2.strict_majority(2), 0.0); // 1 vote is not > 1
    }

    #[test]
    fn brute_force_guard() {
        let terms: Vec<(usize, f64)> = (0..26).map(|_| (1usize, 0.5)).collect();
        assert!(brute_force_majority(&terms, 26).is_err());
    }
}
