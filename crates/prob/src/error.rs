//! Error types for the probability substrate.

use std::error::Error;
use std::fmt;

/// A specialized result type for probability operations.
pub type Result<T> = std::result::Result<T, ProbError>;

/// Errors produced by probability constructions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProbError {
    /// A probability parameter was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// The offending value.
        value: f64,
        /// Where it was supplied.
        context: &'static str,
    },
    /// A structural parameter (weight, index, ordering) was invalid.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::InvalidProbability { value, context } => {
                write!(f, "probability {value} not in [0, 1] ({context})")
            }
            ProbError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl Error for ProbError {}

/// Validates that `p` is a finite probability in `[0, 1]`.
pub(crate) fn check_probability(p: f64, context: &'static str) -> Result<f64> {
    if p.is_finite() && (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(ProbError::InvalidProbability { value: p, context })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_probability_accepts_bounds() {
        assert_eq!(check_probability(0.0, "t").unwrap(), 0.0);
        assert_eq!(check_probability(1.0, "t").unwrap(), 1.0);
        assert_eq!(check_probability(0.5, "t").unwrap(), 0.5);
    }

    #[test]
    fn check_probability_rejects_bad_values() {
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(check_probability(bad, "t").is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn display_is_informative() {
        let e = ProbError::InvalidProbability {
            value: 1.5,
            context: "weight",
        };
        assert!(e.to_string().contains("1.5"));
        let e = ProbError::InvalidParameter {
            reason: "weights must be positive".into(),
        };
        assert!(e.to_string().contains("positive"));
    }
}
