//! Deterministic seed derivation for reproducible parallel Monte Carlo.
//!
//! The experiment engine fans trials out across threads; giving thread `t`
//! the RNG `StdRng::seed_from_u64(split_seed(master, t))` makes results
//! independent of scheduling while keeping streams statistically unrelated.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from a master seed and a stream index using the
/// SplitMix64 finalizer — a bijective avalanche mixer, so distinct
/// `(master, index)` pairs map to well-separated seeds.
///
/// # Examples
///
/// ```
/// use ld_prob::rng::split_seed;
/// assert_ne!(split_seed(42, 0), split_seed(42, 1));
/// assert_ne!(split_seed(42, 0), split_seed(43, 0));
/// assert_eq!(split_seed(42, 7), split_seed(42, 7));
/// ```
pub fn split_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded [`StdRng`] for stream `index` of a run with the given master
/// seed.
pub fn stream_rng(master: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(split_seed(master, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn split_seed_is_deterministic() {
        assert_eq!(split_seed(1, 2), split_seed(1, 2));
    }

    #[test]
    fn split_seed_separates_streams() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..20u64 {
            for index in 0..20u64 {
                assert!(
                    seen.insert(split_seed(master, index)),
                    "collision at ({master},{index})"
                );
            }
        }
    }

    #[test]
    fn stream_rngs_differ_across_indices() {
        let a: f64 = stream_rng(7, 0).gen();
        let b: f64 = stream_rng(7, 1).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_rng_reproducible() {
        let a: u64 = stream_rng(7, 3).gen();
        let b: u64 = stream_rng(7, 3).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_bits_look_balanced() {
        // Cheap sanity check on the mixer: across 4096 derived seeds every
        // bit position should be set roughly half the time.
        let mut counts = [0u32; 64];
        for i in 0..4096u64 {
            let s = split_seed(0xDEAD_BEEF, i);
            for (b, count) in counts.iter_mut().enumerate() {
                *count += (s >> b & 1) as u32;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (1500..=2600).contains(&c),
                "bit {b} set {c}/4096 times — mixer looks biased"
            );
        }
    }
}
