//! Concentration and anti-concentration bounds used in the paper's proofs.
//!
//! These are *calculators*: given the same parameters the paper's lemmas
//! use, they return the bound value, so experiments can overlay measured
//! deviation frequencies against the theoretical envelope.

use crate::error::{check_probability, ProbError, Result};
use crate::normal::erf;

/// Multiplicative Chernoff lower-tail bound:
/// `P[X ≤ (1 - δ) μ] ≤ exp(-δ² μ / 2)` for a sum of independent Bernoulli
/// variables with mean `μ`.
///
/// Lemma 1 of the paper instantiates this with `δ = ε / j^{1/3}` to show
/// that prefixes of independent voters rarely fall far below their mean.
///
/// # Errors
///
/// Returns [`ProbError::InvalidParameter`] if `delta` is not in `[0, 1]`
/// or `mu` is negative.
pub fn chernoff_lower_tail(mu: f64, delta: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&delta) || !delta.is_finite() {
        return Err(ProbError::InvalidParameter {
            reason: format!("chernoff delta {delta} must be in [0, 1]"),
        });
    }
    if mu < 0.0 || !mu.is_finite() {
        return Err(ProbError::InvalidParameter {
            reason: format!("chernoff mean {mu} must be nonnegative"),
        });
    }
    Ok((-delta * delta * mu / 2.0).exp().min(1.0))
}

/// Multiplicative Chernoff upper-tail bound:
/// `P[X ≥ (1 + δ) μ] ≤ exp(-δ² μ / 3)` for `δ ∈ [0, 1]`.
///
/// # Errors
///
/// Returns [`ProbError::InvalidParameter`] for `delta` outside `[0, 1]` or
/// negative `mu`.
pub fn chernoff_upper_tail(mu: f64, delta: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&delta) || !delta.is_finite() {
        return Err(ProbError::InvalidParameter {
            reason: format!("chernoff delta {delta} must be in [0, 1]"),
        });
    }
    if mu < 0.0 || !mu.is_finite() {
        return Err(ProbError::InvalidParameter {
            reason: format!("chernoff mean {mu} must be nonnegative"),
        });
    }
    Ok((-delta * delta * mu / 3.0).exp().min(1.0))
}

/// Hoeffding's inequality (the paper's Theorem 1): for independent
/// `a_i ≤ X_i ≤ b_i` and `S = Σ X_i`,
/// `P[|S - E[S]| ≥ t] ≤ 2 exp(-2t² / Σ (b_i - a_i)²)`.
///
/// `ranges_sq` is `Σ (b_i - a_i)²`.
///
/// # Errors
///
/// Returns [`ProbError::InvalidParameter`] if `t < 0` or
/// `ranges_sq ≤ 0`.
///
/// # Examples
///
/// ```
/// // 100 sinks of weight 1: Σ (b-a)² = 100; deviation ≥ 20.
/// let bound = ld_prob::bounds::hoeffding_two_sided(20.0, 100.0)?;
/// assert!(bound < 2.0 * (-8.0f64).exp() + 1e-12);
/// # Ok::<(), ld_prob::ProbError>(())
/// ```
pub fn hoeffding_two_sided(t: f64, ranges_sq: f64) -> Result<f64> {
    if t < 0.0 || !t.is_finite() {
        return Err(ProbError::InvalidParameter {
            reason: format!("hoeffding deviation t = {t} must be nonnegative"),
        });
    }
    if ranges_sq <= 0.0 || !ranges_sq.is_finite() {
        return Err(ProbError::InvalidParameter {
            reason: format!("hoeffding range sum {ranges_sq} must be positive"),
        });
    }
    Ok((2.0 * (-2.0 * t * t / ranges_sq).exp()).min(1.0))
}

/// Lemma 6's instantiation of Hoeffding for delegation graphs: with at
/// least `n / w` sinks each of weight at most `w`, the probability that the
/// weighted correct-vote total deviates from its mean by at least
/// `√(n^{1+ε} · w)` is at most `2·exp(-2 n^ε)`.
///
/// Returns the pair `(deviation_radius, probability_bound)`.
///
/// # Errors
///
/// Returns [`ProbError::InvalidParameter`] if `n == 0`, `w == 0`, or
/// `w > n`.
pub fn max_weight_radius(n: usize, w: usize, epsilon: f64) -> Result<(f64, f64)> {
    if n == 0 || w == 0 || w > n {
        return Err(ProbError::InvalidParameter {
            reason: format!("need 0 < w ≤ n, got w = {w}, n = {n}"),
        });
    }
    let nf = n as f64;
    let radius = (nf.powf(1.0 + epsilon) * w as f64).sqrt();
    // Hoeffding with ≥ n/w sinks of range ≤ w: Σ (b-a)² ≤ (n/w)·w² = n·w.
    let bound = hoeffding_two_sided(radius, nf * w as f64)?;
    Ok((radius, bound))
}

/// Berry–Esseen bound for a sum of independent Bernoulli variables:
/// `sup_x |F_n(x) − Φ(x)| ≤ C₀ · Σ ρ_i / (Σ σ_i²)^{3/2}` with
/// `ρ_i = p_i(1-p_i)(p_i² + (1-p_i)²)` and `C₀ = 0.56`.
///
/// This quantifies the convergence rate behind the paper's Lemma 4 (the
/// normal approximation of the direct-voting tally): for competencies
/// bounded in `(β, 1-β)` the bound is `O(1/√n)`.
///
/// # Errors
///
/// Returns [`ProbError::InvalidProbability`] if some `p_i` is outside
/// `[0, 1]`, or [`ProbError::InvalidParameter`] if the total variance is
/// zero (all parameters deterministic).
pub fn berry_esseen_bernoulli(ps: &[f64]) -> Result<f64> {
    for &p in ps {
        check_probability(p, "Berry-Esseen parameter")?;
    }
    let variance: f64 = ps.iter().map(|p| p * (1.0 - p)).sum();
    if variance <= 0.0 {
        return Err(ProbError::InvalidParameter {
            reason: "Berry-Esseen requires positive total variance".to_string(),
        });
    }
    let rho: f64 = ps
        .iter()
        .map(|p| p * (1.0 - p) * (p * p + (1.0 - p) * (1.0 - p)))
        .sum();
    Ok((0.56 * rho / variance.powf(1.5)).min(1.0))
}

/// Berry–Esseen bound for a **weighted** Bernoulli sum
/// `Σ w_i · Bernoulli(p_i)` (nonnegative integer weights):
/// `sup_x |F(x) − Φ((x-μ)/σ)| ≤ C₀ · Σ ρ_i / (Σ σ_i²)^{3/2}` with
/// `σ_i² = w_i² p_i (1-p_i)`, `ρ_i = E|w_i(X_i - p_i)|³ =
/// w_i³ p_i(1-p_i)(p_i² + (1-p_i)²)`, and `C₀ = 0.56`.
///
/// This is the envelope within which the live engine's O(1)
/// normal-approximation decision probability must agree with the exact
/// weighted Poisson-binomial: both the conformance suite and the
/// `ld-prob` property tests assert
/// `|normal − exact| ≤ berry_esseen_weighted(terms)` at the majority
/// threshold. Zero-weight terms are permitted and contribute nothing.
///
/// # Errors
///
/// Returns [`ProbError::InvalidProbability`] if some `p_i` is outside
/// `[0, 1]`, or [`ProbError::InvalidParameter`] if the total variance is
/// zero (all terms deterministic).
pub fn berry_esseen_weighted(terms: &[(usize, f64)]) -> Result<f64> {
    for &(_, p) in terms {
        check_probability(p, "Berry-Esseen weighted parameter")?;
    }
    let variance: f64 = terms
        .iter()
        .map(|&(w, p)| (w as f64).powi(2) * p * (1.0 - p))
        .sum();
    if variance <= 0.0 {
        return Err(ProbError::InvalidParameter {
            reason: "Berry-Esseen requires positive total variance".to_string(),
        });
    }
    let rho: f64 = terms
        .iter()
        .map(|&(w, p)| (w as f64).powi(3) * p * (1.0 - p) * (p * p + (1.0 - p) * (1.0 - p)))
        .sum();
    Ok((0.56 * rho / variance.powf(1.5)).min(1.0))
}

/// Lemma 3's anti-concentration bound: with all competencies in
/// `(β, 1-β)`, the probability that delegating `n^{1/2-ε}` votes flips the
/// outcome is at most `erf(2·n^{1/2-ε} / (σ√2))` where
/// `σ ≥ √(n·β(1-β))` is the standard deviation of the direct-voting tally;
/// asymptotically this is `erf(n^{-ε}·c) → 0`.
///
/// Returns the bound on the flip probability.
///
/// # Errors
///
/// Returns [`ProbError::InvalidProbability`] if `beta` is not in
/// `(0, 1/2)`, or [`ProbError::InvalidParameter`] if `n == 0` or
/// `delegations` exceeds `n`.
pub fn anti_concentration_flip_bound(n: usize, delegations: usize, beta: f64) -> Result<f64> {
    check_probability(beta, "bounded-competency beta")?;
    if beta <= 0.0 || beta >= 0.5 {
        return Err(ProbError::InvalidProbability {
            value: beta,
            context: "beta must be in (0, 1/2)",
        });
    }
    if n == 0 {
        return Err(ProbError::InvalidParameter {
            reason: "n must be positive".to_string(),
        });
    }
    if delegations > n {
        return Err(ProbError::InvalidParameter {
            reason: format!("delegations {delegations} exceed n = {n}"),
        });
    }
    // Worst-case swing from `delegations` delegated votes is 2·delegations;
    // the outcome flips only if the direct tally lands within that swing of
    // the majority threshold. With tally std dev σ ≥ √(n β (1-β)), the
    // normal-window mass is at most erf(2·delegations / (σ √2)).
    let sigma = (n as f64 * beta * (1.0 - beta)).sqrt();
    let z = 2.0 * delegations as f64 / (sigma * std::f64::consts::SQRT_2);
    Ok(erf(z).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_lower_tail_values() {
        // δ = 1, μ = 10 → e^{-5}
        let b = chernoff_lower_tail(10.0, 1.0).unwrap();
        assert!((b - (-5.0f64).exp()).abs() < 1e-12);
        // δ = 0 → bound is 1 (vacuous)
        assert_eq!(chernoff_lower_tail(10.0, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn chernoff_bounds_are_monotone_in_mu_and_delta() {
        let mut last = 1.0;
        for mu in [1.0, 10.0, 100.0, 1000.0] {
            let b = chernoff_lower_tail(mu, 0.3).unwrap();
            assert!(b <= last);
            last = b;
        }
        let mut last = 1.0;
        for delta in [0.1, 0.3, 0.6, 0.9] {
            let b = chernoff_upper_tail(50.0, delta).unwrap();
            assert!(b <= last);
            last = b;
        }
    }

    #[test]
    fn chernoff_rejects_bad_parameters() {
        assert!(chernoff_lower_tail(-1.0, 0.5).is_err());
        assert!(chernoff_lower_tail(1.0, 1.5).is_err());
        assert!(chernoff_upper_tail(1.0, -0.1).is_err());
        assert!(chernoff_upper_tail(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn hoeffding_reference_value() {
        // t = 20, Σ ranges² = 100 → 2 e^{-8}
        let b = hoeffding_two_sided(20.0, 100.0).unwrap();
        assert!((b - 2.0 * (-8.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_caps_at_one() {
        assert_eq!(hoeffding_two_sided(0.0, 100.0).unwrap(), 1.0);
    }

    #[test]
    fn hoeffding_rejects_bad_parameters() {
        assert!(hoeffding_two_sided(-1.0, 10.0).is_err());
        assert!(hoeffding_two_sided(1.0, 0.0).is_err());
    }

    #[test]
    fn max_weight_radius_shrinks_relative_to_n_for_small_w() {
        // For w = 1 the radius is n^{(1+ε)/2} = o(n); for w = n it is n·n^{ε/2}.
        let (r_small, b_small) = max_weight_radius(10_000, 1, 0.1).unwrap();
        let (r_big, _) = max_weight_radius(10_000, 10_000, 0.1).unwrap();
        assert!(r_small / 10_000.0 < 0.1, "small-w radius should be o(n)");
        assert!(r_big >= 10_000.0, "dictator radius exceeds n");
        // The bound is 2·exp(-2·n^ε) = 2·exp(-2·10000^0.1) ≈ 0.013.
        assert!((b_small - 2.0 * (-2.0 * 10_000f64.powf(0.1)).exp()).abs() < 1e-9);
    }

    #[test]
    fn max_weight_radius_rejects_bad_parameters() {
        assert!(max_weight_radius(0, 1, 0.1).is_err());
        assert!(max_weight_radius(10, 0, 0.1).is_err());
        assert!(max_weight_radius(10, 11, 0.1).is_err());
    }

    #[test]
    fn berry_esseen_shrinks_at_root_n() {
        let mut last = f64::INFINITY;
        for n in [16usize, 64, 256, 1024] {
            let ps = vec![0.4; n];
            let b = berry_esseen_bernoulli(&ps).unwrap();
            assert!(b < last, "bound should shrink with n");
            // Rate check: bound ≈ C/√n.
            let expected = 0.56 * (0.16 + 0.36) / (0.24f64).sqrt() / (n as f64).sqrt();
            assert!((b - expected).abs() < 1e-9, "n = {n}: {b} vs {expected}");
            last = b;
        }
    }

    #[test]
    fn berry_esseen_weighted_reduces_to_bernoulli_for_unit_weights() {
        let ps = [0.3, 0.45, 0.5, 0.62, 0.71];
        let terms: Vec<(usize, f64)> = ps.iter().map(|&p| (1, p)).collect();
        let a = berry_esseen_bernoulli(&ps).unwrap();
        let b = berry_esseen_weighted(&terms).unwrap();
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn berry_esseen_weighted_shrinks_with_more_equal_weight_terms() {
        let mut last = f64::INFINITY;
        for k in [8usize, 32, 128, 512] {
            let terms: Vec<(usize, f64)> = (0..k).map(|_| (2, 0.4)).collect();
            let b = berry_esseen_weighted(&terms).unwrap();
            assert!(b < last, "k = {k}: {b} not below {last}");
            last = b;
        }
    }

    #[test]
    fn berry_esseen_weighted_ignores_zero_weight_terms() {
        let a = berry_esseen_weighted(&[(3, 0.4), (1, 0.6)]).unwrap();
        let b = berry_esseen_weighted(&[(3, 0.4), (0, 0.9), (1, 0.6)]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn berry_esseen_weighted_rejects_degenerate_inputs() {
        assert!(berry_esseen_weighted(&[(3, 0.0), (2, 1.0)]).is_err()); // zero variance
        assert!(berry_esseen_weighted(&[(1, 1.5)]).is_err());
        assert!(berry_esseen_weighted(&[]).is_err());
        assert!(berry_esseen_weighted(&[(0, 0.5)]).is_err()); // zero-weight only
    }

    #[test]
    fn berry_esseen_rejects_degenerate_inputs() {
        assert!(berry_esseen_bernoulli(&[0.0, 1.0]).is_err()); // zero variance
        assert!(berry_esseen_bernoulli(&[1.5]).is_err());
        assert!(berry_esseen_bernoulli(&[]).is_err());
    }

    #[test]
    fn flip_bound_decreases_in_n_for_sublinear_delegations() {
        // delegations = n^{0.25} (ε = 0.25): the bound must vanish at rate
        // ≈ n^{-0.25}; check it is strictly decreasing and gets small.
        let mut last = 1.0;
        for n in [100usize, 1000, 10_000, 100_000, 1_000_000] {
            let d = (n as f64).powf(0.25).round() as usize;
            let b = anti_concentration_flip_bound(n, d, 0.25).unwrap();
            assert!(b < last, "n = {n}: bound {b} not decreasing from {last}");
            last = b;
        }
        assert!(last < 0.15, "final bound {last} should be small");
    }

    #[test]
    fn flip_bound_is_vacuous_for_linear_delegations() {
        // Delegating a constant fraction: the bound goes to 1.
        let b = anti_concentration_flip_bound(10_000, 5_000, 0.25).unwrap();
        assert!(b > 0.99);
    }

    #[test]
    fn flip_bound_rejects_bad_parameters() {
        assert!(anti_concentration_flip_bound(0, 0, 0.25).is_err());
        assert!(anti_concentration_flip_bound(10, 11, 0.25).is_err());
        assert!(anti_concentration_flip_bound(10, 1, 0.0).is_err());
        assert!(anti_concentration_flip_bound(10, 1, 0.5).is_err());
    }
}
