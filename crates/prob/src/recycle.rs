//! **Recycle sampling** — the paper's novel model of dependent Bernoulli
//! variables (Definition 6) and the measurement apparatus behind Lemmas 1–2.
//!
//! A `(j, c, n)`-recycle-sampling graph has ordered vertices `v_1 … v_n`;
//! vertex `i` either draws a **fresh** `Bernoulli(p_i)` (with probability
//! `z_i`) or **recycles** the realized value of a uniformly random vertex
//! among a prefix `1..=t_i` of its predecessors (with probability
//! `1 - z_i`). The first `j` vertices are always fresh, and the longest
//! chain of potential recycling steps — the *partition complexity* — is at
//! most `c`.
//!
//! This captures delegation exactly: a voter who delegates "recycles" the
//! voting outcome of a random more-competent voter, which positively
//! correlates voting outcomes — the opposite regime from the negative
//! dependence handled by classical Chernoff extensions.
//!
//! Lemma 2 asserts that despite the dependence, the realized sum `X_n`
//! stays above `μ(X_n) − c·ε·n / j^{1/3}` with probability
//! `1 − e^{-Ω(j^{1/3})}`. [`RecycleGraph::deviation_statistic`] measures the
//! quantity that statement bounds.

use crate::error::{check_probability, ProbError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One vertex of a recycle-sampling graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecycleNode {
    /// Probability of drawing a fresh Bernoulli rather than recycling.
    pub fresh_prob: f64,
    /// Bernoulli parameter used when fresh.
    pub success_prob: f64,
    /// Recycle prefix length `t`: when recycling, the node copies the value
    /// of a uniform vertex among indices `0..t` (zero-based). `t = 0`
    /// forces the node to be fresh regardless of `fresh_prob`.
    pub prefix: usize,
}

impl RecycleNode {
    /// A node that always draws a fresh `Bernoulli(p)`.
    pub fn fresh(p: f64) -> Self {
        RecycleNode {
            fresh_prob: 1.0,
            success_prob: p,
            prefix: 0,
        }
    }

    /// A node that recycles from `0..prefix` with probability
    /// `1 - fresh_prob` and otherwise draws `Bernoulli(p)`.
    pub fn recycling(fresh_prob: f64, p: f64, prefix: usize) -> Self {
        RecycleNode {
            fresh_prob,
            success_prob: p,
            prefix,
        }
    }
}

/// A `(j, c, n)`-recycle-sampling graph (Definition 6 of the paper).
///
/// # Examples
///
/// ```
/// use ld_prob::recycle::{RecycleGraph, RecycleNode};
/// use rand::SeedableRng;
///
/// // 3 fresh voters at p = 0.6, then 7 voters who always recycle from them.
/// let mut nodes = vec![RecycleNode::fresh(0.6); 3];
/// nodes.extend(std::iter::repeat(RecycleNode::recycling(0.0, 0.0, 3)).take(7));
/// let g = RecycleGraph::new(nodes)?;
/// assert_eq!(g.j(), 3);
/// assert_eq!(g.partition_complexity(), 1);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = g.realize(&mut rng);
/// assert_eq!(x.values().len(), 10);
/// # Ok::<(), ld_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecycleGraph {
    nodes: Vec<RecycleNode>,
    /// Index of the first node that can recycle (`j` in the paper).
    j: usize,
    /// Longest chain of potential recycling steps (`c` in the paper).
    complexity: usize,
    /// Exact expectations `E[x_i]`, computed once at construction.
    expectations: Vec<f64>,
}

impl RecycleGraph {
    /// Validates and analyses a node sequence.
    ///
    /// # Errors
    ///
    /// * [`ProbError::InvalidProbability`] if any `fresh_prob` or
    ///   `success_prob` is outside `[0, 1]`.
    /// * [`ProbError::InvalidParameter`] if some node's recycle prefix is
    ///   not strictly shorter than its own index (recycling must reference
    ///   predecessors only).
    pub fn new(nodes: Vec<RecycleNode>) -> Result<Self> {
        for (i, node) in nodes.iter().enumerate() {
            check_probability(node.fresh_prob, "recycle fresh probability")?;
            check_probability(node.success_prob, "recycle success probability")?;
            if node.prefix > i {
                return Err(ProbError::InvalidParameter {
                    reason: format!(
                        "node {i} recycles from prefix of length {} > {i}",
                        node.prefix
                    ),
                });
            }
        }
        let j = nodes
            .iter()
            .position(|node| node.prefix > 0 && node.fresh_prob < 1.0)
            .unwrap_or(nodes.len());
        // Longest potential recycling chain: depth[i] = 1 + max depth over
        // the prefix, when the node can recycle. Prefix maxima make this
        // O(n).
        let mut complexity = 0usize;
        let mut depth = vec![0usize; nodes.len()];
        let mut prefix_max = Vec::with_capacity(nodes.len() + 1);
        prefix_max.push(0usize);
        for (i, node) in nodes.iter().enumerate() {
            depth[i] = if node.prefix > 0 && node.fresh_prob < 1.0 {
                1 + prefix_max[node.prefix]
            } else {
                0
            };
            complexity = complexity.max(depth[i]);
            prefix_max.push(prefix_max[i].max(depth[i]));
        }
        // Exact expectations by forward DP over prefix averages:
        // E[x_i] = z_i p_i + (1 - z_i) · avg_{k < t_i} E[x_k].
        let mut expectations = Vec::with_capacity(nodes.len());
        let mut running_sum = 0.0f64;
        let mut prefix_sums = Vec::with_capacity(nodes.len() + 1);
        prefix_sums.push(0.0);
        for node in &nodes {
            let e = if node.prefix == 0 {
                node.success_prob
            } else {
                let prefix_avg = prefix_sums[node.prefix] / node.prefix as f64;
                node.fresh_prob * node.success_prob + (1.0 - node.fresh_prob) * prefix_avg
            };
            expectations.push(e);
            running_sum += e;
            prefix_sums.push(running_sum);
        }
        Ok(RecycleGraph {
            nodes,
            j,
            complexity,
            expectations,
        })
    }

    /// Builds the canonical delegation-shaped instance used by the Lemma 2
    /// experiments: `j` fresh voters with competencies `ps[0..j]`, then
    /// `n - j` voters that recycle from the full preceding prefix with
    /// probability `1 - fresh_prob` (and are otherwise fresh at their own
    /// competency).
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`RecycleGraph::new`], and rejects
    /// `j == 0` or `j > ps.len()`.
    pub fn delegation_shaped(ps: &[f64], j: usize, fresh_prob: f64) -> Result<Self> {
        if j == 0 || j > ps.len() {
            return Err(ProbError::InvalidParameter {
                reason: format!("need 1 ≤ j ≤ n, got j = {j}, n = {}", ps.len()),
            });
        }
        let nodes = ps
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                if i < j {
                    RecycleNode::fresh(p)
                } else {
                    RecycleNode::recycling(fresh_prob, p, i)
                }
            })
            .collect();
        RecycleGraph::new(nodes)
    }

    /// Builds a **block-structured** recycle graph with bounded partition
    /// complexity — the shape delegation actually induces when voters can
    /// only recycle from voters at least `α` more competent.
    ///
    /// Competencies in `[0, 1]` split into `1/α` blocks; a voter in block
    /// `b` can only delegate into blocks `< b`' — here, nodes are laid out
    /// block by block (`block_sizes[0]` nodes first, etc.), nodes in block
    /// `b > 0` recycle from the union of earlier blocks with probability
    /// `1 - fresh_prob`, and the partition complexity is exactly the
    /// number of nonempty recycling blocks (at most `block_sizes.len() - 1`).
    ///
    /// `ps` supplies the per-node success probabilities, concatenated in
    /// block order.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if `block_sizes` does not
    /// sum to `ps.len()` or the first block is empty; propagates
    /// probability validation errors.
    pub fn blocked(block_sizes: &[usize], ps: &[f64], fresh_prob: f64) -> Result<Self> {
        let total: usize = block_sizes.iter().sum();
        if total != ps.len() {
            return Err(ProbError::InvalidParameter {
                reason: format!(
                    "block sizes sum to {total} but {} probabilities given",
                    ps.len()
                ),
            });
        }
        if block_sizes.first().copied().unwrap_or(0) == 0 {
            return Err(ProbError::InvalidParameter {
                reason: "first block must be nonempty (someone has to be fresh)".to_string(),
            });
        }
        let mut nodes = Vec::with_capacity(total);
        let mut prefix = 0usize;
        for (b, &size) in block_sizes.iter().enumerate() {
            for k in 0..size {
                let idx = prefix + k;
                if b == 0 {
                    nodes.push(RecycleNode::fresh(ps[idx]));
                } else {
                    nodes.push(RecycleNode::recycling(fresh_prob, ps[idx], prefix));
                }
            }
            prefix += size;
        }
        RecycleGraph::new(nodes)
    }

    /// Number of variables `n`.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Index of the first vertex that can recycle (the paper's `j`); equals
    /// `n` if no vertex recycles.
    pub fn j(&self) -> usize {
        self.j
    }

    /// The partition complexity `c`: the longest chain of potential
    /// recycling steps (Definition 6's longest path).
    pub fn partition_complexity(&self) -> usize {
        self.complexity
    }

    /// The nodes.
    pub fn nodes(&self) -> &[RecycleNode] {
        &self.nodes
    }

    /// Exact per-variable expectations `E[x_i]`.
    pub fn expectations(&self) -> &[f64] {
        &self.expectations
    }

    /// Exact expectation `μ(X_n) = Σ E[x_i]`.
    pub fn expected_sum(&self) -> f64 {
        self.expectations.iter().sum()
    }

    /// Exact expectations of prefix sums: element `i` is `μ(X_i)` for the
    /// first `i` variables (`i` from 0 to `n`).
    pub fn expected_prefix_sums(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n() + 1);
        let mut acc = 0.0;
        out.push(0.0);
        for &e in &self.expectations {
            acc += e;
            out.push(acc);
        }
        out
    }

    /// Exact variance of `X_n = Σ x_i`, accounting for all recycling
    /// correlations, by an `O(n²)` pairwise second-moment DP.
    ///
    /// The recursion: for `i > k`,
    /// `E[x_i x_k] = z_i p_i E[x_k] + (1-z_i)/t_i · Σ_{m<t_i} E[x_m x_k]`
    /// (the copy index and fresh coin of `i` are independent of everything
    /// realized before `i`). The paper only *bounds* this dependence
    /// (Lemma 2); having the exact value lets experiments report how loose
    /// the bound is.
    ///
    /// Returns `None` for `n > 2048` (the DP stores Θ(n²) doubles).
    pub fn exact_variance(&self) -> Option<f64> {
        const LIMIT: usize = 2048;
        let n = self.n();
        if n > LIMIT {
            return None;
        }
        if n == 0 {
            return Some(0.0);
        }
        let e = &self.expectations;
        // m2[i] holds E[x_i x_k] for k ≤ i (row-triangular).
        let mut m2: Vec<Vec<f64>> = Vec::with_capacity(n);
        // cum[k][t] = Σ_{m<t} E[x_m x_k]. Column k is seeded from row k
        // itself (the terms with m < k live in row k by symmetry) and then
        // extended by one term per completed later row.
        let mut cum: Vec<Vec<f64>> = Vec::with_capacity(n);
        for i in 0..n {
            let node = self.nodes[i];
            let mut row = Vec::with_capacity(i + 1);
            for k in 0..i {
                let val = if node.prefix == 0 {
                    // Fresh: x_i independent of x_k.
                    node.success_prob * e[k]
                } else {
                    let t = node.prefix;
                    let avg = cum[k][t] / t as f64;
                    node.fresh_prob * node.success_prob * e[k] + (1.0 - node.fresh_prob) * avg
                };
                row.push(val);
            }
            // E[x_i²] = E[x_i] for Bernoulli-valued x_i.
            row.push(e[i]);
            // Seed column i: entries for t = 0..=i+1 come from row i
            // (E[x_m x_i] = m2[i][m] for m < i, and the diagonal at m = i).
            let mut col = Vec::with_capacity(n - i + 2);
            col.push(0.0);
            let mut acc = 0.0;
            for &v in &row {
                acc += v;
                col.push(acc);
            }
            cum.push(col);
            // Extend earlier columns with this row's term E[x_i x_k].
            for (k, col) in cum.iter_mut().enumerate().take(i) {
                let last = *col.last().expect("columns are non-empty");
                col.push(last + row[k]);
            }
            m2.push(row);
        }
        let sum_e: f64 = e.iter().sum();
        let mut total = 0.0;
        for (i, row) in m2.iter().enumerate() {
            total += row[i];
            for &v in row.iter().take(i) {
                total += 2.0 * v;
            }
        }
        Some(total - sum_e * sum_e)
    }

    /// Realizes the process once, in index order.
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> RecycleRealization {
        let mut values = Vec::with_capacity(self.n());
        for node in &self.nodes {
            let fresh = node.prefix == 0 || rng.gen_bool(node.fresh_prob);
            let value = if fresh {
                rng.gen_bool(node.success_prob)
            } else {
                values[rng.gen_range(0..node.prefix)]
            };
            values.push(value);
        }
        RecycleRealization { values }
    }

    /// Lemma 2's deviation statistic for one realization: the worst
    /// normalized shortfall of any prefix sum beyond `j`, i.e.
    /// `max_{i > j} (μ(X_i) - X_i) · j^{1/3} / (c · i)` — Lemma 2 predicts
    /// this rarely exceeds `ε`.
    ///
    /// Returns 0 when nothing recycles (`j = n`) or all prefixes are above
    /// their mean.
    pub fn deviation_statistic(&self, realization: &RecycleRealization) -> f64 {
        let mu = self.expected_prefix_sums();
        let c = self.partition_complexity().max(1) as f64;
        let j13 = (self.j.max(1) as f64).powf(1.0 / 3.0);
        let mut worst: f64 = 0.0;
        let mut sum = 0usize;
        for (i, &v) in realization.values.iter().enumerate() {
            sum += v as usize;
            let idx = i + 1;
            if idx <= self.j {
                continue;
            }
            let shortfall = mu[idx] - sum as f64;
            if shortfall > 0.0 {
                worst = worst.max(shortfall * j13 / (c * idx as f64));
            }
        }
        worst
    }
}

/// The outcome of realizing a [`RecycleGraph`] once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecycleRealization {
    values: Vec<bool>,
}

impl RecycleRealization {
    /// The realized values `x_1 … x_n`.
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// The realized sum `X_n`.
    pub fn sum(&self) -> usize {
        self.values.iter().filter(|&&v| v).count()
    }

    /// Realized prefix sums `X_0 = 0, X_1, …, X_n`.
    pub fn prefix_sums(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.values.len() + 1);
        let mut acc = 0usize;
        out.push(0);
        for &v in &self.values {
            acc += v as usize;
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_fresh_graph_is_independent_bernoullis() {
        let g = RecycleGraph::new(vec![RecycleNode::fresh(0.3); 10]).unwrap();
        assert_eq!(g.j(), 10);
        assert_eq!(g.partition_complexity(), 0);
        assert!((g.expected_sum() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_forward_reference() {
        let nodes = vec![RecycleNode::recycling(0.5, 0.5, 1)];
        assert!(RecycleGraph::new(nodes).is_err());
    }

    #[test]
    fn rejects_invalid_probabilities() {
        assert!(RecycleGraph::new(vec![RecycleNode::fresh(1.5)]).is_err());
        assert!(RecycleGraph::new(vec![RecycleNode::recycling(-0.1, 0.5, 0)]).is_err());
    }

    #[test]
    fn expectation_dp_matches_hand_computation() {
        // Node 0: fresh p=0.8. Node 1: fresh p=0.2.
        // Node 2: z=0.5, p=0.4, prefix=2 → E = 0.5·0.4 + 0.5·(0.8+0.2)/2 = 0.45.
        let g = RecycleGraph::new(vec![
            RecycleNode::fresh(0.8),
            RecycleNode::fresh(0.2),
            RecycleNode::recycling(0.5, 0.4, 2),
        ])
        .unwrap();
        assert!((g.expectations()[2] - 0.45).abs() < 1e-12);
        assert!((g.expected_sum() - 1.45).abs() < 1e-12);
    }

    #[test]
    fn empirical_mean_matches_exact_expectation() {
        let ps: Vec<f64> = (0..20).map(|i| 0.3 + 0.02 * i as f64).collect();
        let g = RecycleGraph::delegation_shaped(&ps, 5, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut w = Welford::new();
        for _ in 0..20_000 {
            w.push(g.realize(&mut rng).sum() as f64);
        }
        let mu = g.expected_sum();
        assert!(
            (w.mean() - mu).abs() < 4.0 * w.std_error().max(0.02),
            "empirical {} vs exact {mu}",
            w.mean()
        );
    }

    #[test]
    fn recycling_preserves_expectation_but_inflates_variance() {
        // All parameters 0.5: recycling cannot change the mean, but copies
        // are positively correlated so the sum's variance grows.
        let n = 40;
        let indep = RecycleGraph::new(vec![RecycleNode::fresh(0.5); n]).unwrap();
        let mut nodes = vec![RecycleNode::fresh(0.5); 5];
        nodes.extend((5..n).map(|i| RecycleNode::recycling(0.1, 0.5, i)));
        let dep = RecycleGraph::new(nodes).unwrap();
        assert!((indep.expected_sum() - dep.expected_sum()).abs() < 1e-9);

        let mut rng = StdRng::seed_from_u64(7);
        let mut wi = Welford::new();
        let mut wd = Welford::new();
        for _ in 0..5000 {
            wi.push(indep.realize(&mut rng).sum() as f64);
            wd.push(dep.realize(&mut rng).sum() as f64);
        }
        assert!(
            wd.sample_variance() > 1.5 * wi.sample_variance(),
            "dependent variance {} should exceed independent {}",
            wd.sample_variance(),
            wi.sample_variance()
        );
    }

    #[test]
    fn delegation_shaped_structure() {
        let ps = vec![0.5; 10];
        let g = RecycleGraph::delegation_shaped(&ps, 3, 0.2).unwrap();
        assert_eq!(g.j(), 3);
        assert!(g.partition_complexity() >= 1);
        assert_eq!(g.n(), 10);
        assert!(RecycleGraph::delegation_shaped(&ps, 0, 0.2).is_err());
        assert!(RecycleGraph::delegation_shaped(&ps, 11, 0.2).is_err());
    }

    #[test]
    fn partition_complexity_of_chain() {
        // Each node recycles only from the immediately preceding node:
        // prefix = i means uniform over 0..i; build a strict chain by
        // alternating fresh nodes to keep depth growing.
        let nodes = vec![
            RecycleNode::fresh(0.5),
            RecycleNode::recycling(0.0, 0.5, 1),
            RecycleNode::recycling(0.0, 0.5, 2),
            RecycleNode::recycling(0.0, 0.5, 3),
        ];
        let g = RecycleGraph::new(nodes).unwrap();
        assert_eq!(g.partition_complexity(), 3);
    }

    #[test]
    fn pure_copy_node_tracks_source_exactly() {
        // Node 1 always copies node 0: the two values are always equal.
        let g = RecycleGraph::new(vec![
            RecycleNode::fresh(0.5),
            RecycleNode::recycling(0.0, 0.99, 1),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let r = g.realize(&mut rng);
            assert_eq!(r.values()[0], r.values()[1]);
        }
    }

    #[test]
    fn prefix_sums_are_consistent() {
        let g = RecycleGraph::new(vec![RecycleNode::fresh(1.0); 4]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let r = g.realize(&mut rng);
        assert_eq!(r.prefix_sums(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.sum(), 4);
    }

    #[test]
    fn deviation_statistic_small_for_typical_realizations() {
        // Lemma 2: the normalized shortfall rarely exceeds a small ε.
        let ps: Vec<f64> = (0..200).map(|i| 0.4 + 0.001 * i as f64).collect();
        let g = RecycleGraph::delegation_shaped(&ps, 27, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut exceed = 0usize;
        let trials = 400;
        for _ in 0..trials {
            let r = g.realize(&mut rng);
            if g.deviation_statistic(&r) > 1.0 {
                exceed += 1;
            }
        }
        assert!(
            exceed < trials / 10,
            "deviation exceeded ε = 1.0 in {exceed}/{trials} trials"
        );
    }

    #[test]
    fn exact_variance_matches_independent_case() {
        let ps = [0.2, 0.5, 0.8, 0.4];
        let nodes: Vec<RecycleNode> = ps.iter().map(|&p| RecycleNode::fresh(p)).collect();
        let g = RecycleGraph::new(nodes).unwrap();
        let want: f64 = ps.iter().map(|p| p * (1.0 - p)).sum();
        assert!((g.exact_variance().unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn exact_variance_of_pure_copy_pair() {
        // x_1 always copies x_0 ~ Bernoulli(1/2): X_2 = 2 x_0, Var = 1.
        let g = RecycleGraph::new(vec![
            RecycleNode::fresh(0.5),
            RecycleNode::recycling(0.0, 0.9, 1),
        ])
        .unwrap();
        assert!((g.exact_variance().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_variance_matches_monte_carlo() {
        let ps: Vec<f64> = (0..60).map(|i| 0.3 + 0.005 * i as f64).collect();
        let g = RecycleGraph::delegation_shaped(&ps, 10, 0.3).unwrap();
        let exact = g.exact_variance().unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let mut w = Welford::new();
        for _ in 0..40_000 {
            w.push(g.realize(&mut rng).sum() as f64);
        }
        let rel = (w.sample_variance() - exact).abs() / exact;
        assert!(
            rel < 0.05,
            "MC variance {} vs exact {exact}",
            w.sample_variance()
        );
    }

    #[test]
    fn exact_variance_size_limit_and_empty() {
        let g = RecycleGraph::new(vec![]).unwrap();
        assert_eq!(g.exact_variance(), Some(0.0));
        let big = RecycleGraph::new(vec![RecycleNode::fresh(0.5); 2049]).unwrap();
        assert_eq!(big.exact_variance(), None);
    }

    #[test]
    fn blocked_graph_has_block_count_complexity() {
        let ps = vec![0.5; 12];
        let g = RecycleGraph::blocked(&[4, 4, 4], &ps, 0.2).unwrap();
        assert_eq!(g.partition_complexity(), 2);
        assert_eq!(g.j(), 4);
        let g2 = RecycleGraph::blocked(&[6, 6], &ps, 0.2).unwrap();
        assert_eq!(g2.partition_complexity(), 1);
    }

    #[test]
    fn blocked_validates_shape() {
        assert!(RecycleGraph::blocked(&[2, 2], &[0.5; 5], 0.2).is_err());
        assert!(RecycleGraph::blocked(&[0, 4], &[0.5; 4], 0.2).is_err());
    }

    #[test]
    fn blocked_expectations_respect_block_structure() {
        // Block 0 at p = 1.0, block 1 always recycles: E[x] = 1 for all.
        let mut ps = vec![1.0; 3];
        ps.extend([0.0; 3]);
        let g = RecycleGraph::blocked(&[3, 3], &ps, 0.0).unwrap();
        assert!((g.expected_sum() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_statistic_zero_when_no_recycling() {
        let g = RecycleGraph::new(vec![RecycleNode::fresh(0.5); 6]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let r = g.realize(&mut rng);
        assert_eq!(g.deviation_statistic(&r), 0.0);
    }
}
