//! Streaming statistics, confidence intervals, and rate extraction.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for running mean and variance.
///
/// Numerically stable, mergeable (for parallel trial collection), and
/// allocation-free.
///
/// # Examples
///
/// ```
/// use ld_prob::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 4);
/// assert!((w.mean() - 2.5).abs() < 1e-12);
/// assert!((w.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean; 0 if empty.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// combination); used to combine per-thread statistics.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        *self = Welford {
            count: total,
            mean,
            m2,
        };
    }

    /// A two-sided normal-approximation confidence interval for the mean at
    /// `z` standard errors (`z = 1.96` for 95%).
    pub fn mean_ci(&self, z: f64) -> (f64, f64) {
        let half = z * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

/// An estimate of a Bernoulli proportion with its trial count.
///
/// Used for Monte Carlo estimates of `P^M(G)` and of tail probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// Creates an empty estimate.
    pub fn new() -> Self {
        Proportion {
            successes: 0,
            trials: 0,
        }
    }

    /// Creates an estimate from counts.
    ///
    /// # Panics
    ///
    /// Panics if `successes > trials`.
    pub fn from_counts(successes: u64, trials: u64) -> Self {
        assert!(
            successes <= trials,
            "successes {successes} exceed trials {trials}"
        );
        Proportion { successes, trials }
    }

    /// Records one trial outcome.
    pub fn push(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate `successes / trials`; 0 if no trials.
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Merges another estimate (e.g. from another thread).
    pub fn merge(&mut self, other: &Proportion) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// The Wilson score interval at `z` standard normal quantiles
    /// (`z = 1.96` for 95%). Well-behaved near 0 and 1, unlike the Wald
    /// interval.
    ///
    /// Returns `(0, 1)` if there are no trials.
    pub fn wilson_ci(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.estimate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl Default for Proportion {
    fn default() -> Self {
        Proportion::new()
    }
}

/// The Kolmogorov–Smirnov statistic between an empirical sample and a
/// reference CDF: `sup_x |F_n(x) − F(x)|`.
///
/// Used by the Lemma 4 experiment to quantify how fast the direct-voting
/// tally converges to its normal approximation. Returns 0 for an empty
/// sample.
///
/// # Examples
///
/// ```
/// use ld_prob::stats::ks_statistic;
/// // A sample exactly at the median of the uniform CDF on [0, 1].
/// let d = ks_statistic(&mut [0.5], |x| x.clamp(0.0, 1.0));
/// assert!((d - 0.5).abs() < 1e-12);
/// ```
pub fn ks_statistic<F: Fn(f64) -> f64>(sample: &mut [f64], cdf: F) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    sample.sort_by(|a, b| a.partial_cmp(b).expect("sample values are comparable"));
    let n = sample.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sample.iter().enumerate() {
        let f = cdf(x);
        let before = i as f64 / n;
        let after = (i + 1) as f64 / n;
        d = d.max((f - before).abs()).max((after - f).abs());
    }
    d
}

/// Ordinary least squares on `(x, y)` pairs; returns `(slope, intercept)`.
///
/// Returns `None` with fewer than two distinct x values.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some((slope, intercept))
}

/// Fits `y ≈ C · x^a` by regressing `log y` on `log x`; returns the
/// exponent `a`.
///
/// Points with non-positive coordinates are skipped. Returns `None` when
/// fewer than two usable points remain. Used to extract empirical
/// convergence rates (e.g. how fast the loss in Lemma 3 vanishes with `n`).
pub fn power_law_exponent(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    linear_fit(&logs).map(|(slope, _)| slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_empty() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert_eq!(w.std_error(), 0.0);
    }

    #[test]
    fn welford_single_observation() {
        let w: Welford = [5.0].into_iter().collect();
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin()).collect();
        let (a, b) = xs.split_at(123);
        let mut wa: Welford = a.iter().copied().collect();
        let wb: Welford = b.iter().copied().collect();
        wa.merge(&wb);
        let all: Welford = xs.iter().copied().collect();
        assert_eq!(wa.count(), all.count());
        assert!((wa.mean() - all.mean()).abs() < 1e-10);
        assert!((wa.sample_variance() - all.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut w: Welford = [1.0, 2.0].into_iter().collect();
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn welford_ci_contains_mean() {
        let w: Welford = (0..100).map(|i| i as f64).collect();
        let (lo, hi) = w.mean_ci(1.96);
        assert!(lo < w.mean() && w.mean() < hi);
    }

    #[test]
    fn proportion_estimate_and_counts() {
        let mut p = Proportion::new();
        for i in 0..10 {
            p.push(i % 4 == 0);
        }
        assert_eq!(p.trials(), 10);
        assert_eq!(p.successes(), 3);
        assert!((p.estimate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn proportion_merge() {
        let mut a = Proportion::from_counts(3, 10);
        let b = Proportion::from_counts(7, 10);
        a.merge(&b);
        assert_eq!(a.estimate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn proportion_from_counts_validates() {
        let _ = Proportion::from_counts(5, 3);
    }

    #[test]
    fn wilson_interval_sane() {
        let p = Proportion::from_counts(80, 100);
        let (lo, hi) = p.wilson_ci(1.96);
        assert!(lo > 0.70 && lo < 0.80, "lo = {lo}");
        assert!(hi > 0.80 && hi < 0.90, "hi = {hi}");
        // Degenerate cases stay in [0, 1].
        let zero = Proportion::from_counts(0, 50);
        let (lo, hi) = zero.wilson_ci(1.96);
        assert!(lo == 0.0 && hi < 0.15);
        let all = Proportion::from_counts(50, 50);
        let (lo, hi) = all.wilson_ci(1.96);
        assert!(lo > 0.85 && hi == 1.0);
        assert_eq!(Proportion::new().wilson_ci(1.96), (0.0, 1.0));
    }

    #[test]
    fn ks_statistic_basics() {
        // Empty sample.
        assert_eq!(ks_statistic(&mut [], |_| 0.5), 0.0);
        // Perfectly matched sample: quantiles of the uniform.
        let mut s: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
        let d = ks_statistic(&mut s, |x| x.clamp(0.0, 1.0));
        assert!(
            d <= 0.12,
            "near-uniform sample should have small KS, got {d}"
        );
        // Degenerate mismatch: all mass at 0 against uniform.
        let mut zeros = vec![0.0; 10];
        let d = ks_statistic(&mut zeros, |x| x.clamp(0.0, 1.0));
        assert!((d - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_statistic_detects_shift() {
        // Sample uniform on [0.5, 1.5] against uniform CDF on [0, 1]:
        // KS distance is 0.5.
        let mut s: Vec<f64> = (0..100).map(|i| 0.5 + i as f64 / 100.0).collect();
        let d = ks_statistic(&mut s, |x| x.clamp(0.0, 1.0));
        assert!((d - 0.5).abs() < 0.02, "got {d}");
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let (slope, intercept) = linear_fit(&pts).unwrap();
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept + 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert_eq!(linear_fit(&[]), None);
        assert_eq!(linear_fit(&[(1.0, 1.0)]), None);
        assert_eq!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]), None);
    }

    #[test]
    fn power_law_exponent_recovers_rate() {
        // y = 7 x^{-0.5}
        let pts: Vec<(f64, f64)> = [10.0f64, 100.0, 1000.0, 10_000.0]
            .iter()
            .map(|&x| (x, 7.0 * x.powf(-0.5)))
            .collect();
        let a = power_law_exponent(&pts).unwrap();
        assert!((a + 0.5).abs() < 1e-9, "exponent {a}");
    }

    #[test]
    fn power_law_skips_nonpositive_points() {
        let pts = [(0.0, 1.0), (-1.0, 2.0), (1.0, 0.0)];
        assert_eq!(power_law_exponent(&pts), None);
    }
}
