//! Property pin for the packed coin contract: for arbitrary seeds and
//! p-vectors — sizes up to 4096, deliberately including ragged tails
//! where `n % 64 != 0` — the packed kernel's words, expanded bit by bit,
//! equal the scalar oracle's per-trial `stream_rng(seed, t)` draws, the
//! tail word's spare bits stay zero, and both implementations consume
//! the same number of RNG words (checked with a sentinel draw).

use ld_prob::coins::{draw_scalar_coins, packed_bit, PackedCompetence};
use ld_prob::rng::stream_rng;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A competency vector mixing smooth values with exact 0/1 lanes and
/// repeated small probabilities (exercising the pre-decided, geometric,
/// and bit-plane word kinds in one draw).
fn mixed_ps(n: usize, mix_seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(mix_seed);
    (0..n)
        .map(|_| match rng.gen_range(0u8..8) {
            0 => 0.0,
            1 => 1.0,
            2 => 0.01,
            _ => rng.gen_range(0.0f64..=1.0),
        })
        .collect()
}

/// Nudge `n` off multiples of 64 so the ragged tail word is the common
/// case, per the contract's tail-handling pin.
fn ragged(n: usize) -> usize {
    if n.is_multiple_of(64) {
        n - 1
    } else {
        n
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_words_equal_scalar_draws_bit_for_bit(
        n in 1usize..=4096,
        mix_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ps = mixed_ps(ragged(n), mix_seed);
        let packed = PackedCompetence::new(&ps).expect("valid probabilities");
        prop_assert_eq!(packed.n(), ps.len());
        prop_assert_eq!(packed.words(), ps.len().div_ceil(64));
        let mut words = Vec::new();
        let mut bools = Vec::new();
        for t in 0..3u64 {
            let mut packed_rng = stream_rng(seed, t);
            let mut scalar_rng = stream_rng(seed, t);
            packed.draw_packed(&mut packed_rng, &mut words);
            draw_scalar_coins(&ps, &mut scalar_rng, &mut bools).expect("valid probabilities");
            for (i, &coin) in bools.iter().enumerate() {
                prop_assert_eq!(
                    packed_bit(&words, i),
                    coin,
                    "voter {} of {}, trial {}",
                    i,
                    ps.len(),
                    t
                );
            }
            for i in ps.len()..words.len() * 64 {
                prop_assert!(!packed_bit(&words, i), "ragged tail bit {} set", i);
            }
            // Same word consumption: the next draw from each stream
            // must agree, or one path read more entropy than the other.
            prop_assert_eq!(
                packed_rng.next_u64(),
                scalar_rng.next_u64(),
                "RNG stream desync on trial {}",
                t
            );
        }
    }

    #[test]
    fn uniform_small_p_profiles_stay_pinned_through_the_geometric_path(
        n in 1usize..=4096,
        p_kind in 0u8..3,
        seed in any::<u64>(),
    ) {
        let p = [0.001f64, 0.01, 0.05][p_kind as usize];
        let ps = vec![p; ragged(n).max(1)];
        let packed = PackedCompetence::new(&ps).expect("valid probabilities");
        let mut packed_rng = stream_rng(seed, 0);
        let mut scalar_rng = stream_rng(seed, 0);
        let mut words = Vec::new();
        let mut bools = Vec::new();
        packed.draw_packed(&mut packed_rng, &mut words);
        draw_scalar_coins(&ps, &mut scalar_rng, &mut bools).expect("valid probabilities");
        for (i, &coin) in bools.iter().enumerate() {
            prop_assert_eq!(packed_bit(&words, i), coin, "voter {}", i);
        }
        prop_assert_eq!(packed_rng.next_u64(), scalar_rng.next_u64());
    }
}
