//! Property test: the normal approximation of a weighted Bernoulli sum
//! stays within the Berry–Esseen envelope of the exact Poisson-binomial.
//!
//! This is the theoretical license behind the live engine's O(1)
//! normal-approximation decision probability: Berry–Esseen bounds
//! `sup_x |F(x) − Φ((x-μ)/σ)|`, and the strict-majority decision
//! probability is `1 − F(⌊t/2⌋)`, so the normal estimate evaluated at the
//! same threshold can never stray further than the bound (plus the
//! `1.5e-7` absolute error of the rational-approximation `erf`).

use ld_prob::bounds::berry_esseen_weighted;
use ld_prob::normal::std_normal_cdf;
use ld_prob::poisson_binomial::WeightedBernoulliSum;
use proptest::collection::vec;
use proptest::prelude::*;

/// Absolute error budget of the Abramowitz–Stegun `erf` plus float noise.
const ERF_SLACK: f64 = 1e-6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `|normal_cdf − exact_cdf| ≤ BE bound` at every integer point.
    #[test]
    fn cdf_within_berry_esseen_at_every_point(
        terms in vec((1usize..6, 0.05f64..0.95), 2..14)
    ) {
        let sum = WeightedBernoulliSum::new(&terms).unwrap();
        let bound = berry_esseen_weighted(&terms).unwrap();
        let mean = sum.mean();
        let sd = sum.variance().sqrt();
        let total = sum.total_weight();
        let mut cdf = 0.0;
        for x in 0..=total {
            cdf += sum.pmf(x);
            let normal = std_normal_cdf((x as f64 - mean) / sd);
            prop_assert!(
                (cdf - normal).abs() <= bound + ERF_SLACK,
                "x = {x}: |{cdf} - {normal}| > {bound}"
            );
        }
    }

    /// The decision probability (strict majority of the total weight)
    /// computed from the normal approximation stays within the envelope
    /// of the exact value — the contract the conformance suite pins the
    /// live engine against.
    #[test]
    fn decision_probability_within_berry_esseen(
        terms in vec((1usize..8, 0.05f64..0.95), 2..14)
    ) {
        let sum = WeightedBernoulliSum::new(&terms).unwrap();
        let bound = berry_esseen_weighted(&terms).unwrap();
        let total = sum.total_weight();
        let threshold = total / 2;
        let exact = sum.strict_majority(total);
        let mean = sum.mean();
        let sd = sum.variance().sqrt();
        let normal = 1.0 - std_normal_cdf((threshold as f64 - mean) / sd);
        prop_assert!(
            (exact - normal).abs() <= bound + ERF_SLACK,
            "|{exact} - {normal}| > {bound} for terms {terms:?}"
        );
    }

    /// The bound itself is sane: in (0, 1], and invariant under term order.
    #[test]
    fn bound_is_positive_and_permutation_invariant(
        terms in vec((1usize..6, 0.1f64..0.9), 2..10)
    ) {
        let b = berry_esseen_weighted(&terms).unwrap();
        prop_assert!(b > 0.0 && b <= 1.0);
        let mut reversed = terms.clone();
        reversed.reverse();
        let br = berry_esseen_weighted(&reversed).unwrap();
        prop_assert!((b - br).abs() < 1e-12);
    }
}
