//! Property-based invariants for the probability substrate.

use ld_prob::normal::{erf, std_normal_cdf, NormalApprox};
use ld_prob::poisson_binomial::{brute_force_majority, PoissonBinomial, WeightedBernoulliSum};
use ld_prob::recycle::{RecycleGraph, RecycleNode};
use ld_prob::stats::{linear_fit, Welford};
use proptest::collection::vec;
use proptest::prelude::*;

fn prob() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|k| k as f64 / 1000.0)
}

proptest! {
    /// The Poisson-binomial PMF is a probability distribution and its
    /// moments match the closed forms.
    #[test]
    fn poisson_binomial_is_a_distribution(ps in vec(prob(), 0..40)) {
        let pb = PoissonBinomial::new(&ps).unwrap();
        let total: f64 = pb.pmf_slice().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(pb.pmf_slice().iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
        let mean_pmf: f64 = pb.pmf_slice().iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        prop_assert!((mean_pmf - pb.mean()).abs() < 1e-8);
    }

    /// The weighted DP agrees with exponential brute force on small inputs.
    #[test]
    fn weighted_dp_matches_brute_force(
        terms in vec((1usize..5, prob()), 1..10)
    ) {
        let total: usize = terms.iter().map(|t| t.0).sum();
        let wb = WeightedBernoulliSum::new(&terms).unwrap();
        let brute = brute_force_majority(&terms, total).unwrap();
        prop_assert!((wb.strict_majority(total) - brute).abs() < 1e-9);
    }

    /// Weights of 1 reduce the weighted sum to the Poisson-binomial.
    #[test]
    fn unit_weights_reduce_to_poisson_binomial(ps in vec(prob(), 1..30)) {
        let terms: Vec<(usize, f64)> = ps.iter().map(|&p| (1, p)).collect();
        let wb = WeightedBernoulliSum::new(&terms).unwrap();
        let pb = PoissonBinomial::new(&ps).unwrap();
        for t in 0..=ps.len() {
            prop_assert!((wb.pmf(t) - pb.pmf(t)).abs() < 1e-9, "t = {}", t);
        }
    }

    /// Majority probability is monotone in every competency: raising any
    /// single p_i cannot decrease the probability of a correct majority.
    #[test]
    fn majority_is_monotone_in_competencies(
        ps in vec(prob(), 1..15),
        idx in 0usize..15,
        bump in prob()
    ) {
        let idx = idx % ps.len();
        let mut raised = ps.clone();
        raised[idx] = (raised[idx] + bump).min(1.0);
        let before = PoissonBinomial::new(&ps).unwrap().strict_majority();
        let after = PoissonBinomial::new(&raised).unwrap().strict_majority();
        prop_assert!(after + 1e-9 >= before, "raising p[{}] decreased majority", idx);
    }

    /// erf stays in [-1, 1] and the normal CDF is monotone in its argument.
    #[test]
    fn erf_and_cdf_ranges(x in -50.0f64..50.0, y in -50.0f64..50.0) {
        prop_assert!((-1.0..=1.0).contains(&erf(x)));
        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
        prop_assert!(std_normal_cdf(lo) <= std_normal_cdf(hi) + 1e-12);
    }

    /// The normal approximation of a Bernoulli sum has the exact mean and
    /// variance of the Poisson binomial.
    #[test]
    fn normal_approx_moments_match_exact(ps in vec(prob(), 1..40)) {
        let pb = PoissonBinomial::new(&ps).unwrap();
        let na = NormalApprox::of_bernoulli_sum(&ps);
        prop_assert!((pb.mean() - na.mean).abs() < 1e-9);
        prop_assert!((pb.variance() - na.variance).abs() < 1e-9);
    }

    /// Welford merge is associative-enough: merging any split equals the
    /// sequential computation.
    #[test]
    fn welford_merge_any_split(xs in vec(-100.0f64..100.0, 2..80), cut in 0usize..80) {
        let cut = cut % xs.len();
        let (a, b) = xs.split_at(cut);
        let mut wa: Welford = a.iter().copied().collect();
        let wb: Welford = b.iter().copied().collect();
        wa.merge(&wb);
        let whole: Welford = xs.iter().copied().collect();
        prop_assert_eq!(wa.count(), whole.count());
        prop_assert!((wa.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((wa.sample_variance() - whole.sample_variance()).abs() < 1e-6);
    }

    /// Linear fit is exact on exactly-linear data.
    #[test]
    fn linear_fit_exact_on_lines(slope in -5.0f64..5.0, icept in -5.0f64..5.0) {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, slope * i as f64 + icept)).collect();
        let (s, c) = linear_fit(&pts).unwrap();
        prop_assert!((s - slope).abs() < 1e-6);
        prop_assert!((c - icept).abs() < 1e-6);
    }

    /// Recycle graphs with fresh_prob = 1 everywhere degenerate to
    /// independent Bernoullis: expectation equals Σ p_i and partition
    /// complexity is 0.
    #[test]
    fn recycle_degenerates_to_independent(ps in vec(prob(), 1..30)) {
        let nodes: Vec<RecycleNode> = ps.iter().map(|&p| RecycleNode::fresh(p)).collect();
        let g = RecycleGraph::new(nodes).unwrap();
        prop_assert_eq!(g.partition_complexity(), 0);
        prop_assert!((g.expected_sum() - ps.iter().sum::<f64>()).abs() < 1e-9);
    }

    /// Exact expectations of a recycle graph are always within [0, 1] per
    /// node and prefix sums are nondecreasing.
    #[test]
    fn recycle_expectations_are_probabilities(
        ps in vec(prob(), 2..40),
        fresh in prob(),
        j in 1usize..39
    ) {
        let j = j.min(ps.len() - 1).max(1);
        let g = RecycleGraph::delegation_shaped(&ps, j, fresh).unwrap();
        for &e in g.expectations() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&e));
        }
        let prefix = g.expected_prefix_sums();
        prop_assert!(prefix.windows(2).all(|w| w[1] + 1e-12 >= w[0]));
        prop_assert!((g.expected_sum() - prefix.last().unwrap()).abs() < 1e-9);
    }

    /// Realized sums never exceed n and match the values vector.
    #[test]
    fn recycle_realization_consistency(seed in 0u64..500, n in 2usize..60) {
        use rand::SeedableRng;
        let ps: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) / (n as f64 + 1.0)).collect();
        let g = RecycleGraph::delegation_shaped(&ps, (n / 3).max(1), 0.3).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let r = g.realize(&mut rng);
        prop_assert_eq!(r.values().len(), n);
        prop_assert!(r.sum() <= n);
        prop_assert_eq!(*r.prefix_sums().last().unwrap(), r.sum());
    }
}
