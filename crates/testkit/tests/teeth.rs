//! End-to-end tests of the conformance runner: a clean quick run passes,
//! and an injected tally mutation is detected with a shrunk minimal
//! instance and a usable reproduction command.

use ld_testkit::{run_conformance, ConformanceConfig, Mutation};

fn quick_config() -> ConformanceConfig {
    ConformanceConfig {
        quick: true,
        // The corpus replays full-grid cells too; keep the smoke tests on
        // the quick grid and exercise the corpus separately.
        include_corpus: false,
        ..ConformanceConfig::default()
    }
}

#[test]
fn quick_grid_is_clean() {
    let report = run_conformance(&quick_config());
    assert!(
        report.ok(),
        "conformance mismatches on a clean build: {}",
        report.to_json()
    );
    assert!(report.cells > 0);
    assert!(report.checks_run > 0);
}

#[test]
fn tie_flip_mutation_is_detected_and_shrunk() {
    let cfg = ConformanceConfig {
        mutation: Some(Mutation::TieFlip),
        // The flipped credit only shows on even tallies; direct voting on
        // a complete graph guarantees one.
        case_filter: Some("complete/constant50/direct/n16".to_string()),
        ..quick_config()
    };
    let report = run_conformance(&cfg);
    assert!(
        !report.ok(),
        "tie-flip mutation was NOT detected — the suite has no teeth"
    );
    let tally_mismatch = report
        .mismatches
        .iter()
        .find(|m| m.check == "tally-oracle" || m.check == "tally-simulation")
        .expect("mutation should surface in a tally check");
    assert!(
        tally_mismatch.repro.contains("repro conformance"),
        "mismatch lacks a reproduction command: {:?}",
        tally_mismatch.repro
    );
    assert!(
        tally_mismatch.repro.contains("--mutate tie-flip"),
        "repro must replay the mutation: {:?}",
        tally_mismatch.repro
    );
    let shrunk = tally_mismatch
        .shrunk
        .as_ref()
        .expect("tally mismatches must carry a shrunk instance");
    assert!(
        shrunk.n <= 4,
        "shrunk instance should be tiny, got n = {}: {:?}",
        shrunk.n,
        shrunk.actions
    );
}

#[test]
fn corpus_replays_cleanly() {
    let cfg = ConformanceConfig {
        quick: false,
        case_filter: Some("this-matches-no-grid-cell".to_string()),
        include_corpus: true,
        ..ConformanceConfig::default()
    };
    // The case filter suppresses the main grid; corpus entries still run
    // through the same filter, so this checks the corpus ids parse and
    // the runner counts them.
    let report = run_conformance(&cfg);
    assert_eq!(report.corpus_entries, 10);
}

#[test]
fn only_filter_restricts_checks() {
    let cfg = ConformanceConfig {
        only: Some("weight-conservation".to_string()),
        case_filter: Some("complete/linear".to_string()),
        ..quick_config()
    };
    let report = run_conformance(&cfg);
    assert!(report.ok(), "{}", report.to_json());
    assert!(report.checks_run > 0);
    let bad = ConformanceConfig {
        only: Some("no-such-check".to_string()),
        ..quick_config()
    };
    let report = run_conformance(&bad);
    assert!(!report.ok());
    assert_eq!(report.mismatches[0].check, "config");
}

#[test]
fn only_filter_accepts_a_comma_list() {
    let cfg = ConformanceConfig {
        only: Some("dynamics-oracle,dynamics-replay".to_string()),
        case_filter: Some("complete/linear".to_string()),
        ..quick_config()
    };
    let report = run_conformance(&cfg);
    assert!(report.ok(), "{}", report.to_json());
    assert!(report.checks_run > 0);
    let bad = ConformanceConfig {
        only: Some("dynamics-oracle,no-such-check".to_string()),
        ..quick_config()
    };
    let report = run_conformance(&bad);
    assert!(!report.ok());
    assert_eq!(report.mismatches[0].check, "config");
}
