//! The checked-in regression-seed corpus.
//!
//! Every entry pins a `(seed, cell)` pair that once exposed a bug or
//! guards a subtle code path; `repro conformance` replays all of them on
//! every run in addition to the default grid. To add an entry, take the
//! `--seed`/`--case` pair from a mismatch's reproduction command and
//! append it to `corpus/regressions.json` with a note explaining what it
//! guards.

/// One pinned regression seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Master seed to run the cell under.
    pub seed: u64,
    /// Cell-id substring selecting which grid cells to replay (an empty
    /// string replays the whole grid).
    pub cell: String,
    /// Why this entry exists.
    pub note: String,
}

/// The corpus file, compiled into the binary so the gate cannot drift
/// from the checkout.
const CORPUS_JSON: &str = include_str!("../corpus/regressions.json");

/// Parses the checked-in corpus.
///
/// The file is a JSON array of flat `{"seed": N, "cell": "...",
/// "note": "..."}` objects; it is parsed with a small purpose-built
/// reader rather than a JSON library so the conformance gate works even
/// in stripped-down offline builds.
///
/// # Errors
///
/// Returns the parse error as a string; the conformance runner reports
/// that as a mismatch rather than panicking.
pub fn entries() -> Result<Vec<CorpusEntry>, String> {
    parse(CORPUS_JSON).map_err(|e| format!("corpus/regressions.json: {e}"))
}

/// Parses the corpus JSON subset: an array of flat objects whose values
/// are unsigned integers or strings (with `\"`, `\\`, `\n`, `\t`
/// escapes). Unknown keys are rejected so typos cannot silently drop an
/// entry's seed.
fn parse(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    p.expect('[')?;
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(']') {
            break;
        }
        if !out.is_empty() {
            p.expect(',')?;
            p.skip_ws();
            // Tolerate a trailing comma before the closing bracket.
            if p.eat(']') {
                break;
            }
        }
        out.push(p.object()?);
    }
    p.skip_ws();
    if let Some((i, c)) = p.chars.next() {
        return Err(format!("trailing input {c:?} at byte {i}"));
    }
    Ok(out)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .chars
            .peek()
            .is_some_and(|&(_, c)| c.is_ascii_whitespace())
        {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if self.chars.peek().is_some_and(|&(_, c)| c == want) {
            self.chars.next();
            return true;
        }
        false
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.skip_ws();
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(s),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => s.push('"'),
                    Some((_, '\\')) => s.push('\\'),
                    Some((_, 'n')) => s.push('\n'),
                    Some((_, 't')) => s.push('\t'),
                    other => {
                        return Err(format!("unsupported escape at byte {i}: {other:?}"));
                    }
                },
                Some((_, c)) => s.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = match self.chars.peek() {
            Some(&(i, c)) if c.is_ascii_digit() => i,
            Some(&(i, c)) => return Err(format!("expected a number at byte {i}, found {c:?}")),
            None => return Err("expected a number, found end of input".to_string()),
        };
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if !c.is_ascii_digit() {
                break;
            }
            end = i + c.len_utf8();
            self.chars.next();
        }
        self.text[start..end]
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn object(&mut self) -> Result<CorpusEntry, String> {
        self.skip_ws();
        self.expect('{')?;
        let mut seed: Option<u64> = None;
        let mut cell: Option<String> = None;
        let mut note: Option<String> = None;
        let mut first = true;
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            if !first {
                self.expect(',')?;
                self.skip_ws();
                if self.eat('}') {
                    break;
                }
            }
            first = false;
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            match key.as_str() {
                "seed" => seed = Some(self.number()?),
                "cell" => cell = Some(self.string()?),
                "note" => note = Some(self.string()?),
                other => return Err(format!("unknown corpus key {other:?}")),
            }
        }
        Ok(CorpusEntry {
            seed: seed.ok_or("corpus entry missing \"seed\"")?,
            cell: cell.ok_or("corpus entry missing \"cell\"")?,
            note: note.ok_or("corpus entry missing \"note\"")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_and_has_notes() {
        let entries = entries().expect("checked-in corpus must parse");
        assert!(!entries.is_empty());
        for e in &entries {
            assert!(!e.note.is_empty(), "entry {:?} lacks a note", e.cell);
        }
    }

    #[test]
    fn parser_accepts_the_documented_subset() {
        let parsed = parse(
            r#"[
                {"seed": 7, "cell": "complete/linear", "note": "a \"quoted\" note"},
                {"note": "key order is free", "seed": 12345678901234567890, "cell": ""},
            ]"#,
        )
        .expect("subset must parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].seed, 7);
        assert_eq!(parsed[0].note, "a \"quoted\" note");
        assert_eq!(parsed[1].seed, 12_345_678_901_234_567_890);
        assert_eq!(parsed[1].cell, "");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("[{\"seed\": 1}]").is_err(), "missing keys");
        assert!(parse("[{\"sede\": 1}]").is_err(), "typoed key");
        assert!(parse("[{}] garbage").is_err(), "trailing input");
        assert!(parse("[{\"seed\": -1, \"cell\": \"\", \"note\": \"x\"}]").is_err());
    }
}
