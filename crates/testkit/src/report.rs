//! Machine-readable conformance reports.

use ld_core::delegation::Action;
use serde::Serialize;

/// A minimal failing instance produced by the shrinker, in a compact
/// human-readable encoding (`V` vote, `A` abstain, `D3` delegate to 3,
/// `M1+2` multi-delegate to 1 and 2).
#[derive(Debug, Clone, Serialize)]
pub struct ShrunkInstance {
    /// Electorate size of the shrunk instance.
    pub n: usize,
    /// Per-voter actions in the compact encoding.
    pub actions: Vec<String>,
    /// Per-voter competencies.
    pub competencies: Vec<f64>,
    /// The check's failure detail on the shrunk instance.
    pub detail: String,
}

impl ShrunkInstance {
    /// Encodes a shrunk `(actions, competencies)` pair.
    pub fn from_parts(actions: &[Action], ps: &[f64], detail: String) -> Self {
        ShrunkInstance {
            n: actions.len(),
            actions: actions.iter().map(encode_action).collect(),
            competencies: ps.to_vec(),
            detail,
        }
    }
}

/// Compact single-token encoding of one action.
pub fn encode_action(a: &Action) -> String {
    match a {
        Action::Vote => "V".to_string(),
        Action::Abstain => "A".to_string(),
        Action::Delegate(t) => format!("D{t}"),
        Action::DelegateMany(ts) => {
            let parts: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
            format!("M{}", parts.join("+"))
        }
        other => format!("{other:?}"),
    }
}

/// One conformance mismatch: which check failed on which cell, the
/// shrunk minimal instance when the check is shrinkable, and a one-line
/// command that reproduces exactly this failure.
#[derive(Debug, Clone, Serialize)]
pub struct Mismatch {
    /// Check identifier (e.g. `tally-oracle`).
    pub check: String,
    /// Cell identifier (e.g. `complete/linear/direct/n16`).
    pub cell: String,
    /// The cell's derived seed.
    pub seed: u64,
    /// What disagreed, with both values.
    pub detail: String,
    /// Minimal failing instance, when the check supports shrinking.
    pub shrunk: Option<ShrunkInstance>,
    /// One-line reproduction command.
    pub repro: String,
}

/// The full result of a conformance run.
#[derive(Debug, Clone, Serialize)]
pub struct ConformanceReport {
    /// Master seed the run derived everything from.
    pub master_seed: u64,
    /// Whether the quick grid was used.
    pub quick: bool,
    /// Name of the injected mutation, if any.
    pub mutation: Option<String>,
    /// Grid cells generated.
    pub cells: usize,
    /// Individual checks executed.
    pub checks_run: usize,
    /// Checks skipped as not applicable to their cell.
    pub checks_skipped: usize,
    /// Regression-corpus entries replayed.
    pub corpus_entries: usize,
    /// All mismatches found, in discovery order.
    pub mismatches: Vec<Mismatch>,
}

impl ConformanceReport {
    /// Whether the run found no mismatches.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Pretty-printed JSON for `--json` output and CI artifacts.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\": \"failed to serialize report: {e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_encoding_is_compact() {
        assert_eq!(encode_action(&Action::Vote), "V");
        assert_eq!(encode_action(&Action::Abstain), "A");
        assert_eq!(encode_action(&Action::Delegate(7)), "D7");
        assert_eq!(encode_action(&Action::DelegateMany(vec![1, 2])), "M1+2");
    }

    #[test]
    fn report_serializes_and_reports_ok() {
        let report = ConformanceReport {
            master_seed: 1,
            quick: true,
            mutation: None,
            cells: 0,
            checks_run: 0,
            checks_skipped: 0,
            corpus_entries: 0,
            mismatches: vec![],
        };
        assert!(report.ok());
        let json = report.to_json();
        // The offline serde_json stub emits a fixed placeholder; only
        // assert on real JSON when a real serializer produced it.
        if !json.contains("offline-serde-json-stub") {
            assert!(json.contains("\"master_seed\": 1"));
        }
    }
}
