//! `ld-testkit` — the conformance authority for the liquid-democracy
//! workspace.
//!
//! The optimised implementations across `ld-core`, `ld-prob` and
//! `ld-live` are validated here against deliberately naive reference
//! oracles and metamorphic properties:
//!
//! * [`oracle`] — a recursive `O(n²)` resolver, brute-force exact
//!   tallies over all outcome vectors, and a direct-simulation
//!   estimator; slow, obvious, and trusted.
//! * [`gen`] — a seeded structured generator sweeping the grid of
//!   topology × competency profile × mechanism × size, with per-cell
//!   seeds that are independent of the grid's composition.
//! * [`checks`] — the differential and metamorphic checks themselves
//!   (resolver vs oracle, tally vs brute force, live replay vs
//!   from-scratch, normal approximation within the Berry–Esseen
//!   envelope, relabeling equivariance, conservation, monotonicity,
//!   mechanism locality).
//! * [`shrink`] — greedy structural shrinking so every mismatch is
//!   reported as a minimal failing instance.
//! * [`corpus`] — a checked-in regression-seed corpus replayed on every
//!   run.
//!
//! The `repro conformance` subcommand in `ld-sim` drives
//! [`run_conformance`] and turns the resulting
//! [`report::ConformanceReport`] into a CI gate; `--mutate tie-flip`
//! injects a deliberate tally bug that the suite must catch, proving the
//! gate has teeth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod report;
pub mod shrink;

use checks::{
    CheckContext, CheckId, CheckOutcome, CoinsImpl, CsrImpl, DynamicsImpl, RankedImpl, ServeImpl,
    TallyImpl, WalImpl,
};
use gen::{default_grid, CellSpec};
use report::{ConformanceReport, Mismatch, ShrunkInstance};

/// A deliberate bug injected into the implementation under test, used
/// to verify the suite detects it (mutation smoke testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Invert the tie-break credit in the exact tally.
    TieFlip,
    /// Skew the CSR forest's interior group offsets by one slot, shifting
    /// a vote between consecutive sinks (caught by the `csr-*-oracle`
    /// checks).
    CsrOffset,
    /// Skip the frame CRC32 comparison when scanning the write-ahead
    /// log, so corrupted records decode "successfully" (caught by the
    /// `wal-crash-oracle` check).
    WalCrc,
    /// Route one delegating voter to the wrong shard of the `ld-serve`
    /// election, so the canonical owner never sees the delegation
    /// (caught by the `serve-replay` check).
    ShardRoute,
    /// Start the packed coin kernel's bit-plane threshold comparison one
    /// plane late, skipping the most significant quantized-probability
    /// bit (caught by the `packed-tally-oracle` check).
    PackedThreshold,
    /// Scan best-response candidate targets in descending index order,
    /// so exact score ties resolve to the highest-index target instead
    /// of the canonical lowest (caught by the `dynamics-oracle` check).
    BrTiebreak,
    /// Reverse every ranked preference list before the delegation rules
    /// consult it, so selections ignore the submitted rank order (caught
    /// by the `ranked-resolve-oracle` check).
    RankOrder,
}

impl Mutation {
    /// Every known mutation.
    pub fn all() -> [Mutation; 7] {
        [
            Mutation::TieFlip,
            Mutation::CsrOffset,
            Mutation::WalCrc,
            Mutation::ShardRoute,
            Mutation::PackedThreshold,
            Mutation::BrTiebreak,
            Mutation::RankOrder,
        ]
    }

    /// Stable identifier, as accepted by `--mutate`.
    pub fn id(self) -> &'static str {
        match self {
            Mutation::TieFlip => "tie-flip",
            Mutation::CsrOffset => "csr-offset",
            Mutation::WalCrc => "wal-crc",
            Mutation::ShardRoute => "shard-route",
            Mutation::PackedThreshold => "packed-threshold",
            Mutation::BrTiebreak => "br-tiebreak",
            Mutation::RankOrder => "rank-order",
        }
    }

    /// Parses a mutation identifier.
    pub fn parse(s: &str) -> Option<Mutation> {
        Mutation::all().into_iter().find(|m| m.id() == s)
    }
}

/// Configuration for one conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceConfig {
    /// Master seed; every cell derives its own stream from it.
    pub seed: u64,
    /// Use the reduced quick grid (the CI gate).
    pub quick: bool,
    /// Run only the checks in this comma-separated id list.
    pub only: Option<String>,
    /// Run only cells whose id contains this substring.
    pub case_filter: Option<String>,
    /// Injected mutation, if any.
    pub mutation: Option<Mutation>,
    /// Replay the checked-in regression corpus.
    pub include_corpus: bool,
}

impl Default for ConformanceConfig {
    fn default() -> Self {
        ConformanceConfig {
            seed: 0x7E57_0C0D,
            quick: false,
            only: None,
            case_filter: None,
            mutation: None,
            include_corpus: true,
        }
    }
}

impl ConformanceConfig {
    /// The check filter, parsed from a comma-separated id list; `Err`
    /// carries the first unknown id.
    fn only_check(&self) -> Result<Option<Vec<CheckId>>, String> {
        match &self.only {
            None => Ok(None),
            Some(s) => {
                let list = s
                    .split(',')
                    .map(str::trim)
                    .filter(|part| !part.is_empty())
                    .map(|part| {
                        CheckId::parse(part).ok_or_else(|| format!("unknown check id {part:?}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if list.is_empty() {
                    return Err(format!("empty check id list {s:?}"));
                }
                Ok(Some(list))
            }
        }
    }

    /// The reproduction command for a mismatch under this config.
    fn repro_command(&self, cell: &str, check: CheckId, seed: u64) -> String {
        let mut cmd = format!(
            "repro conformance --seed {seed} --case {cell} --only {}",
            check.id()
        );
        if let Some(m) = self.mutation {
            cmd.push_str(&format!(" --mutate {}", m.id()));
        }
        cmd
    }
}

/// Runs the conformance suite: the default grid under the master seed,
/// plus every regression-corpus entry, shrinking each mismatch to a
/// minimal failing instance.
pub fn run_conformance(cfg: &ConformanceConfig) -> ConformanceReport {
    let mut rep = ConformanceReport {
        master_seed: cfg.seed,
        quick: cfg.quick,
        mutation: cfg.mutation.map(|m| m.id().to_string()),
        cells: 0,
        checks_run: 0,
        checks_skipped: 0,
        corpus_entries: 0,
        mismatches: Vec::new(),
    };
    let only = match cfg.only_check() {
        Ok(o) => o,
        Err(e) => {
            rep.mismatches.push(Mismatch {
                check: "config".to_string(),
                cell: String::new(),
                seed: cfg.seed,
                detail: e,
                shrunk: None,
                repro: "repro conformance --help".to_string(),
            });
            return rep;
        }
    };
    let ctx = CheckContext {
        tally: match cfg.mutation {
            Some(Mutation::TieFlip) => TallyImpl::TieFlipped,
            _ => TallyImpl::Real,
        },
        csr: match cfg.mutation {
            Some(Mutation::CsrOffset) => CsrImpl::OffsetSkewed,
            _ => CsrImpl::Real,
        },
        wal: match cfg.mutation {
            Some(Mutation::WalCrc) => WalImpl::CrcSkipped,
            _ => WalImpl::Real,
        },
        serve: match cfg.mutation {
            Some(Mutation::ShardRoute) => ServeImpl::Misrouted,
            _ => ServeImpl::Real,
        },
        coins: match cfg.mutation {
            Some(Mutation::PackedThreshold) => CoinsImpl::ThresholdSkewed,
            _ => CoinsImpl::Real,
        },
        dynamics: match cfg.mutation {
            Some(Mutation::BrTiebreak) => DynamicsImpl::TiebreakSkewed,
            _ => DynamicsImpl::Real,
        },
        ranked: match cfg.mutation {
            Some(Mutation::RankOrder) => RankedImpl::RankOrderReversed,
            _ => RankedImpl::Real,
        },
    };
    let grid = default_grid(cfg.quick);
    for spec in &grid {
        run_cell(spec, cfg.seed, cfg, only.as_deref(), &ctx, &mut rep);
    }
    if cfg.include_corpus {
        match corpus::entries() {
            Ok(entries) => {
                for entry in entries {
                    let mut replayed = 0usize;
                    for spec in grid.iter().filter(|s| s.id().contains(&entry.cell)) {
                        run_cell(spec, entry.seed, cfg, only.as_deref(), &ctx, &mut rep);
                        replayed += 1;
                    }
                    rep.corpus_entries += 1;
                    if replayed == 0 {
                        rep.mismatches.push(Mismatch {
                            check: "corpus".to_string(),
                            cell: entry.cell.clone(),
                            seed: entry.seed,
                            detail: format!(
                                "corpus entry matches no grid cell ({}); fix the cell id",
                                entry.note
                            ),
                            shrunk: None,
                            repro: "repro conformance".to_string(),
                        });
                    }
                }
            }
            Err(e) => rep.mismatches.push(Mismatch {
                check: "corpus".to_string(),
                cell: String::new(),
                seed: cfg.seed,
                detail: e,
                shrunk: None,
                repro: "repro conformance".to_string(),
            }),
        }
    }
    rep
}

/// Runs every applicable check on one grid cell under `master`.
fn run_cell(
    spec: &CellSpec,
    master: u64,
    cfg: &ConformanceConfig,
    only: Option<&[CheckId]>,
    ctx: &CheckContext,
    rep: &mut ConformanceReport,
) {
    let cell_id = spec.id();
    if let Some(filter) = &cfg.case_filter {
        if !cell_id.contains(filter.as_str()) {
            return;
        }
    }
    let case = match spec.build(master) {
        Ok(c) => c,
        Err(e) => {
            rep.mismatches.push(Mismatch {
                check: "generation".to_string(),
                cell: cell_id,
                seed: master,
                detail: format!("cell failed to generate: {e}"),
                shrunk: None,
                repro: format!("repro conformance --seed {master} --case {}", spec.id()),
            });
            return;
        }
    };
    rep.cells += 1;
    ld_obs::counter("testkit.instances").incr();
    for check in CheckId::all() {
        if let Some(list) = only {
            if !list.contains(&check) {
                continue;
            }
        }
        let _check_span = ld_obs::span(&format!("testkit.check.{}_ns", check.id()));
        match checks::run_check(check, &case, ctx) {
            CheckOutcome::Pass => rep.checks_run += 1,
            CheckOutcome::Skip(_) => rep.checks_skipped += 1,
            CheckOutcome::Fail(detail) => {
                rep.checks_run += 1;
                let shrunk = shrink::shrink_failure(
                    check,
                    case.dg.actions(),
                    case.instance.profile().as_slice(),
                    case.seed,
                    ctx,
                )
                .map(|s| ShrunkInstance::from_parts(&s.actions, &s.ps, s.detail));
                rep.mismatches.push(Mismatch {
                    check: check.id().to_string(),
                    cell: cell_id.clone(),
                    seed: master,
                    detail,
                    shrunk,
                    repro: cfg.repro_command(&cell_id, check, master),
                });
            }
        }
    }
}
