//! Differential and metamorphic conformance checks.
//!
//! Each check compares an optimised implementation against a naive
//! oracle ([`crate::oracle`]) or asserts a metamorphic property the
//! semantics guarantee (relabeling equivariance, weight conservation,
//! monotonicity, mechanism locality). Checks are pure functions of a
//! generated case plus a [`CheckContext`], which selects the real tally
//! or a deliberately mutated one — the mutation is how CI proves the
//! suite has teeth.

use crate::gen::{ranked_ballots, Case, ALPHA};
use crate::oracle::{self, OracleOutcome};
use ld_core::csr::CsrForest;
use ld_core::csr::PackedSinkWeights;
use ld_core::delegation::{Action, DelegationGraph, Resolver};
use ld_core::ranked::{
    DelegationRule, RankedBallot, RankedProfile, ReferenceResolver, ResolutionRule, MAX_RANKS,
};
use ld_core::tally::{exact_correct_probability, sample_decision, TieBreak};
use ld_core::{CompetencyProfile, CoreError, ProblemInstance};
use ld_graph::generators;
use ld_graph::Graph;
use ld_live::dynamics::{
    run_dynamics, state_hash, DynamicsSpec, DynamicsView, MoveRule, Termination, TieBreakRule,
};
use ld_live::ranked::RankedMirror;
use ld_live::{LiveEngine, Update};
use ld_prob::bounds::berry_esseen_weighted;
use ld_prob::coins::{draw_scalar_coins, packed_bit, PackedCompetence};
use ld_prob::normal::std_normal_cdf;
use ld_prob::poisson_binomial::{PoissonBinomial, WeightedBernoulliSum};
use ld_prob::rng::{split_seed, stream_rng};
use rand::Rng;

/// Which tally implementation the checks exercise.
///
/// `TieFlipped` is a deliberate bug — the tie-break credit is inverted —
/// injected by `--mutate tie-flip` so CI can verify the differential
/// suite actually detects a wrong tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TallyImpl {
    /// The production tally.
    Real,
    /// Mutant: exact ties are credited `1 − credit` instead of `credit`.
    TieFlipped,
}

/// Which CSR kernel build the checks exercise.
///
/// `OffsetSkewed` is a deliberate bug — every interior group boundary in
/// the CSR offsets section is pulled down one slot, shifting a vote
/// between consecutive sinks — injected by `--mutate csr-offset` so CI
/// can verify the differential kernel checks actually detect a wrong
/// flat layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrImpl {
    /// The production CSR kernels.
    Real,
    /// Mutant: interior offsets off by one
    /// ([`CsrForest::skew_offsets_for_tests`]).
    OffsetSkewed,
}

/// Which WAL scanner the crash oracle exercises.
///
/// `CrcSkipped` is a deliberate bug — a testkit-local reimplementation
/// of the record scanner that trusts frame lengths and never verifies
/// the stored CRC32 — injected by `--mutate wal-crc` so CI can verify
/// the crash oracle actually detects silently-corrupted log records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalImpl {
    /// The production scanner (`ld_store::wal::scan_records`).
    Real,
    /// Mutant: frame CRCs are never checked.
    CrcSkipped,
}

/// Which service routing the serve-replay check exercises.
///
/// `Misrouted` is a deliberate bug — one delegating voter is hashed to
/// the wrong shard, so the canonical owner never learns of the
/// delegation — injected by `--mutate shard-route` so CI can verify the
/// sharded-vs-oracle differential actually detects a routing fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeImpl {
    /// The production `shard_of` routing.
    Real,
    /// Mutant: the first finally-delegating voter lands on the wrong
    /// shard (`ElectionConfig::misroute`).
    Misrouted,
}

/// Which packed coin kernel the packed-tally differential exercises.
///
/// `ThresholdSkewed` is a deliberate bug — the bit-plane threshold
/// comparison starts one plane late, skipping the most significant
/// quantized-probability bit — injected by `--mutate packed-threshold`
/// so CI can verify the packed-vs-scalar differential actually detects
/// a wrong 64-wide kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinsImpl {
    /// The production packed coin kernel.
    Real,
    /// Mutant: plane loop off by one
    /// (`PackedCompetence::skew_threshold_for_tests`).
    ThresholdSkewed,
}

/// Which best-response tie-break the dynamics differential exercises.
///
/// `TiebreakSkewed` is a deliberate bug — candidate targets are scanned
/// in descending index order, so exact score ties resolve to the
/// highest-index target instead of the canonical lowest — injected by
/// `--mutate br-tiebreak` so CI can verify the `dynamics-oracle`
/// differential actually detects a wrong tie-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicsImpl {
    /// The production canonical tie-break.
    Real,
    /// Mutant: ties resolve to the highest-index target
    /// ([`TieBreakRule::SkewedForTests`]).
    TiebreakSkewed,
}

/// Which ranked preference ordering the ranked checks exercise.
///
/// `RankOrderReversed` is a deliberate bug — the delegation rules
/// consult every preference list back to front
/// ([`RankedProfile::reverse_ranks_for_tests`]) — injected by
/// `--mutate rank-order` so CI can verify the `ranked-resolve-oracle`
/// differential actually detects a rule that ignores the submitted
/// rank order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankedImpl {
    /// The production rank order.
    Real,
    /// Mutant: every preference list is reversed before selection.
    RankOrderReversed,
}

/// Shared configuration threaded through every check.
#[derive(Debug, Clone, Copy)]
pub struct CheckContext {
    /// Tally implementation under test.
    pub tally: TallyImpl,
    /// CSR kernel build under test.
    pub csr: CsrImpl,
    /// WAL scanner under test.
    pub wal: WalImpl,
    /// Service shard routing under test.
    pub serve: ServeImpl,
    /// Packed coin kernel under test.
    pub coins: CoinsImpl,
    /// Best-response tie-break under test.
    pub dynamics: DynamicsImpl,
    /// Ranked preference ordering under test.
    pub ranked: RankedImpl,
}

/// Result of one check on one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The property held.
    Pass,
    /// The check does not apply to this case (reason attached).
    Skip(&'static str),
    /// The property failed, with a diagnostic naming both sides.
    Fail(String),
}

/// Identifiers for every conformance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckId {
    /// Iterative resolver vs the recursive `O(n²)` oracle.
    ResolveOracle,
    /// `resolve()` is deterministic and agrees with `resolve_with`.
    ResolveDeterminism,
    /// Σ sink weights + discarded = n, plus sink-list invariants.
    WeightConservation,
    /// Exact DP tally vs brute-force enumeration of outcome vectors.
    TallyOracle,
    /// Exact tally vs direct Monte Carlo simulation.
    TallySimulation,
    /// `sample_decision` vs exact coin-vector enumeration (n ≤ 12).
    SampleOracle,
    /// Live engine replay vs from-scratch resolution and tally.
    LiveReplay,
    /// Normal approximation within the Berry–Esseen envelope of the
    /// exact Poisson-binomial.
    NormalEnvelope,
    /// Voter-relabeling equivariance of resolution and tally.
    RelabelEquivariance,
    /// P[correct] under direct voting is monotone in competency.
    Monotonicity,
    /// Mechanism choices are unchanged by edits outside the voter's
    /// neighbourhood.
    Locality,
    /// Flat CSR resolve (arena layout, offsets, memberships) vs the
    /// recursive `O(n²)` oracle.
    CsrResolveOracle,
    /// CSR structure-of-arrays coin-fold tally vs a naive per-voter walk
    /// over the oracle's sink assignments, plus the CSR exact tally vs
    /// the `Resolution` path.
    CsrTallyOracle,
    /// Bit-packed 64-wide coin kernel and weighted fold vs the scalar
    /// oracle: packed words expanded bit by bit must equal the scalar
    /// per-voter draws, the plane fold must equal the scalar fold and a
    /// naive per-voter walk, and (for `n ≤ 12`) the majority probability
    /// integrated by the packed fold over all `2^n` coin vectors must
    /// equal the `O(2^n)` brute-force oracle.
    PackedTallyOracle,
    /// WAL crash oracle: the update stream is framed through the
    /// `ld-store` codec, then the log is crashed at every byte offset —
    /// the scanned prefix must replay (streamed and batched) to states
    /// bit-identical to from-scratch resolution, and corrupted records
    /// must be caught by the frame CRC.
    WalCrashOracle,
    /// Service conformance: the same update stream driven through the
    /// sharded `ld-serve` election (batched ingest, cross-shard merge,
    /// epoch publish) must reproduce the streamed replay, the batched
    /// replay, and from-scratch resolution exactly.
    ServeReplay,
    /// Best-response dynamics vs a brute-force oracle (`n ≤ 12`): every
    /// round's proposed moves (each voter's full candidate set enumerated
    /// against the naive `O(n²)` resolver), the sequential acceptance
    /// bits, the post-round states, the fixpoint/cycle verdict, and the
    /// round count must all match the fast loop exactly.
    DynamicsOracle,
    /// Dynamics trajectory replay: the recorded per-round moves replayed
    /// through `LiveEngine` streamed and batched must agree with each
    /// other, with from-scratch resolution, and with the recorded state
    /// hash at every round boundary; a crash at a seeded WAL operation
    /// (via the existing `FaultPlan`) must recover to a bit-identical
    /// continuation.
    DynamicsReplay,
    /// Ranked resolution vs a brute-force assignment oracle: ballots are
    /// derived deterministically from the case, both delegation rules
    /// are selected through both `ResolutionRule` backends
    /// (bit-identical), single-edge profiles must reproduce the legacy
    /// `resolve` result (including error precedence) exactly, chosen
    /// ranks must cite the *submitted* preference order, the exhausted
    /// set must equal the unattainable fixpoint, and (for `n ≤ 10`)
    /// MinDepth depths and the MinSum rank total must match the
    /// enumeration of every valid cycle-free assignment.
    RankedResolveOracle,
    /// Ranked churn replay: a `RankedMirror` fed seeded ballot edits
    /// must stay in lockstep with from-scratch selection and
    /// resolution — engine state bit-identical, reported change counts
    /// exact, internal forest invariants intact — after every edit.
    RankedLiveReplay,
}

impl CheckId {
    /// All checks, in execution order.
    pub fn all() -> [CheckId; 20] {
        [
            CheckId::ResolveOracle,
            CheckId::ResolveDeterminism,
            CheckId::WeightConservation,
            CheckId::TallyOracle,
            CheckId::TallySimulation,
            CheckId::SampleOracle,
            CheckId::LiveReplay,
            CheckId::NormalEnvelope,
            CheckId::RelabelEquivariance,
            CheckId::Monotonicity,
            CheckId::Locality,
            CheckId::CsrResolveOracle,
            CheckId::CsrTallyOracle,
            CheckId::PackedTallyOracle,
            CheckId::WalCrashOracle,
            CheckId::ServeReplay,
            CheckId::DynamicsOracle,
            CheckId::DynamicsReplay,
            CheckId::RankedResolveOracle,
            CheckId::RankedLiveReplay,
        ]
    }

    /// Stable kebab-case identifier, used in reports and `--only`.
    pub fn id(self) -> &'static str {
        match self {
            CheckId::ResolveOracle => "resolve-oracle",
            CheckId::ResolveDeterminism => "resolve-determinism",
            CheckId::WeightConservation => "weight-conservation",
            CheckId::TallyOracle => "tally-oracle",
            CheckId::TallySimulation => "tally-simulation",
            CheckId::SampleOracle => "sample-oracle",
            CheckId::LiveReplay => "live-replay",
            CheckId::NormalEnvelope => "normal-envelope",
            CheckId::RelabelEquivariance => "relabel-equivariance",
            CheckId::Monotonicity => "monotonicity",
            CheckId::Locality => "locality",
            CheckId::CsrResolveOracle => "csr-resolve-oracle",
            CheckId::CsrTallyOracle => "csr-tally-oracle",
            CheckId::PackedTallyOracle => "packed-tally-oracle",
            CheckId::WalCrashOracle => "wal-crash-oracle",
            CheckId::ServeReplay => "serve-replay",
            CheckId::DynamicsOracle => "dynamics-oracle",
            CheckId::DynamicsReplay => "dynamics-replay",
            CheckId::RankedResolveOracle => "ranked-resolve-oracle",
            CheckId::RankedLiveReplay => "ranked-live-replay",
        }
    }

    /// Parses a check identifier.
    pub fn parse(s: &str) -> Option<CheckId> {
        CheckId::all().into_iter().find(|c| c.id() == s)
    }

    /// Whether the check is a pure function of `(actions, competencies)`
    /// and therefore amenable to structural shrinking.
    pub fn shrinkable(self) -> bool {
        !matches!(self, CheckId::Locality)
    }
}

/// Runs one check on a generated case.
pub fn run_check(check: CheckId, case: &Case, ctx: &CheckContext) -> CheckOutcome {
    match check {
        CheckId::Locality => check_locality(case),
        _ => recheck_structural(
            check,
            case.dg.actions(),
            case.instance.profile().as_slice(),
            case.seed,
            ctx,
        ),
    }
}

/// Re-runs a structural check on a bare `(actions, competencies)` pair —
/// the entry point the shrinker drives.
pub fn recheck_structural(
    check: CheckId,
    actions: &[Action],
    ps: &[f64],
    seed: u64,
    ctx: &CheckContext,
) -> CheckOutcome {
    match check {
        CheckId::ResolveOracle => check_resolve_oracle(actions),
        CheckId::ResolveDeterminism => check_resolve_determinism(actions),
        CheckId::WeightConservation => check_weight_conservation(actions),
        CheckId::TallyOracle => check_tally_oracle(actions, ps, ctx),
        CheckId::TallySimulation => check_tally_simulation(actions, ps, seed, ctx),
        CheckId::SampleOracle => check_sample_oracle(actions, ps, seed),
        CheckId::LiveReplay => check_live_replay(actions, ps),
        CheckId::NormalEnvelope => check_normal_envelope(actions, ps),
        CheckId::RelabelEquivariance => check_relabel_equivariance(actions, ps, seed),
        CheckId::Monotonicity => check_monotonicity(ps),
        CheckId::Locality => CheckOutcome::Skip("locality needs the full instance and mechanism"),
        CheckId::CsrResolveOracle => check_csr_resolve_oracle(actions, ctx),
        CheckId::CsrTallyOracle => check_csr_tally_oracle(actions, ps, seed, ctx),
        CheckId::PackedTallyOracle => check_packed_tally_oracle(actions, ps, seed, ctx),
        CheckId::WalCrashOracle => check_wal_crash_oracle(actions, ps, seed, ctx),
        CheckId::ServeReplay => check_serve_replay(actions, ps, seed, ctx),
        CheckId::DynamicsOracle => check_dynamics_oracle(actions, ps, ctx),
        CheckId::DynamicsReplay => check_dynamics_replay(actions, ps, seed),
        CheckId::RankedResolveOracle => check_ranked_resolve_oracle(actions, seed, ctx),
        CheckId::RankedLiveReplay => check_ranked_live_replay(actions, ps, seed, ctx),
    }
}

/// Slack for comparisons of two exact `f64` computations.
const EXACT_EPS: f64 = 1e-9;
/// Absolute error budget of the rational-approximation `erf`.
const ERF_SLACK: f64 = 1e-6;

fn check_resolve_oracle(actions: &[Action]) -> CheckOutcome {
    let dg = DelegationGraph::new(actions.to_vec());
    let system = dg.resolve();
    let reference = oracle::resolve_recursive(actions);
    match (system, reference) {
        (Ok(res), OracleOutcome::Resolved(orc)) => {
            if res.sink_assignments() != orc.sink_of.as_slice() {
                return CheckOutcome::Fail(format!(
                    "sink assignments differ: system {:?} vs oracle {:?}",
                    res.sink_assignments(),
                    orc.sink_of
                ));
            }
            if res.weights() != orc.weight.as_slice() {
                return CheckOutcome::Fail(format!(
                    "weights differ: system {:?} vs oracle {:?}",
                    res.weights(),
                    orc.weight
                ));
            }
            if res.discarded() != orc.discarded {
                return CheckOutcome::Fail(format!(
                    "discarded differ: system {} vs oracle {}",
                    res.discarded(),
                    orc.discarded
                ));
            }
            if res.longest_chain() != orc.longest_chain {
                return CheckOutcome::Fail(format!(
                    "longest chain differs: system {} vs oracle {}",
                    res.longest_chain(),
                    orc.longest_chain
                ));
            }
            CheckOutcome::Pass
        }
        (Err(CoreError::CyclicDelegation), OracleOutcome::Cycle) => CheckOutcome::Pass,
        (Err(CoreError::InvalidParameter { .. }), OracleOutcome::MultiTarget) => CheckOutcome::Pass,
        (
            Err(CoreError::DelegationTargetOutOfRange { voter, target, .. }),
            OracleOutcome::TargetOutOfRange {
                voter: ov,
                target: ot,
            },
        ) if voter == ov && target == ot => CheckOutcome::Pass,
        (system, reference) => CheckOutcome::Fail(format!(
            "outcome kinds differ: system {system:?} vs oracle {reference:?}"
        )),
    }
}

fn check_resolve_determinism(actions: &[Action]) -> CheckOutcome {
    let dg = DelegationGraph::new(actions.to_vec());
    let first = dg.resolve();
    let second = dg.resolve();
    if first != second {
        return CheckOutcome::Fail(format!(
            "resolve() not deterministic: {first:?} vs {second:?}"
        ));
    }
    let mut scratch = Resolver::new();
    for pass in 0..2 {
        let with_scratch = dg.resolve_with(&mut scratch);
        if first != with_scratch {
            return CheckOutcome::Fail(format!(
                "resolve_with (pass {pass}) disagrees with resolve(): \
                 {with_scratch:?} vs {first:?}"
            ));
        }
    }
    CheckOutcome::Pass
}

/// Builds the CSR forest under test: the production resolve, with the
/// offset skew applied afterwards when the context injects the mutant.
fn resolve_csr(actions: &[Action], ctx: &CheckContext) -> Result<CsrForest, CoreError> {
    let mut forest = CsrForest::new();
    forest.resolve(&DelegationGraph::new(actions.to_vec()))?;
    if ctx.csr == CsrImpl::OffsetSkewed {
        forest.skew_offsets_for_tests();
    }
    Ok(forest)
}

fn check_csr_resolve_oracle(actions: &[Action], ctx: &CheckContext) -> CheckOutcome {
    let system = resolve_csr(actions, ctx);
    let reference = oracle::resolve_recursive(actions);
    match (system, reference) {
        (Ok(forest), OracleOutcome::Resolved(orc)) => {
            let n = actions.len();
            for v in 0..n {
                if forest.sink_of(v) != orc.sink_of[v] {
                    return CheckOutcome::Fail(format!(
                        "voter {v}: CSR sink {:?} vs oracle {:?}",
                        forest.sink_of(v),
                        orc.sink_of[v]
                    ));
                }
                if forest.weight_of(v) != orc.weight[v] {
                    return CheckOutcome::Fail(format!(
                        "voter {v}: CSR weight {} vs oracle {} (offsets {:?})",
                        forest.weight_of(v),
                        orc.weight[v],
                        forest.offsets()
                    ));
                }
                // Membership differential: every voter in sink v's member
                // slice must actually resolve to v per the oracle.
                for &m in forest.members_of(v) {
                    if orc.sink_of[m as usize] != Some(v) {
                        return CheckOutcome::Fail(format!(
                            "sink {v}: CSR lists member {m}, but the oracle sends {m} \
                             to {:?}",
                            orc.sink_of[m as usize]
                        ));
                    }
                }
            }
            if forest.discarded() != orc.discarded {
                return CheckOutcome::Fail(format!(
                    "discarded differ: CSR {} vs oracle {}",
                    forest.discarded(),
                    orc.discarded
                ));
            }
            if forest.longest_chain() != orc.longest_chain {
                return CheckOutcome::Fail(format!(
                    "longest chain differs: CSR {} vs oracle {}",
                    forest.longest_chain(),
                    orc.longest_chain
                ));
            }
            let oracle_max = orc.weight.iter().copied().max().unwrap_or(0);
            if forest.max_weight() != oracle_max {
                return CheckOutcome::Fail(format!(
                    "max weight differs: CSR {} vs oracle {oracle_max}",
                    forest.max_weight()
                ));
            }
            CheckOutcome::Pass
        }
        (Err(CoreError::CyclicDelegation), OracleOutcome::Cycle) => CheckOutcome::Pass,
        (Err(CoreError::InvalidParameter { .. }), OracleOutcome::MultiTarget) => CheckOutcome::Pass,
        (
            Err(CoreError::DelegationTargetOutOfRange { voter, target, .. }),
            OracleOutcome::TargetOutOfRange {
                voter: ov,
                target: ot,
            },
        ) if voter == ov && target == ot => CheckOutcome::Pass,
        (system, reference) => CheckOutcome::Fail(format!(
            "outcome kinds differ: CSR {system:?} vs oracle {reference:?}"
        )),
    }
}

/// Coin vectors per `csr-tally-oracle` run; enough to make a skewed
/// weight essentially always visible while staying cheap on the grid.
const CSR_COIN_ROUNDS: usize = 8;

fn check_csr_tally_oracle(
    actions: &[Action],
    ps: &[f64],
    seed: u64,
    ctx: &CheckContext,
) -> CheckOutcome {
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if !dg.is_single_target() {
        return CheckOutcome::Skip("multi-target graphs are tallied by sampling only");
    }
    let OracleOutcome::Resolved(orc) = oracle::resolve_recursive(actions) else {
        return CheckOutcome::Skip("resolver rejects this graph");
    };
    let mut forest = match resolve_csr(actions, ctx) {
        Ok(f) => f,
        Err(e) => return CheckOutcome::Fail(format!("CSR resolve errored: {e}")),
    };
    // The SoA fold vs a naive per-voter walk: draw seeded coin vectors
    // and compare the weighted correct mass both ways.
    let mut rng = stream_rng(seed, 13);
    for round in 0..CSR_COIN_ROUNDS {
        let coins: Vec<bool> = (0..n).map(|v| rng.gen_range(0.0..1.0) < ps[v]).collect();
        let kernel = forest.fold_weighted_coins(&coins);
        let naive: u64 = orc
            .sink_of
            .iter()
            .flatten()
            .map(|&s| u64::from(coins[s]))
            .sum();
        if kernel != naive {
            return CheckOutcome::Fail(format!(
                "coin fold (round {round}) differs: kernel {kernel} vs per-voter walk \
                 {naive} on coins {coins:?}"
            ));
        }
    }
    // The CSR exact tally vs the Resolution-based production path.
    let inst = match carrier_instance(ps) {
        Ok(i) => i,
        Err(e) => return CheckOutcome::Fail(format!("carrier instance: {e}")),
    };
    let res = match dg.resolve() {
        Ok(r) => r,
        Err(e) => return CheckOutcome::Fail(format!("re-resolve failed: {e}")),
    };
    for tie in [TieBreak::Incorrect, TieBreak::CoinFlip] {
        let reference = match exact_correct_probability(&inst, &res, tie) {
            Ok(p) => p,
            Err(e) => return CheckOutcome::Fail(format!("reference tally errored: {e}")),
        };
        let system = match forest.exact_correct_probability(&inst, tie) {
            Ok(p) => p,
            Err(e) => return CheckOutcome::Fail(format!("CSR tally errored: {e}")),
        };
        if (system - reference).abs() > EXACT_EPS {
            return CheckOutcome::Fail(format!(
                "CSR exact tally ({tie:?}) {system} differs from the Resolution path \
                 {reference}"
            ));
        }
    }
    CheckOutcome::Pass
}

/// Packed coin words drawn per `packed-tally-oracle` run; each word is
/// also expanded bit by bit against the scalar oracle, so one round of
/// divergence anywhere in the 64-wide kernel fails the check.
const PACKED_COIN_ROUNDS: usize = 8;

/// The packed coin kernel under test: the production build, with the
/// plane-threshold skew applied when the context injects the mutant.
fn build_packed_competence(ps: &[f64], ctx: &CheckContext) -> Result<PackedCompetence, String> {
    let mut competence = PackedCompetence::new(ps).map_err(|e| e.to_string())?;
    if ctx.coins == CoinsImpl::ThresholdSkewed {
        competence.skew_threshold_for_tests();
    }
    Ok(competence)
}

fn check_packed_tally_oracle(
    actions: &[Action],
    ps: &[f64],
    seed: u64,
    ctx: &CheckContext,
) -> CheckOutcome {
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if !dg.is_single_target() {
        return CheckOutcome::Skip("multi-target graphs are tallied by sampling only");
    }
    let OracleOutcome::Resolved(orc) = oracle::resolve_recursive(actions) else {
        return CheckOutcome::Skip("resolver rejects this graph");
    };
    let forest = match resolve_csr(actions, ctx) {
        Ok(f) => f,
        Err(e) => return CheckOutcome::Fail(format!("CSR resolve errored: {e}")),
    };
    let competence = match build_packed_competence(ps, ctx) {
        Ok(c) => c,
        Err(e) => return CheckOutcome::Fail(format!("packed competence: {e}")),
    };
    let mut weights = PackedSinkWeights::new();
    forest.pack_sink_weights(&mut weights);

    // Leg 1: the packed kernel vs the scalar oracle, word by word and
    // bit by bit, on seeded rounds sharing one RNG stream — any extra,
    // missing, or misthresholded word desynchronizes a later round even
    // if the coins of this one happen to agree.
    let mut packed_rng = stream_rng(seed, 17);
    let mut scalar_rng = stream_rng(seed, 17);
    let mut words = Vec::new();
    let mut bools = Vec::new();
    let total = forest.tallied() as u64;
    for round in 0..PACKED_COIN_ROUNDS {
        competence.draw_packed(&mut packed_rng, &mut words);
        if let Err(e) = draw_scalar_coins(ps, &mut scalar_rng, &mut bools) {
            return CheckOutcome::Fail(format!("scalar oracle errored: {e}"));
        }
        for (i, &coin) in bools.iter().enumerate() {
            if packed_bit(&words, i) != coin {
                return CheckOutcome::Fail(format!(
                    "round {round}: packed coin for voter {i} is {}, scalar oracle drew \
                     {coin} (p = {})",
                    packed_bit(&words, i),
                    ps[i]
                ));
            }
        }
        for i in n..words.len() * 64 {
            if packed_bit(&words, i) {
                return CheckOutcome::Fail(format!(
                    "round {round}: ragged tail bit {i} is set (n = {n})"
                ));
            }
        }
        // Leg 2: the plane fold vs the scalar fold vs a naive per-voter
        // walk over the oracle's sink assignments.
        let plane = forest.fold_weighted_coins_packed(&weights, &words);
        let scalar = forest.fold_weighted_coins(&bools);
        let naive: u64 = orc
            .sink_of
            .iter()
            .flatten()
            .map(|&s| u64::from(bools[s]))
            .sum();
        if plane != scalar || plane != naive {
            return CheckOutcome::Fail(format!(
                "round {round}: weighted mass differs — plane fold {plane}, scalar fold \
                 {scalar}, per-voter walk {naive}"
            ));
        }
    }

    // Leg 3 (n ≤ 12): integrate the majority rule through the packed
    // fold over ALL 2^n coin vectors and compare with the O(2^n)
    // brute-force oracle — the fold path is pinned to the exact
    // distribution, not just to sampled agreement.
    if n <= oracle::COIN_BRUTE_MAX_N {
        let Some(reference) = oracle::brute_force_decision_by_coins(actions, ps) else {
            return CheckOutcome::Skip("cyclic delegation graph");
        };
        let mut integrated = 0.0f64;
        for mask in 0u64..(1u64 << n) {
            let mut prob = 1.0;
            for (i, &p) in ps.iter().enumerate() {
                prob *= if (mask >> i) & 1 == 1 { p } else { 1.0 - p };
            }
            if prob == 0.0 {
                continue;
            }
            let w = forest.fold_weighted_coins_packed(&weights, &[mask]);
            if 2 * w > total {
                integrated += prob;
            }
        }
        if (integrated - reference).abs() > EXACT_EPS {
            return CheckOutcome::Fail(format!(
                "packed-fold integration {integrated} differs from the brute-force \
                 oracle {reference} over {n} voters"
            ));
        }
    }
    CheckOutcome::Pass
}

fn check_weight_conservation(actions: &[Action]) -> CheckOutcome {
    let dg = DelegationGraph::new(actions.to_vec());
    let Ok(res) = dg.resolve() else {
        return CheckOutcome::Skip("resolver rejects this graph");
    };
    let n = actions.len();
    let weight_sum: usize = res.weights().iter().sum();
    if weight_sum + res.discarded() != n {
        return CheckOutcome::Fail(format!(
            "weight not conserved: Σ weights {} + discarded {} != n {}",
            weight_sum,
            res.discarded(),
            n
        ));
    }
    if res.tallied() != n - res.discarded() {
        return CheckOutcome::Fail(format!(
            "tallied {} != n {} - discarded {}",
            res.tallied(),
            n,
            res.discarded()
        ));
    }
    if !res.sinks().windows(2).all(|w| w[0] < w[1]) {
        return CheckOutcome::Fail(format!("sink list not strictly sorted: {:?}", res.sinks()));
    }
    for v in 0..n {
        let is_sink = res.sinks().binary_search(&v).is_ok();
        if is_sink != (res.weight_of(v) > 0) {
            return CheckOutcome::Fail(format!(
                "voter {v}: in sink list = {is_sink} but weight = {}",
                res.weight_of(v)
            ));
        }
        let incoming = res
            .sink_assignments()
            .iter()
            .filter(|s| **s == Some(v))
            .count();
        if res.weight_of(v) != incoming {
            return CheckOutcome::Fail(format!(
                "voter {v}: weight {} != {} votes assigned to it",
                res.weight_of(v),
                incoming
            ));
        }
    }
    let discarded = res
        .sink_assignments()
        .iter()
        .filter(|s| s.is_none())
        .count();
    if discarded != res.discarded() {
        return CheckOutcome::Fail(format!(
            "discarded {} != {} unassigned voters",
            res.discarded(),
            discarded
        ));
    }
    if res.max_weight() != res.weights().iter().copied().max().unwrap_or(0) {
        return CheckOutcome::Fail(format!(
            "max_weight {} != max of weights {:?}",
            res.max_weight(),
            res.weights()
        ));
    }
    CheckOutcome::Pass
}

/// Sink `(weight, competency)` terms of a resolved single-target graph,
/// or a skip reason.
fn sink_terms(actions: &[Action], ps: &[f64]) -> Result<(Vec<(usize, f64)>, usize), CheckOutcome> {
    let dg = DelegationGraph::new(actions.to_vec());
    if !dg.is_single_target() {
        return Err(CheckOutcome::Skip(
            "multi-target graphs are tallied by sampling only",
        ));
    }
    let res = dg
        .resolve()
        .map_err(|_| CheckOutcome::Skip("resolver rejects this graph"))?;
    let terms: Vec<(usize, f64)> = res.sink_weights().map(|(s, w)| (w, ps[s])).collect();
    Ok((terms, res.tallied()))
}

/// The tally under test: the production DP, or the tie-flipped mutant.
fn system_tally(
    ctx: &CheckContext,
    terms: &[(usize, f64)],
    tallied: usize,
    credit: f64,
) -> Result<f64, String> {
    let sum = WeightedBernoulliSum::new(terms).map_err(|e| e.to_string())?;
    Ok(match ctx.tally {
        TallyImpl::Real => sum.majority_with_ties(tallied, credit),
        TallyImpl::TieFlipped => sum.majority_with_ties(tallied, 1.0 - credit),
    })
}

/// Rebuilds a minimal instance carrying `ps` (the tally only reads the
/// profile, so a complete graph serves any `(actions, ps)` pair).
fn carrier_instance(ps: &[f64]) -> Result<ProblemInstance, String> {
    let profile = CompetencyProfile::new(ps.to_vec()).map_err(|e| e.to_string())?;
    ProblemInstance::new(generators::complete(ps.len()), profile, ALPHA).map_err(|e| e.to_string())
}

fn check_tally_oracle(actions: &[Action], ps: &[f64], ctx: &CheckContext) -> CheckOutcome {
    if actions.is_empty() {
        return CheckOutcome::Skip("empty electorate");
    }
    let (terms, tallied) = match sink_terms(actions, ps) {
        Ok(t) => t,
        Err(skip) => return skip,
    };
    if terms.len() > oracle::BRUTE_FORCE_MAX_TERMS {
        return CheckOutcome::Skip("too many sinks for brute-force enumeration");
    }
    for tie in [TieBreak::Incorrect, TieBreak::CoinFlip, TieBreak::Correct] {
        // Pin the full production path for the real tally; the mutant
        // stands in for a bug in the tie-break credit.
        let system = match ctx.tally {
            TallyImpl::Real => {
                let inst = match carrier_instance(ps) {
                    Ok(i) => i,
                    Err(e) => return CheckOutcome::Fail(format!("carrier instance: {e}")),
                };
                let dg = DelegationGraph::new(actions.to_vec());
                let res = match dg.resolve() {
                    Ok(r) => r,
                    Err(e) => return CheckOutcome::Fail(format!("re-resolve failed: {e}")),
                };
                match exact_correct_probability(&inst, &res, tie) {
                    Ok(p) => p,
                    Err(e) => return CheckOutcome::Fail(format!("exact tally errored: {e}")),
                }
            }
            TallyImpl::TieFlipped => match system_tally(ctx, &terms, tallied, tie.credit()) {
                Ok(p) => p,
                Err(e) => return CheckOutcome::Fail(format!("mutant tally errored: {e}")),
            },
        };
        let Some(reference) = oracle::brute_force_majority(&terms, tallied, tie.credit()) else {
            return CheckOutcome::Skip("too many sinks for brute-force enumeration");
        };
        if (system - reference).abs() > EXACT_EPS {
            return CheckOutcome::Fail(format!(
                "tally ({tie:?}) disagrees with brute force: system {system} vs oracle \
                 {reference} on {} sinks, {} tallied",
                terms.len(),
                tallied
            ));
        }
    }
    CheckOutcome::Pass
}

fn check_tally_simulation(
    actions: &[Action],
    ps: &[f64],
    seed: u64,
    ctx: &CheckContext,
) -> CheckOutcome {
    let (terms, tallied) = match sink_terms(actions, ps) {
        Ok(t) => t,
        Err(skip) => return skip,
    };
    if terms.is_empty() {
        return CheckOutcome::Skip("everyone abstained");
    }
    // Incorrect ties make the mutant maximally visible (credit 0 vs 1).
    let system = match system_tally(ctx, &terms, tallied, 0.0) {
        Ok(p) => p,
        Err(e) => return CheckOutcome::Fail(format!("tally errored: {e}")),
    };
    let mut rng = stream_rng(seed, 7);
    let est = oracle::simulate_majority(&terms, tallied, 0.0, 2500, &mut rng);
    let tolerance = 5.0 * est.std_error + EXACT_EPS;
    if (system - est.estimate).abs() > tolerance {
        return CheckOutcome::Fail(format!(
            "tally {} is {} from the simulated {} (tolerance {}, {} trials)",
            system,
            (system - est.estimate).abs(),
            est.estimate,
            tolerance,
            est.trials
        ));
    }
    CheckOutcome::Pass
}

fn check_sample_oracle(actions: &[Action], ps: &[f64], seed: u64) -> CheckOutcome {
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    if n > oracle::COIN_BRUTE_MAX_N {
        return CheckOutcome::Skip("electorate too large for coin-vector enumeration");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if dg.validate_targets().is_err() {
        return CheckOutcome::Skip("out-of-range targets");
    }
    let Some(exact) = oracle::brute_force_decision_by_coins(actions, ps) else {
        return CheckOutcome::Skip("cyclic delegation graph");
    };
    let inst = match carrier_instance(ps) {
        Ok(i) => i,
        Err(e) => return CheckOutcome::Fail(format!("carrier instance: {e}")),
    };
    let trials: u64 = 1500;
    let mut rng = stream_rng(seed, 8);
    let mut correct = 0u64;
    for _ in 0..trials {
        match sample_decision(&inst, &dg, TieBreak::Incorrect, &mut rng) {
            Ok(true) => correct += 1,
            Ok(false) => {}
            Err(e) => return CheckOutcome::Fail(format!("sample_decision errored: {e}")),
        }
    }
    let sampled = correct as f64 / trials as f64;
    let se = (exact * (1.0 - exact) / trials as f64).sqrt();
    let tolerance = 5.0 * se + EXACT_EPS;
    if (sampled - exact).abs() > tolerance {
        return CheckOutcome::Fail(format!(
            "sample_decision frequency {sampled} is {} from the exact {exact} \
             (tolerance {tolerance}, {trials} trials)",
            (sampled - exact).abs()
        ));
    }
    CheckOutcome::Pass
}

/// Replays `actions` into a live engine (starting from everyone voting),
/// one update per non-voting voter in index order.
fn replay_updates(actions: &[Action]) -> Vec<Update> {
    actions
        .iter()
        .enumerate()
        .filter_map(|(voter, a)| match a {
            Action::Vote => None,
            Action::Abstain => Some(Update::Abstain { voter }),
            Action::Delegate(target) => Some(Update::Delegate {
                voter,
                target: *target,
            }),
            // DelegateMany has no live-engine update; future `Action`
            // variants (the enum is non_exhaustive) are left at the
            // engine's initial Vote state, so a real semantic difference
            // surfaces as a replay mismatch instead of a silent pass.
            _ => None,
        })
        .collect()
}

fn check_live_replay(actions: &[Action], ps: &[f64]) -> CheckOutcome {
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if !dg.is_single_target() {
        return CheckOutcome::Skip("live engine handles single-target graphs only");
    }
    let Ok(res) = dg.resolve() else {
        return CheckOutcome::Skip("resolver rejects this graph");
    };
    let updates = replay_updates(actions);
    let mut live = match LiveEngine::new(vec![Action::Vote; n], ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    for u in &updates {
        if let Err(reject) = live.apply(*u) {
            return CheckOutcome::Fail(format!(
                "replay rejected {u:?}: {reject:?} (final graph is acyclic, so every \
                 prefix of the in-order replay must be too)"
            ));
        }
    }
    if live.resolution() != res {
        return CheckOutcome::Fail(format!(
            "incremental resolution differs from from-scratch: {:?} vs {:?}",
            live.resolution(),
            res
        ));
    }
    if let Err(e) = live.self_check() {
        return CheckOutcome::Fail(format!("live self-check failed after replay: {e}"));
    }
    let mut batch_engine = match LiveEngine::new(vec![Action::Vote; n], ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    let report = batch_engine.apply_batch(&updates);
    if !report.rejected.is_empty() {
        return CheckOutcome::Fail(format!("batch replay rejected {:?}", report.rejected));
    }
    if batch_engine.resolution() != res {
        return CheckOutcome::Fail(
            "batched replay resolution differs from from-scratch".to_string(),
        );
    }
    let inst = match carrier_instance(ps) {
        Ok(i) => i,
        Err(e) => return CheckOutcome::Fail(format!("carrier instance: {e}")),
    };
    let from_scratch = match exact_correct_probability(&inst, &res, TieBreak::CoinFlip) {
        Ok(p) => p,
        Err(e) => return CheckOutcome::Fail(format!("from-scratch tally errored: {e}")),
    };
    let incremental = match live.decision_probability_exact(TieBreak::CoinFlip) {
        Ok(p) => p,
        Err(e) => return CheckOutcome::Fail(format!("live exact tally errored: {e}")),
    };
    if (incremental - from_scratch).abs() > EXACT_EPS {
        return CheckOutcome::Fail(format!(
            "live exact tally {incremental} differs from from-scratch {from_scratch}"
        ));
    }
    CheckOutcome::Pass
}

fn check_normal_envelope(actions: &[Action], ps: &[f64]) -> CheckOutcome {
    let (terms, tallied) = match sink_terms(actions, ps) {
        Ok(t) => t,
        Err(skip) => return skip,
    };
    if terms.is_empty() {
        return CheckOutcome::Skip("everyone abstained");
    }
    let bound = match berry_esseen_weighted(&terms) {
        Ok(b) => b,
        Err(_) => return CheckOutcome::Skip("zero variance, Berry-Esseen undefined"),
    };
    let sum = match WeightedBernoulliSum::new(&terms) {
        Ok(s) => s,
        Err(e) => return CheckOutcome::Fail(format!("exact DP errored: {e}")),
    };
    if sum.variance() <= 1e-9 {
        return CheckOutcome::Skip("zero variance, Berry-Esseen undefined");
    }
    let exact = sum.strict_majority(tallied);
    // Berry–Esseen bounds sup_x |F(x) − Φ((x−μ)/σ)| over ALL real x, and
    // F is flat between integer atoms, so both the engine's evaluation
    // point (t/2, possibly half-integer) and ⌊t/2⌋ are covered.
    let mean = sum.mean();
    let sd = sum.variance().sqrt();
    let normal = 1.0 - std_normal_cdf(((tallied / 2) as f64 - mean) / sd);
    if (normal - exact).abs() > bound + ERF_SLACK {
        return CheckOutcome::Fail(format!(
            "normal approximation {normal} strays {} from exact {exact}, beyond the \
             Berry-Esseen envelope {bound}",
            (normal - exact).abs()
        ));
    }
    let n = actions.len();
    let mut live = match LiveEngine::new(vec![Action::Vote; n], ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    for u in replay_updates(actions) {
        if live.apply(u).is_err() {
            return CheckOutcome::Skip("replay rejected (covered by live-replay)");
        }
    }
    let live_normal = live.decision_probability_normal(TieBreak::Incorrect);
    if (live_normal - exact).abs() > bound + ERF_SLACK {
        return CheckOutcome::Fail(format!(
            "live O(1) normal approximation {live_normal} strays {} from exact {exact}, \
             beyond the Berry-Esseen envelope {bound}",
            (live_normal - exact).abs()
        ));
    }
    CheckOutcome::Pass
}

/// A seed-derived uniformly random permutation of `0..n`.
fn derive_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = stream_rng(seed, 11);
    let mut pi: Vec<usize> = (0..n).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        pi.swap(i, j);
    }
    pi
}

/// Relabels actions so that voter `π(i)` performs `A[i]` with targets
/// mapped through `π`.
fn relabel(actions: &[Action], pi: &[usize]) -> Vec<Action> {
    let mut out = vec![Action::Vote; actions.len()];
    for (i, a) in actions.iter().enumerate() {
        out[pi[i]] = match a {
            Action::Vote => Action::Vote,
            Action::Abstain => Action::Abstain,
            Action::Delegate(t) => Action::Delegate(pi[*t]),
            Action::DelegateMany(ts) => Action::DelegateMany(ts.iter().map(|&t| pi[t]).collect()),
            // Future variants are relabeled as-is; if they carry targets
            // the equivariance check will fail loudly rather than lie.
            other => other.clone(),
        };
    }
    out
}

fn check_relabel_equivariance(actions: &[Action], ps: &[f64], seed: u64) -> CheckOutcome {
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if dg.validate_targets().is_err() {
        return CheckOutcome::Skip("relabeling undefined for out-of-range targets");
    }
    let pi = derive_permutation(n, seed);
    let relabeled = relabel(actions, &pi);
    let direct = dg.resolve();
    let mapped = DelegationGraph::new(relabeled).resolve();
    match (direct, mapped) {
        (Ok(a), Ok(b)) => {
            for i in 0..n {
                if b.sink_of(pi[i]) != a.sink_of(i).map(|s| pi[s]) {
                    return CheckOutcome::Fail(format!(
                        "voter {i}: sink {:?} maps to {:?}, relabeled resolves to {:?}",
                        a.sink_of(i),
                        a.sink_of(i).map(|s| pi[s]),
                        b.sink_of(pi[i])
                    ));
                }
                if b.weight_of(pi[i]) != a.weight_of(i) {
                    return CheckOutcome::Fail(format!(
                        "voter {i}: weight {} != relabeled weight {}",
                        a.weight_of(i),
                        b.weight_of(pi[i])
                    ));
                }
            }
            if (
                a.tallied(),
                a.discarded(),
                a.sink_count(),
                a.max_weight(),
                a.longest_chain(),
            ) != (
                b.tallied(),
                b.discarded(),
                b.sink_count(),
                b.max_weight(),
                b.longest_chain(),
            ) {
                return CheckOutcome::Fail(
                    "aggregate resolution statistics changed under relabeling".to_string(),
                );
            }
            // Tally equivariance: the sink (weight, competency) multiset
            // is invariant, so the decision probability must be too.
            let mut ps_pi = vec![0.0; n];
            for i in 0..n {
                ps_pi[pi[i]] = ps[i];
            }
            let terms_a: Vec<(usize, f64)> = a.sink_weights().map(|(s, w)| (w, ps[s])).collect();
            let terms_b: Vec<(usize, f64)> = b.sink_weights().map(|(s, w)| (w, ps_pi[s])).collect();
            if terms_a.is_empty() {
                return CheckOutcome::Pass;
            }
            let (sum_a, sum_b) = match (
                WeightedBernoulliSum::new(&terms_a),
                WeightedBernoulliSum::new(&terms_b),
            ) {
                (Ok(x), Ok(y)) => (x, y),
                (x, y) => return CheckOutcome::Fail(format!("tally DP errored: {x:?} / {y:?}")),
            };
            for credit in [0.0, 0.5, 1.0] {
                let pa = sum_a.majority_with_ties(a.tallied(), credit);
                let pb = sum_b.majority_with_ties(b.tallied(), credit);
                if (pa - pb).abs() > 1e-12 {
                    return CheckOutcome::Fail(format!(
                        "tally changed under relabeling (credit {credit}): {pa} vs {pb}"
                    ));
                }
            }
            CheckOutcome::Pass
        }
        (Err(ea), Err(eb)) => {
            if std::mem::discriminant(&ea) == std::mem::discriminant(&eb) {
                CheckOutcome::Pass
            } else {
                CheckOutcome::Fail(format!(
                    "error kind changed under relabeling: {ea:?} vs {eb:?}"
                ))
            }
        }
        (a, b) => CheckOutcome::Fail(format!(
            "relabeling changed the outcome kind: {a:?} vs {b:?}"
        )),
    }
}

fn check_monotonicity(ps: &[f64]) -> CheckOutcome {
    let n = ps.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    let base = match PoissonBinomial::new(ps) {
        Ok(pb) => pb.strict_majority(),
        Err(e) => return CheckOutcome::Fail(format!("Poisson-binomial errored: {e}")),
    };
    let mut probe_indices = vec![0, n / 2, n - 1];
    probe_indices.dedup();
    for idx in probe_indices {
        let mut bumped = ps.to_vec();
        bumped[idx] = (bumped[idx] + 0.1).min(1.0);
        let improved = match PoissonBinomial::new(&bumped) {
            Ok(pb) => pb.strict_majority(),
            Err(e) => return CheckOutcome::Fail(format!("Poisson-binomial errored: {e}")),
        };
        if improved < base - 1e-12 {
            return CheckOutcome::Fail(format!(
                "raising voter {idx}'s competency {} -> {} LOWERED P[correct] {} -> {}",
                ps[idx], bumped[idx], base, improved
            ));
        }
    }
    CheckOutcome::Pass
}

fn check_locality(case: &Case) -> CheckOutcome {
    let inst = &case.instance;
    let n = inst.n();
    if n < 4 {
        return CheckOutcome::Skip("electorate too small for a remote edit");
    }
    let mut probes = vec![0, n / 2, n - 1];
    probes.dedup();
    let mut edits_found = false;
    for v in probes {
        let mut closed = vec![false; n];
        closed[v] = true;
        for &u in inst.graph().neighbor_slice(v) {
            closed[u] = true;
        }
        // First vertex pair entirely outside v's closed neighbourhood;
        // toggle that edge.
        let mut edit = None;
        'outer: for u in 0..n {
            if closed[u] {
                continue;
            }
            if let Some(w) = ((u + 1)..n).find(|&w| !closed[w]) {
                edit = Some((u, w));
                break 'outer;
            }
        }
        let Some((u, w)) = edit else {
            continue;
        };
        edits_found = true;
        let had_edge = inst.graph().has_edge(u, w);
        // Rebuild BOTH sides from the same edge list (minus/plus the
        // toggled edge) so adjacency-list ordering — which RNG-driven
        // mechanisms are sensitive to — is identical except for the edit.
        let base_edges: Vec<(usize, usize)> = inst.graph().edges().collect();
        let edited_edges: Vec<(usize, usize)> = if had_edge {
            base_edges
                .iter()
                .copied()
                .filter(|&e| e != (u, w))
                .collect()
        } else {
            base_edges
                .iter()
                .copied()
                .chain(std::iter::once((u, w)))
                .collect()
        };
        let rebuild = |edges: Vec<(usize, usize)>| -> Result<ProblemInstance, String> {
            let g = Graph::from_edges(n, edges).map_err(|e| e.to_string())?;
            ProblemInstance::new(g, inst.profile().clone(), inst.alpha()).map_err(|e| e.to_string())
        };
        let baseline = match rebuild(base_edges) {
            Ok(i) => i,
            Err(e) => return CheckOutcome::Fail(format!("baseline rebuild: {e}")),
        };
        let edited = match rebuild(edited_edges) {
            Ok(i) => i,
            Err(e) => return CheckOutcome::Fail(format!("edited instance rebuild: {e}")),
        };
        let verb = if had_edge { "removing" } else { "adding" };
        for salt in [21u64, 22] {
            let mut rng_a = stream_rng(case.seed, salt);
            let mut rng_b = stream_rng(case.seed, salt);
            let before = case.mechanism.act(&baseline, v, &mut rng_a);
            let after = case.mechanism.act(&edited, v, &mut rng_b);
            if before != after {
                return CheckOutcome::Fail(format!(
                    "{verb} remote edge ({u},{w}) changed voter {v}'s action: \
                     {before:?} -> {after:?}"
                ));
            }
        }
    }
    if edits_found {
        CheckOutcome::Pass
    } else {
        CheckOutcome::Skip("no vertex pair outside any probed neighbourhood")
    }
}

/// Deliberately buggy testkit-local WAL scanner: trusts frame lengths
/// and never verifies the stored CRC32. `--mutate wal-crc` routes the
/// crash oracle through it, so a corrupted record decodes "successfully"
/// and the differential comparison below must flag the divergence.
fn scan_records_skipping_crc(body: &[u8]) -> Vec<Update> {
    use ld_store::wal::{FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
    let mut updates = Vec::new();
    let mut at = 0usize;
    while body.len() - at >= FRAME_HEADER_LEN {
        let len = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_PAYLOAD as usize || body.len() - at - FRAME_HEADER_LEN < len {
            break;
        }
        let payload = &body[at + FRAME_HEADER_LEN..at + FRAME_HEADER_LEN + len];
        match ld_live::codec::decode_update(payload) {
            Ok(u) => updates.push(u),
            Err(_) => break,
        }
        at += FRAME_HEADER_LEN + len;
    }
    updates
}

/// The crash oracle, extending [`check_live_replay`] through the
/// durable-log codec: the accepted update stream is framed exactly as
/// `ld-store` writes it, the resulting log is truncated at EVERY byte
/// offset (a crash can land anywhere), and each surviving prefix must be
/// record-aligned and replay — streamed and batched — to states
/// bit-identical to a from-scratch resolve. Finally, single-bit
/// corruption of early/middle/final records must leave the scanner on
/// the exact prefix before the damage: one decoded post-corruption
/// record is a conformance failure.
fn check_wal_crash_oracle(
    actions: &[Action],
    ps: &[f64],
    seed: u64,
    ctx: &CheckContext,
) -> CheckOutcome {
    use ld_store::wal::{encode_record, scan_records, FRAME_HEADER_LEN};
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if !dg.is_single_target() {
        return CheckOutcome::Skip("live engine handles single-target graphs only");
    }
    if dg.resolve().is_err() {
        return CheckOutcome::Skip("resolver rejects this graph");
    }

    // The logged stream: the structural replay plus seeded competence
    // churn, so every record tag the codec defines appears in the WAL.
    let mut updates = replay_updates(actions);
    let mut rng = stream_rng(seed, 0x57A1_C4A5);
    for _ in 0..4.min(n) {
        updates.push(Update::Competence {
            voter: rng.gen_range(0..n),
            p: rng.gen_range(0.0..1.0),
        });
    }
    let mut reference = match LiveEngine::new(vec![Action::Vote; n], ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    let mut accepted = Vec::new();
    let mut body = Vec::new();
    let mut boundaries = vec![0usize];
    for u in updates {
        if reference.apply(u).is_ok() {
            accepted.push(u);
            encode_record(&u, &mut body);
            boundaries.push(body.len());
        }
    }
    let scan = |bytes: &[u8]| -> Vec<Update> {
        match ctx.wal {
            WalImpl::Real => scan_records(bytes).updates,
            WalImpl::CrcSkipped => scan_records_skipping_crc(bytes),
        }
    };

    // Crash at every byte offset: the scan must recover exactly the
    // records whose frames survived whole — never a partial decode.
    for cut in 0..=body.len() {
        let got = scan(&body[..cut]);
        let whole = boundaries.partition_point(|&b| b <= cut) - 1;
        if got != accepted[..whole] {
            return CheckOutcome::Fail(format!(
                "crash at byte {cut}: scanner recovered {} records, expected the \
                 aligned prefix of {whole}",
                got.len()
            ));
        }
    }

    // At sampled record boundaries, the recovered prefix must replay to
    // the same state streamed, batched, and from scratch.
    let m = accepted.len();
    let mut sample = vec![0, m / 2, m];
    sample.dedup();
    for k in sample {
        let prefix = scan(&body[..boundaries[k]]);
        let mut streamed = match LiveEngine::new(vec![Action::Vote; n], ps.to_vec()) {
            Ok(e) => e,
            Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
        };
        for u in &prefix {
            if let Err(reject) = streamed.apply(*u) {
                return CheckOutcome::Fail(format!(
                    "recovered record {u:?} rejected on replay at boundary {k}: {reject:?}"
                ));
            }
        }
        let mut batched = match LiveEngine::new(vec![Action::Vote; n], ps.to_vec()) {
            Ok(e) => e,
            Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
        };
        let report = batched.apply_batch(&prefix);
        if !report.rejected.is_empty() {
            return CheckOutcome::Fail(format!(
                "batched replay of recovered prefix rejected {:?}",
                report.rejected
            ));
        }
        if streamed.resolution() != batched.resolution()
            || streamed.competences() != batched.competences()
        {
            return CheckOutcome::Fail(format!(
                "streamed and batched replays of the recovered prefix diverge at boundary {k}"
            ));
        }
        let scratch = match DelegationGraph::new(streamed.actions().to_vec()).resolve() {
            Ok(r) => r,
            Err(e) => {
                return CheckOutcome::Fail(format!(
                    "from-scratch resolve of recovered state errored: {e}"
                ))
            }
        };
        if scratch != streamed.resolution() {
            return CheckOutcome::Fail(format!(
                "recovered state at boundary {k} is not bit-identical to from-scratch resolve"
            ));
        }
    }

    // Corruption teeth: flip one payload bit in the first, middle, and
    // last records; the scanner must surface exactly the prefix before
    // the damaged record and nothing decoded from or past it.
    if m > 0 {
        let mut probes = vec![0, m / 2, m - 1];
        probes.dedup();
        for idx in probes {
            let mut corrupted = body.clone();
            // Offset of the record's voter-id low byte: frame header,
            // then the one-byte tag.
            let off = boundaries[idx] + FRAME_HEADER_LEN + 1;
            corrupted[off] ^= 0x01;
            let got = scan(&corrupted);
            if got != accepted[..idx] {
                return CheckOutcome::Fail(format!(
                    "single-bit corruption in record {idx} was not caught: scanner \
                     returned {} records (valid prefix is {idx}) — a corrupted voter \
                     id would be silently applied on recovery",
                    got.len()
                ));
            }
        }
    }
    CheckOutcome::Pass
}

/// Service conformance, extending [`check_live_replay`] through the
/// sharded `ld-serve` front-end: the accepted update stream (structural
/// replay plus seeded competence churn) is driven through a 4-shard
/// election with a zero batching window and an epoch barrier after every
/// batch, and the published merged tally must be bit-identical to the
/// streamed replay, the batched replay, and from-scratch resolution.
/// Under `--mutate shard-route` one delegating voter is deliberately
/// hashed to the wrong shard; the differential below must flag it.
fn check_serve_replay(
    actions: &[Action],
    ps: &[f64],
    seed: u64,
    ctx: &CheckContext,
) -> CheckOutcome {
    use ld_serve::{Election, ElectionConfig};
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if !dg.is_single_target() {
        return CheckOutcome::Skip("live engine handles single-target graphs only");
    }
    if dg.resolve().is_err() {
        return CheckOutcome::Skip("resolver rejects this graph");
    }
    let mut updates = replay_updates(actions);
    let mut rng = stream_rng(seed, 0x5E12_7E55);
    for _ in 0..4.min(n) {
        updates.push(Update::Competence {
            voter: rng.gen_range(0..n),
            p: rng.gen_range(0.0..1.0),
        });
    }
    // The three single-engine views the service must reproduce.
    let mut streamed = match LiveEngine::new(vec![Action::Vote; n], ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    for u in &updates {
        if let Err(reject) = streamed.apply(*u) {
            return CheckOutcome::Fail(format!("streamed replay rejected {u:?}: {reject:?}"));
        }
    }
    let mut batched = match LiveEngine::new(vec![Action::Vote; n], ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    let report = batched.apply_batch(&updates);
    if !report.rejected.is_empty() {
        return CheckOutcome::Fail(format!("batched replay rejected {:?}", report.rejected));
    }
    if batched.resolution() != streamed.resolution() {
        return CheckOutcome::Fail("streamed and batched replays diverge".to_string());
    }
    let scratch = match DelegationGraph::new(streamed.actions().to_vec()).resolve() {
        Ok(r) => r,
        Err(e) => return CheckOutcome::Fail(format!("from-scratch resolve errored: {e}")),
    };
    if scratch != streamed.resolution() {
        return CheckOutcome::Fail(
            "replayed state is not bit-identical to from-scratch resolve".to_string(),
        );
    }
    // The sharded service: zero window so every submit dispatches, an
    // epoch barrier after every batch so the merge path is exercised
    // throughout the stream, not just at the end.
    let mut cfg = ElectionConfig::new(n as u32);
    cfg.shards = 4;
    cfg.window = std::time::Duration::ZERO;
    cfg.publish_every = 1;
    cfg.competences = Some(ps.to_vec());
    if ctx.serve == ServeImpl::Misrouted {
        cfg.misroute = streamed
            .actions()
            .iter()
            .enumerate()
            .find_map(|(v, a)| match a {
                Action::Delegate(t) if *t != v => Some(v as u32),
                _ => None,
            });
    }
    let election = match Election::create(&cfg) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("service construction: {e}")),
    };
    for &u in &updates {
        if let Err(e) = election.submit(u) {
            return CheckOutcome::Fail(format!("service refused {u:?}: {e}"));
        }
    }
    let snap = match election.flush() {
        Ok(s) => s,
        Err(e) => return CheckOutcome::Fail(format!("service flush errored: {e}")),
    };
    if snap.applied != updates.len() as u64 || snap.rejected != 0 {
        return CheckOutcome::Fail(format!(
            "service sequenced {} applied / {} rejected, the engine accepted all {}",
            snap.applied,
            snap.rejected,
            updates.len()
        ));
    }
    let want: Vec<u64> = streamed.weights().iter().map(|&w| w as u64).collect();
    if snap.tally.weights != want {
        return CheckOutcome::Fail(format!(
            "merged shard weights {:?} differ from the single-engine weights {:?}",
            snap.tally.weights, want
        ));
    }
    if (
        snap.tally.discarded,
        snap.tally.tallied,
        snap.tally.sink_count,
    ) != (
        streamed.discarded() as u64,
        streamed.tallied() as u64,
        streamed.sink_count() as u64,
    ) {
        return CheckOutcome::Fail(format!(
            "merged aggregates (discarded {}, tallied {}, sinks {}) differ from the \
             engine ({}, {}, {})",
            snap.tally.discarded,
            snap.tally.tallied,
            snap.tally.sink_count,
            streamed.discarded(),
            streamed.tallied(),
            streamed.sink_count()
        ));
    }
    let p = streamed.decision_probability_normal(TieBreak::CoinFlip);
    if (snap.tally.p_correct - p).abs() > EXACT_EPS {
        return CheckOutcome::Fail(format!(
            "published P[correct] {} differs from the engine's {p}",
            snap.tally.p_correct
        ));
    }
    if let Err(e) = election.shutdown() {
        return CheckOutcome::Fail(format!("graceful shutdown failed: {e}"));
    }
    CheckOutcome::Pass
}

/// Electorate bound for the brute-force dynamics oracle.
const DYN_ORACLE_MAX_N: usize = 12;
/// Round cap shared by both sides of the dynamics differential.
const DYN_ORACLE_MAX_ROUNDS: usize = 24;

/// Naively recomputed round state for the dynamics oracle: sinks from
/// the recursive resolver, carried weights from per-voter chain walks
/// (`O(n²)`), and the tally sums accumulated in ascending sink order —
/// the same summation order the fast snapshot uses, so deviation scores
/// are bit-identical and exact ties stay exact.
struct DynOracleSnapshot {
    actions: Vec<Action>,
    sink_of: Vec<Option<usize>>,
    weight: Vec<usize>,
    tallied: usize,
    mu: f64,
    var: f64,
}

fn dyn_oracle_snapshot(actions: &[Action], ps: &[f64]) -> Option<DynOracleSnapshot> {
    let orc = match oracle::resolve_recursive(actions) {
        OracleOutcome::Resolved(orc) => orc,
        _ => return None,
    };
    let n = actions.len();
    let mut weight = vec![0usize; n];
    for v in 0..n {
        let mut cur = v;
        for _ in 0..=n {
            weight[cur] += 1;
            match actions[cur] {
                Action::Delegate(t) if t != cur => cur = t,
                _ => break,
            }
        }
    }
    let mut mu = 0.0f64;
    let mut var = 0.0f64;
    for s in 0..n {
        if orc.sink_of[s] == Some(s) {
            let w = weight[s] as f64;
            let p = ps[s];
            mu += w * p;
            var += w * w * p * (1.0 - p);
        }
    }
    Some(DynOracleSnapshot {
        actions: actions.to_vec(),
        sink_of: orc.sink_of,
        weight,
        tallied: n - orc.discarded,
        mu,
        var,
    })
}

/// Where a one-step deviation sends the voter's carried ballots
/// (mirrors `ld_live::dynamics::Deviation` without depending on it).
#[derive(Clone, Copy)]
enum DynDest {
    SelfVote,
    ToSink(Option<usize>),
}

/// The deviated `(μ′, σ²′, T′)`, copied operation for operation from the
/// normative `ld_live::dynamics::deviation_sums` — the order must not be
/// reassociated or exact candidate ties would break.
fn dyn_oracle_deviation(
    snap: &DynOracleSnapshot,
    ps: &[f64],
    i: usize,
    dest: DynDest,
) -> (f64, f64, usize) {
    let w = snap.weight[i];
    let wf = w as f64;
    let mut mu = snap.mu;
    let mut var = snap.var;
    let mut tallied = snap.tallied;
    if let Some(s) = snap.sink_of[i] {
        let cap = snap.weight[s] as f64;
        let p = ps[s];
        mu -= wf * p;
        var -= (cap * cap - (cap - wf) * (cap - wf)) * p * (1.0 - p);
        tallied -= w;
    }
    match dest {
        DynDest::SelfVote => {
            mu += wf * ps[i];
            var += wf * wf * ps[i] * (1.0 - ps[i]);
            tallied += w;
        }
        DynDest::ToSink(Some(s)) => {
            let base = if snap.sink_of[i] == Some(s) {
                (snap.weight[s] - w) as f64
            } else {
                snap.weight[s] as f64
            };
            let p = ps[s];
            mu += wf * p;
            var += ((base + wf) * (base + wf) - base * base) * p * (1.0 - p);
            tallied += w;
        }
        DynDest::ToSink(None) => {}
    }
    (mu, var, tallied)
}

/// `P[correct]` of a deviated tally, copied from the normative
/// `ld_live::dynamics::normal_majority`.
fn dyn_oracle_majority(mu: f64, var: f64, tallied: usize) -> f64 {
    let half = tallied as f64 / 2.0;
    if tallied == 0 {
        return 0.0;
    }
    if var <= 0.0 {
        return if mu > half { 1.0 } else { 0.0 };
    }
    1.0 - std_normal_cdf((half - mu) / var.sqrt())
}

/// Whether `i` sits on the chain from `j` (naive walk).
fn dyn_oracle_chain_hits(snap: &DynOracleSnapshot, j: usize, i: usize) -> bool {
    let mut v = j;
    for _ in 0..=snap.actions.len() {
        if v == i {
            return true;
        }
        match snap.actions[v] {
            Action::Delegate(t) if t != v => v = t,
            _ => return false,
        }
    }
    false
}

/// The canonical best response for voter `i`, every candidate enumerated
/// explicitly over the complete carrier view: keep first, then vote
/// directly, then approved targets in ascending order with a strict
/// improvement required to displace.
fn dyn_oracle_best_move(snap: &DynOracleSnapshot, ps: &[f64], i: usize) -> Option<Action> {
    let n = snap.actions.len();
    let current = &snap.actions[i];
    if matches!(current, Action::Abstain | Action::DelegateMany(_)) {
        return None;
    }
    let keep_dest = match *current {
        Action::Vote => DynDest::SelfVote,
        Action::Delegate(t) if t == i => DynDest::SelfVote,
        Action::Delegate(t) => DynDest::ToSink(snap.sink_of[t]),
        _ => return None,
    };
    let score = |dest: DynDest| -> f64 {
        let (mu, var, tallied) = dyn_oracle_deviation(snap, ps, i, dest);
        dyn_oracle_majority(mu, var, tallied)
    };
    let mut best = score(keep_dest);
    let mut chosen: Option<Action> = None;
    if !matches!(*current, Action::Vote) {
        let s = score(DynDest::SelfVote);
        if s > best {
            best = s;
            chosen = Some(Action::Vote);
        }
    }
    for j in 0..n {
        if j == i || ps[i] + ALPHA > ps[j] || *current == Action::Delegate(j) {
            continue;
        }
        if dyn_oracle_chain_hits(snap, j, i) {
            continue;
        }
        let s = score(DynDest::ToSink(snap.sink_of[j]));
        if s > best {
            best = s;
            chosen = Some(Action::Delegate(j));
        }
    }
    chosen
}

/// Sequential acceptance in canonical voter order: an edge change can
/// only close a cycle through its own voter, so a naive walk from the
/// new state decides each move; rejected moves are reverted in place.
fn dyn_oracle_apply_round(
    state: &mut [Action],
    proposals: &[(usize, Action)],
) -> Vec<(usize, Action, bool)> {
    let creates_cycle = |state: &[Action], voter: usize| -> bool {
        let mut cur = voter;
        for _ in 0..=state.len() {
            match state[cur] {
                Action::Delegate(t) if t != cur => {
                    cur = t;
                    if cur == voter {
                        return true;
                    }
                }
                _ => return false,
            }
        }
        true
    };
    let mut out = Vec::with_capacity(proposals.len());
    for (voter, action) in proposals {
        let prev = state[*voter].clone();
        state[*voter] = action.clone();
        let accepted = !creates_cycle(state, *voter);
        if !accepted {
            state[*voter] = prev;
        }
        out.push((*voter, action.clone(), accepted));
    }
    out
}

fn check_dynamics_oracle(actions: &[Action], ps: &[f64], ctx: &CheckContext) -> CheckOutcome {
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    if n > DYN_ORACLE_MAX_N {
        return CheckOutcome::Skip("dynamics oracle bounded to n <= 12");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if !dg.is_single_target() {
        return CheckOutcome::Skip("dynamics requires single-target graphs");
    }
    if dg.resolve().is_err() {
        return CheckOutcome::Skip("resolver rejects this graph");
    }

    // The fast loop under test, tie-break selected by the context.
    let view = DynamicsView::complete(ps, ALPHA);
    let rules = vec![MoveRule::BestResponse; n];
    let spec = DynamicsSpec {
        max_rounds: DYN_ORACLE_MAX_ROUNDS,
        tiebreak: match ctx.dynamics {
            DynamicsImpl::Real => TieBreakRule::Canonical,
            DynamicsImpl::TiebreakSkewed => TieBreakRule::SkewedForTests,
        },
    };
    let traj = match run_dynamics(&view, actions, &rules, &spec) {
        Ok(t) => t,
        Err(e) => return CheckOutcome::Fail(format!("fast dynamics errored: {e}")),
    };

    // The reference loop: brute-force canonical best responses, naive
    // sequential acceptance, full-state cycle detection.
    let mut state = actions.to_vec();
    let mut seen: Vec<Vec<Action>> = vec![state.clone()];
    let mut oracle_moves: Vec<Vec<(usize, Action, bool)>> = Vec::new();
    let mut oracle_hashes: Vec<u64> = Vec::new();
    let mut termination = Termination::Capped;
    for round in 1..=DYN_ORACLE_MAX_ROUNDS {
        let snap = match dyn_oracle_snapshot(&state, ps) {
            Some(s) => s,
            None => {
                return CheckOutcome::Fail(format!(
                    "oracle state became unresolvable in round {round}"
                ))
            }
        };
        let proposals: Vec<(usize, Action)> = (0..n)
            .filter_map(|i| dyn_oracle_best_move(&snap, ps, i).map(|a| (i, a)))
            .collect();
        if proposals.is_empty() {
            termination = Termination::Fixpoint { round };
            break;
        }
        let moves = dyn_oracle_apply_round(&mut state, &proposals);
        if moves.iter().filter(|m| m.2).count() == 0 {
            termination = Termination::Fixpoint { round };
            break;
        }
        oracle_moves.push(moves);
        oracle_hashes.push(state_hash(&state));
        if let Some(first_seen) = seen.iter().position(|s| s.as_slice() == state.as_slice()) {
            termination = Termination::Cycle {
                first_seen,
                period: round - first_seen,
            };
            break;
        }
        seen.push(state.clone());
    }

    if traj.moves.len() != oracle_moves.len() {
        return CheckOutcome::Fail(format!(
            "round counts differ: fast executed {} rounds ({:?}), oracle {} ({termination:?})",
            traj.moves.len(),
            traj.termination,
            oracle_moves.len()
        ));
    }
    for (r, (fast, slow)) in traj.moves.iter().zip(&oracle_moves).enumerate() {
        if fast != slow {
            return CheckOutcome::Fail(format!(
                "round {}: fast moves {fast:?} vs oracle {slow:?}",
                r + 1
            ));
        }
        if traj.rounds[r].state_hash != oracle_hashes[r] {
            return CheckOutcome::Fail(format!(
                "round {}: fast state hash {:#018x} vs oracle {:#018x}",
                r + 1,
                traj.rounds[r].state_hash,
                oracle_hashes[r]
            ));
        }
    }
    if traj.termination != termination {
        return CheckOutcome::Fail(format!(
            "termination differs: fast {:?} vs oracle {termination:?}",
            traj.termination
        ));
    }
    if traj.engine.actions() != state.as_slice() {
        return CheckOutcome::Fail(format!(
            "final states differ: fast {:?} vs oracle {state:?}",
            traj.engine.actions()
        ));
    }
    CheckOutcome::Pass
}

fn check_dynamics_replay(actions: &[Action], ps: &[f64], seed: u64) -> CheckOutcome {
    use ld_store::{recover, FaultPlan, Store, StoreOptions};
    let n = actions.len();
    if n == 0 {
        return CheckOutcome::Skip("empty electorate");
    }
    let dg = DelegationGraph::new(actions.to_vec());
    if !dg.is_single_target() {
        return CheckOutcome::Skip("dynamics requires single-target graphs");
    }
    if dg.resolve().is_err() {
        return CheckOutcome::Skip("resolver rejects this graph");
    }
    let view = DynamicsView::complete(ps, ALPHA);
    let rules = vec![MoveRule::BestResponse; n];
    let spec = DynamicsSpec {
        max_rounds: 16,
        tiebreak: TieBreakRule::Canonical,
    };
    let traj = match run_dynamics(&view, actions, &rules, &spec) {
        Ok(t) => t,
        Err(e) => return CheckOutcome::Fail(format!("dynamics errored: {e}")),
    };

    // Streamed and batched replicas of the recorded trajectory; at every
    // round boundary both must match each other, the from-scratch
    // resolve, and the state hash the loop recorded.
    let mut streamed = match LiveEngine::new(actions.to_vec(), ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    let mut batched = match LiveEngine::new(actions.to_vec(), ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    let mut all_updates: Vec<Update> = Vec::new();
    for (r, moves) in traj.moves.iter().enumerate() {
        let updates: Vec<Update> = moves
            .iter()
            .filter(|m| m.2)
            .map(|(voter, action, _)| match action {
                Action::Vote => Update::Vote { voter: *voter },
                Action::Delegate(target) => Update::Delegate {
                    voter: *voter,
                    target: *target,
                },
                other => unreachable!("dynamics only proposes Vote/Delegate, got {other:?}"),
            })
            .collect();
        for u in &updates {
            if let Err(reject) = streamed.apply(*u) {
                return CheckOutcome::Fail(format!(
                    "round {}: accepted move {u:?} rejected on streamed replay: {reject:?}",
                    r + 1
                ));
            }
        }
        let report = batched.apply_batch(&updates);
        if !report.rejected.is_empty() {
            return CheckOutcome::Fail(format!(
                "round {}: batched replay rejected {:?}",
                r + 1,
                report.rejected
            ));
        }
        if streamed.actions() != batched.actions() {
            return CheckOutcome::Fail(format!(
                "round {}: streamed and batched replays diverge",
                r + 1
            ));
        }
        if state_hash(streamed.actions()) != traj.rounds[r].state_hash {
            return CheckOutcome::Fail(format!(
                "round {}: replayed state hash differs from the recorded {:#018x}",
                r + 1,
                traj.rounds[r].state_hash
            ));
        }
        let scratch = match DelegationGraph::new(streamed.actions().to_vec()).resolve() {
            Ok(res) => res,
            Err(e) => {
                return CheckOutcome::Fail(format!(
                    "round {}: from-scratch resolve errored: {e}",
                    r + 1
                ))
            }
        };
        if scratch != streamed.resolution() || scratch != batched.resolution() {
            return CheckOutcome::Fail(format!(
                "round {}: replayed resolution is not bit-identical to from-scratch",
                r + 1
            ));
        }
        all_updates.extend(updates);
    }
    if streamed.actions() != traj.engine.actions() {
        return CheckOutcome::Fail("replayed final state differs from the trajectory".to_string());
    }
    if all_updates.is_empty() {
        return CheckOutcome::Pass;
    }

    // Crash leg: tee the accepted stream through an ld-store WAL with a
    // seeded short write armed, recover the torn log, re-apply the lost
    // suffix, and require bit-identical convergence with the replica
    // that never crashed.
    let dir = std::env::temp_dir().join(format!(
        "ld-testkit-dynrep-{}-{:016x}",
        std::process::id(),
        state_hash(actions) ^ seed
    ));
    std::fs::remove_dir_all(&dir).ok();
    let genesis = match LiveEngine::new(actions.to_vec(), ps.to_vec()) {
        Ok(e) => e,
        Err(e) => return CheckOutcome::Fail(format!("live engine construction: {e}")),
    };
    let opts = StoreOptions {
        sync_every: 4,
        snapshot_every: 64,
        // Op indices past the run's end simply never fire, so every
        // cell still exercises recovery of an untorn log.
        fault: FaultPlan::short_write_at(1 + seed % 64),
    };
    let outcome = (|| {
        let mut store = match Store::create(&dir, &genesis, opts) {
            Ok(s) => s,
            Err(e) if e.is_injected() => {
                // Crashed before anything durable existed: nothing to
                // recover, and nothing to check.
                return CheckOutcome::Pass;
            }
            Err(e) => return CheckOutcome::Fail(format!("store create errored: {e}")),
        };
        let mut crashed = false;
        for u in &all_updates {
            match store.append(u) {
                Ok(()) => {}
                Err(e) if e.is_injected() => {
                    crashed = true;
                    break;
                }
                Err(e) => return CheckOutcome::Fail(format!("store append errored: {e}")),
            }
        }
        if !crashed {
            match store.sync() {
                Ok(()) => {}
                Err(e) if e.is_injected() => {}
                Err(e) => return CheckOutcome::Fail(format!("store sync errored: {e}")),
            }
        }
        drop(store);
        let recovery = match recover(&dir) {
            Ok(r) => r,
            Err(e) => return CheckOutcome::Fail(format!("recovery errored: {e}")),
        };
        let survived = recovery.records as usize;
        if survived > all_updates.len() {
            return CheckOutcome::Fail(format!(
                "recovery produced {survived} records from {} appends",
                all_updates.len()
            ));
        }
        let mut resumed = recovery.engine;
        for (k, u) in all_updates[survived..].iter().enumerate() {
            if let Err(reject) = resumed.apply(*u) {
                return CheckOutcome::Fail(format!(
                    "recovered continuation rejected record {}: {reject:?}",
                    survived + k
                ));
            }
        }
        if resumed.actions() != streamed.actions() || resumed.resolution() != streamed.resolution()
        {
            return CheckOutcome::Fail(
                "crash + recover + re-apply did not converge to the uncrashed state".to_string(),
            );
        }
        CheckOutcome::Pass
    })();
    std::fs::remove_dir_all(&dir).ok();
    outcome
}

/// Salt separating the ranked-replay churn stream from the ballot
/// derivation stream.
const RANKED_REPLAY_SALT: u64 = 0x7A4E_4B3D_5EED_0001;

/// Derives the case's ranked preference profile and the production copy
/// the rules actually consult (reversed under `--mutate rank-order`).
fn ranked_profiles(
    actions: &[Action],
    seed: u64,
    ctx: &CheckContext,
) -> Result<(RankedProfile, RankedProfile), CheckOutcome> {
    let ballots = ranked_ballots(actions, seed);
    let truth = match RankedProfile::new(ballots) {
        Ok(p) => p,
        Err(_) => return Err(CheckOutcome::Skip("derived ballots are invalid")),
    };
    let mut production = truth.clone();
    if ctx.ranked == RankedImpl::RankOrderReversed {
        production.reverse_ranks_for_tests();
    }
    Ok((truth, production))
}

fn check_ranked_resolve_oracle(actions: &[Action], seed: u64, ctx: &CheckContext) -> CheckOutcome {
    let (truth, production) = match ranked_profiles(actions, seed, ctx) {
        Ok(pair) => pair,
        Err(skip) => return skip,
    };
    let n = truth.n();
    // Independent attainability fixpoint over the submitted lists: the
    // production reverse-BFS must abstain exactly the voters this naive
    // iteration never reaches.
    let mut attainable: Vec<bool> = (0..n)
        .map(|v| !matches!(truth.ballot(v), RankedBallot::Ranked(_)))
        .collect();
    loop {
        let mut changed = false;
        for v in 0..n {
            if attainable[v] {
                continue;
            }
            if let RankedBallot::Ranked(list) = truth.ballot(v) {
                if list.iter().any(|&t| t == v || attainable[t]) {
                    attainable[v] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let unattainable: Vec<usize> = (0..n).filter(|&v| !attainable[v]).collect();

    let mut reference = ReferenceResolver::new();
    let mut csr = CsrForest::new();

    if truth.is_single_edge() {
        // Single-entry profiles must reproduce the legacy resolver
        // bit for bit, including the error contract.
        let equiv: Vec<Action> = (0..n)
            .map(|v| match truth.ballot(v) {
                RankedBallot::Cast => Action::Vote,
                RankedBallot::Abstain => Action::Abstain,
                RankedBallot::Ranked(list) => Action::Delegate(list[0]),
            })
            .collect();
        let legacy = DelegationGraph::new(equiv).resolve();
        for rule in DelegationRule::all() {
            let via_ref = reference.resolve_ranked(&production, rule);
            let via_csr = csr.resolve_ranked(&production, rule);
            for (backend, outcome) in [("reference", &via_ref), ("csr", &via_csr)] {
                match (&legacy, outcome) {
                    (Ok(expected), Ok((_, got))) => {
                        if got != expected {
                            return CheckOutcome::Fail(format!(
                                "single-edge {}/{backend} resolution differs from legacy resolve",
                                rule.id()
                            ));
                        }
                    }
                    (Err(expected), Err(got)) => {
                        if std::mem::discriminant(got) != std::mem::discriminant(expected) {
                            return CheckOutcome::Fail(format!(
                                "single-edge {}/{backend} error {got:?} differs from legacy \
                                 {expected:?}",
                                rule.id()
                            ));
                        }
                    }
                    (expected, got) => {
                        return CheckOutcome::Fail(format!(
                            "single-edge {}/{backend}: legacy says {expected:?}, ranked path \
                             says {:?}",
                            rule.id(),
                            got.as_ref().map(|(_, r)| r)
                        ));
                    }
                }
            }
        }
        return CheckOutcome::Pass;
    }

    let brute = oracle::ranked_brute_force(&truth);
    for rule in DelegationRule::all() {
        let (sel, res) = match reference.resolve_ranked(&production, rule) {
            Ok(pair) => pair,
            Err(e) => {
                return CheckOutcome::Fail(format!(
                    "{} errored on a multi-entry profile: {e}",
                    rule.id()
                ))
            }
        };
        match csr.resolve_ranked(&production, rule) {
            Ok((sel_csr, res_csr)) => {
                if sel_csr != sel || res_csr != res {
                    return CheckOutcome::Fail(format!(
                        "{}: csr backend disagrees with the reference backend",
                        rule.id()
                    ));
                }
            }
            Err(e) => {
                return CheckOutcome::Fail(format!("{}: csr backend errored: {e}", rule.id()))
            }
        }
        if sel.exhausted() != unattainable.as_slice() {
            return CheckOutcome::Fail(format!(
                "{}: exhausted {:?} differs from the unattainable fixpoint {:?}",
                rule.id(),
                sel.exhausted(),
                unattainable
            ));
        }
        // Chosen ranks must cite the *submitted* preference order — the
        // property `--mutate rank-order` breaks at every grid size.
        let mut true_rank_sum = 0u64;
        for v in 0..n {
            match &sel.actions()[v] {
                Action::Delegate(t) => {
                    let RankedBallot::Ranked(list) = truth.ballot(v) else {
                        return CheckOutcome::Fail(format!(
                            "{}: voter {v} delegated without a ranked ballot",
                            rule.id()
                        ));
                    };
                    let Some(idx) = list.iter().position(|x| x == t) else {
                        return CheckOutcome::Fail(format!(
                            "{}: voter {v} selected {t}, which its submitted list never ranks",
                            rule.id()
                        ));
                    };
                    let want = idx as u8 + 1;
                    if sel.chosen_rank()[v] != Some(want) {
                        return CheckOutcome::Fail(format!(
                            "{}: voter {v} reports rank {:?} but target {t} sits at submitted \
                             rank {want}",
                            rule.id(),
                            sel.chosen_rank()[v]
                        ));
                    }
                    true_rank_sum += u64::from(want);
                }
                Action::Vote | Action::Abstain => {
                    if sel.chosen_rank()[v].is_some()
                        && !matches!(truth.ballot(v), RankedBallot::Ranked(_))
                    {
                        return CheckOutcome::Fail(format!(
                            "{}: non-ranked voter {v} carries a chosen rank",
                            rule.id()
                        ));
                    }
                }
                other => {
                    return CheckOutcome::Fail(format!(
                        "{}: voter {v} selected a non-single-edge action {other:?}",
                        rule.id()
                    ))
                }
            }
        }
        if sel.rank_sum() != true_rank_sum {
            return CheckOutcome::Fail(format!(
                "{}: reported rank sum {} differs from the submitted-order sum {}",
                rule.id(),
                sel.rank_sum(),
                true_rank_sum
            ));
        }
        // Maximality: every attainable ranked voter must be assigned.
        for v in 0..n {
            if attainable[v]
                && matches!(truth.ballot(v), RankedBallot::Ranked(_))
                && sel.chosen_rank()[v].is_none()
            {
                return CheckOutcome::Fail(format!(
                    "{}: attainable voter {v} was left unassigned",
                    rule.id()
                ));
            }
        }
        // Brute-force scoring on small electorates.
        if let Some(report) = &brute {
            match rule {
                DelegationRule::MinDepth => {
                    let depths = chase_depths(sel.actions(), &attainable, &truth);
                    if depths != report.min_depth {
                        return CheckOutcome::Fail(format!(
                            "min-depth: selected depths {depths:?} differ from the brute-force \
                             minima {:?}",
                            report.min_depth
                        ));
                    }
                    // First-listed tie-break among depth-optimal edges.
                    for v in 0..n {
                        let RankedBallot::Ranked(list) = truth.ballot(v) else {
                            continue;
                        };
                        let Some(d) = report.min_depth[v] else {
                            continue;
                        };
                        let expect = if d == 0 {
                            v
                        } else {
                            match list
                                .iter()
                                .find(|&&t| t != v && report.min_depth[t] == Some(d - 1))
                            {
                                Some(&t) => t,
                                None => {
                                    return CheckOutcome::Fail(format!(
                                        "min-depth: no submitted edge of voter {v} achieves \
                                         depth {}",
                                        d - 1
                                    ))
                                }
                            }
                        };
                        if sel.actions()[v] != Action::Delegate(expect) {
                            return CheckOutcome::Fail(format!(
                                "min-depth: voter {v} should take its first depth-optimal edge \
                                 to {expect}, selected {:?}",
                                sel.actions()[v]
                            ));
                        }
                    }
                }
                DelegationRule::MinSum => {
                    if true_rank_sum != report.min_rank_sum {
                        return CheckOutcome::Fail(format!(
                            "min-sum: selected rank total {true_rank_sum} vs brute-force \
                             optimum {}",
                            report.min_rank_sum
                        ));
                    }
                }
            }
        }
    }
    CheckOutcome::Pass
}

/// Per-voter chain depths of a selected forest, chased naively; `None`
/// for exhausted (unattainable) ranked voters.
fn chase_depths(
    actions: &[Action],
    attainable: &[bool],
    truth: &RankedProfile,
) -> Vec<Option<usize>> {
    let n = actions.len();
    (0..n)
        .map(|v| {
            if !attainable[v] && matches!(truth.ballot(v), RankedBallot::Ranked(_)) {
                return None;
            }
            let mut cur = v;
            let mut hops = 0usize;
            loop {
                match actions[cur] {
                    Action::Delegate(t) if t != cur => {
                        hops += 1;
                        if hops > n {
                            return None;
                        }
                        cur = t;
                    }
                    _ => return Some(hops),
                }
            }
        })
        .collect()
}

fn check_ranked_live_replay(
    actions: &[Action],
    ps: &[f64],
    seed: u64,
    ctx: &CheckContext,
) -> CheckOutcome {
    if actions.is_empty() {
        return CheckOutcome::Skip("empty electorate");
    }
    let (_, production) = match ranked_profiles(actions, seed, ctx) {
        Ok(pair) => pair,
        Err(skip) => return skip,
    };
    let n = production.n();
    for rule in DelegationRule::all() {
        let mut mirror = match RankedMirror::new(production.clone(), rule, ps.to_vec()) {
            Ok(m) => m,
            // A cyclic single-edge profile cannot boot by contract; the
            // resolve-oracle check pins that contract against legacy.
            Err(CoreError::CyclicDelegation) => continue,
            Err(e) => {
                return CheckOutcome::Fail(format!("{}: mirror boot errored: {e}", rule.id()))
            }
        };
        if let Err(msg) = ranked_lockstep(&mirror) {
            return CheckOutcome::Fail(format!("{}: at boot, {msg}", rule.id()));
        }
        let mut rng = stream_rng(split_seed(seed, RANKED_REPLAY_SALT), 0);
        for probe in 0..8 {
            let voter = rng.gen_range(0..n);
            let ballot = match rng.gen_range(0..4u8) {
                0 => RankedBallot::Cast,
                1 => RankedBallot::Abstain,
                _ => {
                    let len = rng.gen_range(1..=MAX_RANKS);
                    let mut list = Vec::new();
                    for _ in 0..len {
                        let t = rng.gen_range(0..n);
                        if !list.contains(&t) {
                            list.push(t);
                        }
                    }
                    RankedBallot::Ranked(list)
                }
            };
            let before = mirror.selection().actions().to_vec();
            match mirror.set_ballot(voter, ballot) {
                Ok(changed) => {
                    let recount = before
                        .iter()
                        .zip(mirror.selection().actions())
                        .filter(|(a, b)| a != b)
                        .count();
                    if changed != recount {
                        return CheckOutcome::Fail(format!(
                            "{}: probe {probe} reported {changed} changed voters, diff says \
                             {recount}",
                            rule.id()
                        ));
                    }
                    if let Err(msg) = ranked_lockstep(&mirror) {
                        return CheckOutcome::Fail(format!(
                            "{}: after probe {probe}, {msg}",
                            rule.id()
                        ));
                    }
                }
                Err(CoreError::CyclicDelegation) => {
                    // Single-edge cycle: the edit must roll back cleanly.
                    if mirror.selection().actions() != before.as_slice() {
                        return CheckOutcome::Fail(format!(
                            "{}: probe {probe} was rejected but mutated the selection",
                            rule.id()
                        ));
                    }
                }
                Err(e) => {
                    return CheckOutcome::Fail(format!(
                        "{}: probe {probe} rejected unexpectedly: {e}",
                        rule.id()
                    ))
                }
            }
        }
    }
    CheckOutcome::Pass
}

/// Asserts a mirror's engine matches from-scratch selection and
/// resolution of its current profile.
fn ranked_lockstep(m: &RankedMirror) -> Result<(), String> {
    let (sel, res) = ld_core::ranked::resolve_ranked(m.profile(), m.rule())
        .map_err(|e| format!("from-scratch resolution errored: {e}"))?;
    if sel.actions() != m.selection().actions() {
        return Err("mirror selection differs from from-scratch selection".to_string());
    }
    if res != m.engine().resolution() {
        return Err("engine resolution differs from from-scratch resolution".to_string());
    }
    m.engine()
        .self_check()
        .map_err(|e| format!("engine self-check failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CheckContext {
        CheckContext {
            tally: TallyImpl::Real,
            csr: CsrImpl::Real,
            wal: WalImpl::Real,
            serve: ServeImpl::Real,
            coins: CoinsImpl::Real,
            dynamics: DynamicsImpl::Real,
            ranked: RankedImpl::Real,
        }
    }

    #[test]
    fn check_ids_round_trip() {
        for check in CheckId::all() {
            assert_eq!(CheckId::parse(check.id()), Some(check));
        }
        assert_eq!(CheckId::parse("nonsense"), None);
    }

    #[test]
    fn structural_checks_pass_on_a_simple_chain() {
        let actions = vec![Action::Delegate(1), Action::Delegate(2), Action::Vote];
        let ps = vec![0.3, 0.5, 0.7];
        for check in CheckId::all().into_iter().filter(|c| c.shrinkable()) {
            let outcome = recheck_structural(check, &actions, &ps, 5, &ctx());
            assert!(
                !matches!(outcome, CheckOutcome::Fail(_)),
                "{} failed: {outcome:?}",
                check.id()
            );
        }
    }

    #[test]
    fn tie_flip_mutant_is_detected_on_an_even_split() {
        // Two direct voters at p = 0.5: tie probability 0.5, so flipping
        // the Incorrect credit from 0 to 1 shifts the tally by 0.5.
        let actions = vec![Action::Vote, Action::Vote];
        let ps = vec![0.5, 0.5];
        let mutated = CheckContext {
            tally: TallyImpl::TieFlipped,
            ..ctx()
        };
        let outcome = check_tally_oracle(&actions, &ps, &mutated);
        assert!(
            matches!(outcome, CheckOutcome::Fail(_)),
            "mutant not detected: {outcome:?}"
        );
        assert_eq!(
            check_tally_oracle(&actions, &ps, &ctx()),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn csr_offset_mutant_is_detected_on_a_delegation_chain() {
        // Skewing the interior offsets shifts a vote between consecutive
        // sinks, so both CSR checks must flag it while the real build
        // passes. A chain plus a lone voter gives two sinks with unequal
        // weights, which the skew visibly redistributes.
        let actions = vec![Action::Delegate(1), Action::Vote, Action::Vote];
        let ps = vec![0.4, 0.6, 0.7];
        let mutated = CheckContext {
            csr: CsrImpl::OffsetSkewed,
            ..ctx()
        };
        let resolve = check_csr_resolve_oracle(&actions, &mutated);
        assert!(
            matches!(resolve, CheckOutcome::Fail(_)),
            "resolve mutant not detected: {resolve:?}"
        );
        let tally = check_csr_tally_oracle(&actions, &ps, 5, &mutated);
        assert!(
            matches!(tally, CheckOutcome::Fail(_)),
            "tally mutant not detected: {tally:?}"
        );
        assert_eq!(
            check_csr_resolve_oracle(&actions, &ctx()),
            CheckOutcome::Pass
        );
        assert_eq!(
            check_csr_tally_oracle(&actions, &ps, 5, &ctx()),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn wal_crc_mutant_is_detected_on_a_delegation_chain() {
        // Skipping the frame CRC lets a bit-flipped voter id decode
        // "successfully", so the crash oracle's corruption probes must
        // flag the CRC-skipping scanner while the real one passes.
        let actions = vec![Action::Delegate(1), Action::Delegate(2), Action::Vote];
        let ps = vec![0.3, 0.5, 0.7];
        let mutated = CheckContext {
            wal: WalImpl::CrcSkipped,
            ..ctx()
        };
        let outcome = check_wal_crash_oracle(&actions, &ps, 5, &mutated);
        assert!(
            matches!(outcome, CheckOutcome::Fail(_)),
            "wal-crc mutant not detected: {outcome:?}"
        );
        assert_eq!(
            check_wal_crash_oracle(&actions, &ps, 5, &ctx()),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn shard_route_mutant_is_detected_on_a_delegation_chain() {
        // Misrouting the delegator leaves its phantom self-vote alive on
        // the canonical owner shard, so the merged weights must visibly
        // diverge from the single-engine oracle while the correctly
        // routed service passes.
        let actions = vec![Action::Delegate(1), Action::Delegate(2), Action::Vote];
        let ps = vec![0.3, 0.5, 0.7];
        let mutated = CheckContext {
            serve: ServeImpl::Misrouted,
            ..ctx()
        };
        let outcome = check_serve_replay(&actions, &ps, 5, &mutated);
        assert!(
            matches!(outcome, CheckOutcome::Fail(_)),
            "shard-route mutant not detected: {outcome:?}"
        );
        assert_eq!(
            check_serve_replay(&actions, &ps, 5, &ctx()),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn packed_threshold_mutant_is_detected_on_a_delegation_chain() {
        // Skipping the most significant quantizer plane flips roughly
        // half the coins of every plane-thresholded lane, so the
        // packed-vs-scalar differential must flag the skewed kernel on
        // the first diverging round while the real one passes.
        let actions = vec![Action::Delegate(1), Action::Vote, Action::Vote];
        let ps = vec![0.4, 0.6, 0.7];
        let mutated = CheckContext {
            coins: CoinsImpl::ThresholdSkewed,
            ..ctx()
        };
        let outcome = check_packed_tally_oracle(&actions, &ps, 5, &mutated);
        assert!(
            matches!(outcome, CheckOutcome::Fail(_)),
            "packed-threshold mutant not detected: {outcome:?}"
        );
        assert_eq!(
            check_packed_tally_oracle(&actions, &ps, 5, &ctx()),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn packed_check_also_sees_the_csr_offset_mutant() {
        // The fold legs go through the (possibly skewed) CSR forest, so
        // the packed differential independently catches a wrong flat
        // layout too.
        let actions = vec![Action::Delegate(1), Action::Vote, Action::Vote];
        let ps = vec![0.4, 0.6, 0.7];
        let mutated = CheckContext {
            csr: CsrImpl::OffsetSkewed,
            ..ctx()
        };
        let outcome = check_packed_tally_oracle(&actions, &ps, 5, &mutated);
        assert!(
            matches!(outcome, CheckOutcome::Fail(_)),
            "csr-offset not visible through the packed fold: {outcome:?}"
        );
    }

    #[test]
    fn br_tiebreak_mutant_is_detected_on_a_shared_sink_tie() {
        // Voter 0 can reach the top sink 3 via 1, via 2, or directly:
        // three candidates with bit-identical deviation scores. The
        // canonical rule picks Delegate(1); the skew picks Delegate(3),
        // so the oracle differential must flag the very first round
        // while the real tie-break passes.
        let actions = vec![
            Action::Vote,
            Action::Delegate(3),
            Action::Delegate(3),
            Action::Vote,
        ];
        let ps = vec![0.3, 0.5, 0.55, 0.9];
        let mutated = CheckContext {
            dynamics: DynamicsImpl::TiebreakSkewed,
            ..ctx()
        };
        let outcome = check_dynamics_oracle(&actions, &ps, &mutated);
        assert!(
            matches!(outcome, CheckOutcome::Fail(_)),
            "br-tiebreak mutant not detected: {outcome:?}"
        );
        assert_eq!(
            check_dynamics_oracle(&actions, &ps, &ctx()),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn dynamics_oracle_matches_on_a_cycling_instance() {
        // Six direct voters on a linear profile cycle with period 3
        // under simultaneous best responses; the brute-force loop must
        // agree round for round, including the cycle verdict.
        let actions = vec![Action::Vote; 6];
        let ps: Vec<f64> = (0..6).map(|i| 0.3 + 0.08 * i as f64).collect();
        assert_eq!(
            check_dynamics_oracle(&actions, &ps, &ctx()),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn dynamics_replay_covers_crash_and_recovery() {
        // A converging instance with several rounds of accepted moves:
        // the WAL crash leg must recover and re-converge bit-identically
        // for any seeded crash point (three seeds probe early, middle,
        // and past-the-end op indices).
        let actions = vec![Action::Vote; 6];
        let ps: Vec<f64> = (0..6).map(|i| 0.3 + 0.08 * i as f64).collect();
        for seed in [0, 7, 63] {
            assert_eq!(
                check_dynamics_replay(&actions, &ps, seed),
                CheckOutcome::Pass,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn dynamics_corpus_entries_converge_cycle_and_shift_as_noted() {
        // The three dynamics regression seeds must keep witnessing the
        // behaviours their notes claim: one converging trajectory, one
        // period-3 limit cycle, and one coalition-shifted variance. The
        // pin is by (seed, cell) through the same generator the
        // conformance replay uses, so corpus drift fails loudly here.
        use crate::corpus;
        use crate::gen::default_grid;
        use ld_live::dynamics::RoundSnapshot;

        let entries = corpus::entries().unwrap();
        let grid = default_grid(true);
        let run_cell = |cell: &str, seed: u64, rules_of: &dyn Fn(usize) -> Vec<MoveRule>| {
            let spec = grid
                .iter()
                .find(|s| s.id().contains(cell))
                .unwrap_or_else(|| panic!("corpus cell {cell} matches no quick-grid cell"));
            let case = spec.build(seed).unwrap();
            let actions = case.dg.actions().to_vec();
            let ps = case.instance.profile().as_slice().to_vec();
            let view = DynamicsView::complete(&ps, ALPHA);
            let spec = DynamicsSpec {
                max_rounds: DYN_ORACLE_MAX_ROUNDS,
                tiebreak: TieBreakRule::Canonical,
            };
            run_dynamics(&view, &actions, &rules_of(actions.len()), &spec).unwrap()
        };
        let honest = |n: usize| vec![MoveRule::BestResponse; n];

        let converging = entries
            .iter()
            .find(|e| e.note.contains("(converging)"))
            .expect("corpus lost its converging dynamics entry");
        let traj = run_cell(&converging.cell, converging.seed, &honest);
        assert!(
            matches!(traj.termination, Termination::Fixpoint { .. }) && !traj.rounds.is_empty(),
            "converging entry now terminates as {:?} after {} rounds",
            traj.termination,
            traj.rounds.len()
        );

        let cycling = entries
            .iter()
            .find(|e| e.note.contains("(cycling)"))
            .expect("corpus lost its cycling dynamics entry");
        let traj = run_cell(&cycling.cell, cycling.seed, &honest);
        assert!(
            matches!(traj.termination, Termination::Cycle { .. }),
            "cycling entry now terminates as {:?}",
            traj.termination
        );

        let shifted = entries
            .iter()
            .find(|e| e.note.contains("(coalition-shifted)"))
            .expect("corpus lost its coalition-shifted dynamics entry");
        let base = run_cell(&shifted.cell, shifted.seed, &honest);
        let coalition = run_cell(&shifted.cell, shifted.seed, &|n| {
            let mut rules = vec![MoveRule::BestResponse; n];
            rules[0] = MoveRule::VarianceSeeking;
            rules[1] = MoveRule::VarianceSeeking;
            rules
        });
        let honest_var = RoundSnapshot::from_engine(&base.engine).var;
        let coalition_var = RoundSnapshot::from_engine(&coalition.engine).var;
        assert!(
            (honest_var - coalition_var).abs() > 1e-6,
            "coalition no longer shifts the variance: {honest_var} vs {coalition_var}"
        );
    }

    #[test]
    fn dynamics_corpus_coalition_entry_shifts_variance() {
        // Named by the corpus note; the substantive assertions live in
        // dynamics_corpus_entries_converge_cycle_and_shift_as_noted.
        dynamics_corpus_entries_converge_cycle_and_shift_as_noted();
    }

    #[test]
    fn ranked_corpus_entries_witness_fallback_split_and_exhaustion() {
        // The three ranked regression seeds must keep witnessing the
        // behaviours their notes claim: a forced fall-back past a dead
        // rank-1 edge, a MinDepth/MinSum disagreement, and whole lists
        // exhausting into abstention. The pin is by (seed, cell)
        // through the same ballot derivation the conformance checks
        // use, so generator or rule drift fails loudly here.
        use crate::corpus;
        use crate::gen::default_grid;
        use std::collections::HashSet;

        let entries = corpus::entries().unwrap();
        let grid = default_grid(true);
        let select_cell = |cell: &str, seed: u64| {
            let spec = grid
                .iter()
                .find(|s| s.id().contains(cell))
                .unwrap_or_else(|| panic!("corpus cell {cell} matches no quick-grid cell"));
            let case = spec.build(seed).unwrap();
            let ballots = ranked_ballots(case.dg.actions(), seed);
            let profile = RankedProfile::new(ballots).unwrap();
            assert!(
                !profile.is_single_edge(),
                "{cell}: witness degenerated to a single-edge profile"
            );
            let depth = DelegationRule::MinDepth.select(&profile).unwrap();
            let sum = DelegationRule::MinSum.select(&profile).unwrap();
            (profile, depth, sum)
        };

        let fallback = entries
            .iter()
            .find(|e| e.note.contains("(rank-fallback)"))
            .expect("corpus lost its rank-fallback ranked entry");
        let (profile, depth, sum) = select_cell(&fallback.cell, fallback.seed);
        let dead: HashSet<usize> = depth.exhausted().iter().copied().collect();
        let forced = (0..profile.n()).any(|v| match profile.ballot(v) {
            RankedBallot::Ranked(list) => {
                dead.contains(&list[0])
                    && depth.chosen_rank()[v].is_some_and(|r| r >= 2)
                    && sum.chosen_rank()[v].is_some_and(|r| r >= 2)
            }
            _ => false,
        });
        assert!(
            forced,
            "rank-fallback entry no longer forces a lower-ranked edge"
        );

        let split = entries
            .iter()
            .find(|e| e.note.contains("(rule-split)"))
            .expect("corpus lost its rule-split ranked entry");
        let (_, depth, sum) = select_cell(&split.cell, split.seed);
        assert_ne!(
            depth.actions(),
            sum.actions(),
            "rule-split entry: MinDepth and MinSum now agree"
        );

        let exhausted = entries
            .iter()
            .find(|e| e.note.contains("(rank-exhausted)"))
            .expect("corpus lost its rank-exhausted ranked entry");
        let (profile, depth, _) = select_cell(&exhausted.cell, exhausted.seed);
        assert!(
            !depth.exhausted().is_empty(),
            "rank-exhausted entry no longer exhausts any list"
        );
        let (_, res) = ReferenceResolver::new()
            .resolve_ranked(&profile, DelegationRule::MinDepth)
            .unwrap();
        assert!(
            res.discarded() >= depth.exhausted().len(),
            "exhausted voters must be discarded in the resolution"
        );
    }

    #[test]
    fn csr_mutation_round_trips_through_its_id() {
        use crate::Mutation;
        for m in Mutation::all() {
            assert_eq!(Mutation::parse(m.id()), Some(m));
        }
        assert_eq!(Mutation::parse("nonsense"), None);
    }

    #[test]
    fn relabel_check_passes_on_random_style_graph() {
        let actions = vec![
            Action::Delegate(4),
            Action::Vote,
            Action::Abstain,
            Action::Delegate(2),
            Action::Vote,
        ];
        let ps = vec![0.2, 0.3, 0.5, 0.6, 0.8];
        assert_eq!(
            check_relabel_equivariance(&actions, &ps, 99),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn conservation_check_passes_with_abstention() {
        let actions = vec![Action::Delegate(1), Action::Abstain, Action::Vote];
        assert_eq!(check_weight_conservation(&actions), CheckOutcome::Pass);
    }

    #[test]
    fn ranked_checks_pass_on_seeded_cases() {
        let actions = vec![
            Action::Delegate(1),
            Action::Delegate(2),
            Action::Vote,
            Action::Delegate(2),
            Action::Abstain,
            Action::Vote,
        ];
        let ps = vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        for seed in 0..32u64 {
            let resolve = check_ranked_resolve_oracle(&actions, seed, &ctx());
            assert_eq!(resolve, CheckOutcome::Pass, "resolve failed at seed {seed}");
            let replay = check_ranked_live_replay(&actions, &ps, seed, &ctx());
            assert_eq!(replay, CheckOutcome::Pass, "replay failed at seed {seed}");
        }
    }

    #[test]
    fn rank_order_mutant_is_detected_on_seeded_cases() {
        // Reversing the submitted lists re-routes any voter whose
        // selection is not the middle of its list, and the chosen-rank
        // bookkeeping cites the wrong submitted position — some seed in
        // this sweep must expose it while every honest run passes.
        let actions = vec![
            Action::Delegate(1),
            Action::Delegate(2),
            Action::Vote,
            Action::Delegate(2),
            Action::Abstain,
            Action::Vote,
        ];
        let mutated = CheckContext {
            ranked: RankedImpl::RankOrderReversed,
            ..ctx()
        };
        let mut detected = 0usize;
        for seed in 0..32u64 {
            if matches!(
                check_ranked_resolve_oracle(&actions, seed, &mutated),
                CheckOutcome::Fail(_)
            ) {
                detected += 1;
            }
            assert_eq!(
                check_ranked_resolve_oracle(&actions, seed, &ctx()),
                CheckOutcome::Pass
            );
        }
        assert!(detected > 0, "rank-order mutant never detected");
    }

    #[test]
    fn single_edge_ranked_cells_defer_to_the_legacy_resolver() {
        // A profile whose every list has one entry must reproduce the
        // legacy error contract: a two-cycle under single-edge lists is
        // CyclicDelegation, never an abstain fallback. Built directly so
        // the test does not depend on the derivation stream.
        let profile = RankedProfile::new(vec![
            RankedBallot::Ranked(vec![1]),
            RankedBallot::Ranked(vec![0]),
            RankedBallot::Cast,
        ])
        .unwrap();
        for rule in DelegationRule::all() {
            let err = rule.select(&profile).unwrap_err();
            assert!(matches!(err, CoreError::CyclicDelegation));
        }
    }
}
