//! Deliberately naive reference implementations.
//!
//! Everything here favours obviousness over speed: a recursive `O(n²)`
//! delegation resolver with no memoisation, brute-force enumeration of
//! outcome vectors for the exact tally, and a plain Monte Carlo
//! estimator. The optimised implementations in `ld-core`, `ld-prob` and
//! `ld-live` are checked against these, never the other way around.

use ld_core::delegation::Action;
use ld_core::ranked::{RankedBallot, RankedProfile};
use rand::rngs::StdRng;
use rand::Rng;

/// What the reference resolver concluded about a delegation graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleOutcome {
    /// The graph resolves; the payload mirrors `Resolution`.
    Resolved(OracleResolution),
    /// The graph contains a delegation cycle.
    Cycle,
    /// A delegation target is out of range (first offender in voter order).
    TargetOutOfRange {
        /// The delegating voter.
        voter: usize,
        /// The offending target.
        target: usize,
    },
    /// The graph contains a multi-target delegation, which the exact
    /// resolver rejects.
    MultiTarget,
}

/// The reference resolver's result, field-for-field comparable with
/// `ld_core::delegation::Resolution`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleResolution {
    /// `sink_of[i]`: the sink voter `i`'s vote reaches, or `None` if the
    /// chain ends in an abstainer.
    pub sink_of: Vec<Option<usize>>,
    /// `weight[v]`: number of votes accumulating at voter `v`.
    pub weight: Vec<usize>,
    /// Votes discarded through abstention chains.
    pub discarded: usize,
    /// Longest delegation chain, in edges.
    pub longest_chain: usize,
}

/// Resolves a delegation graph the obvious way: for every voter,
/// independently chase the chain recursively until a terminal action,
/// bailing out as cyclic after more than `n` hops. `O(n²)` worst case and
/// proud of it.
///
/// Mirrors the optimised resolver's validation order: multi-target
/// delegations are rejected first, then out-of-range targets (first
/// offender in voter order), then cycles.
pub fn resolve_recursive(actions: &[Action]) -> OracleOutcome {
    let n = actions.len();
    if actions.iter().any(|a| matches!(a, Action::DelegateMany(_))) {
        return OracleOutcome::MultiTarget;
    }
    for (voter, a) in actions.iter().enumerate() {
        if let Action::Delegate(t) = a {
            if *t >= n {
                return OracleOutcome::TargetOutOfRange { voter, target: *t };
            }
        }
    }

    /// Chases voter `v`'s chain; returns `(terminal sink, depth in edges)`
    /// or `Err(())` once the hop count proves a cycle.
    fn chase(actions: &[Action], v: usize, hops: usize) -> Result<(Option<usize>, usize), ()> {
        if hops > actions.len() {
            return Err(());
        }
        match &actions[v] {
            Action::Vote => Ok((Some(v), 0)),
            Action::Abstain => Ok((None, 0)),
            Action::Delegate(t) if *t == v => Ok((Some(v), 0)),
            Action::Delegate(t) => chase(actions, *t, hops + 1).map(|(s, d)| (s, d + 1)),
            Action::DelegateMany(_) => unreachable!("rejected above"),
            // `Action` is non_exhaustive; the oracle deliberately treats
            // unknown future variants as a direct vote so that any real
            // semantic difference shows up as a resolver mismatch.
            _ => Ok((Some(v), 0)),
        }
    }

    let mut sink_of = Vec::with_capacity(n);
    let mut weight = vec![0usize; n];
    let mut discarded = 0usize;
    let mut longest_chain = 0usize;
    for v in 0..n {
        match chase(actions, v, 0) {
            Err(()) => return OracleOutcome::Cycle,
            Ok((sink, depth)) => {
                match sink {
                    Some(s) => weight[s] += 1,
                    None => discarded += 1,
                }
                longest_chain = longest_chain.max(depth);
                sink_of.push(sink);
            }
        }
    }
    OracleOutcome::Resolved(OracleResolution {
        sink_of,
        weight,
        discarded,
        longest_chain,
    })
}

/// Largest sink count the exact brute-force tally will enumerate (2^k
/// outcome vectors).
pub const BRUTE_FORCE_MAX_TERMS: usize = 20;

/// Exact probability that the correct option wins a weighted majority
/// among independent sinks, by enumerating all `2^k` outcome vectors.
///
/// `terms` are `(weight, p_correct)` per sink, `total_votes` the number of
/// tallied ballots, and `tie_credit` the probability credited to an exact
/// tie. Returns `None` when there are more than
/// [`BRUTE_FORCE_MAX_TERMS`] sinks.
pub fn brute_force_majority(
    terms: &[(usize, f64)],
    total_votes: usize,
    tie_credit: f64,
) -> Option<f64> {
    let k = terms.len();
    if k > BRUTE_FORCE_MAX_TERMS {
        return None;
    }
    let mut acc = 0.0;
    for mask in 0u32..(1u32 << k) {
        let mut prob = 1.0;
        let mut correct_weight = 0usize;
        for (i, &(w, p)) in terms.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                prob *= p;
                correct_weight += w;
            } else {
                prob *= 1.0 - p;
            }
        }
        if 2 * correct_weight > total_votes {
            acc += prob;
        } else if 2 * correct_weight == total_votes {
            acc += tie_credit * prob;
        }
    }
    Some(acc)
}

/// Largest electorate the coin-vector brute force will enumerate (2^n
/// coin vectors).
pub const COIN_BRUTE_MAX_N: usize = 12;

/// Exact decision probability for an arbitrary delegation graph
/// (including multi-target nodes) by enumerating every personal coin
/// vector `b ∈ {0,1}^n` and propagating outcomes deterministically —
/// the exact distribution `tally::sample_decision` samples from, with
/// ties counted as incorrect.
///
/// Each voter `i` flips at most one personal coin `b_i ~ Bernoulli(p_i)`:
/// direct voters and self-delegators use it as their ballot, and
/// multi-target delegators use it to break an internal tie among their
/// delegates. Returns `None` for `n >` [`COIN_BRUTE_MAX_N`] or cyclic
/// graphs.
pub fn brute_force_decision_by_coins(actions: &[Action], ps: &[f64]) -> Option<f64> {
    let n = actions.len();
    if n > COIN_BRUTE_MAX_N || ps.len() != n {
        return None;
    }
    // Any order that evaluates delegation targets before their delegators
    // works; build one by depth-first post-order and fail on cycles.
    let order = eval_order(actions)?;
    let mut acc = 0.0;
    let mut outcome: Vec<Option<bool>> = vec![None; n];
    for mask in 0u32..(1u32 << n) {
        let coin = |i: usize| (mask >> i) & 1 == 1;
        let mut prob = 1.0;
        for (i, &p) in ps.iter().enumerate() {
            prob *= if coin(i) { p } else { 1.0 - p };
        }
        if prob == 0.0 {
            continue;
        }
        for &i in &order {
            outcome[i] = match &actions[i] {
                Action::Vote => Some(coin(i)),
                Action::Abstain => None,
                Action::Delegate(t) if *t == i => Some(coin(i)),
                Action::Delegate(t) => outcome[*t],
                Action::DelegateMany(ts) => {
                    let votes: Vec<bool> = ts.iter().filter_map(|&t| outcome[t]).collect();
                    let correct = votes.iter().filter(|&&v| v).count();
                    let incorrect = votes.len() - correct;
                    if correct > incorrect {
                        Some(true)
                    } else if incorrect > correct {
                        Some(false)
                    } else {
                        Some(coin(i))
                    }
                }
                // Unknown future variants vote directly; see `chase`.
                _ => Some(coin(i)),
            };
        }
        let correct = outcome.iter().filter(|o| **o == Some(true)).count();
        let tallied = outcome.iter().filter(|o| o.is_some()).count();
        if 2 * correct > tallied {
            acc += prob;
        }
    }
    Some(acc)
}

/// An evaluation order in which every delegation target precedes its
/// delegators, or `None` if the delegation edges form a cycle.
fn eval_order(actions: &[Action]) -> Option<Vec<usize>> {
    let n = actions.len();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut order = Vec::with_capacity(n);
    fn visit(
        actions: &[Action],
        v: usize,
        state: &mut [u8],
        order: &mut Vec<usize>,
    ) -> Result<(), ()> {
        match state[v] {
            2 => return Ok(()),
            1 => return Err(()),
            _ => {}
        }
        state[v] = 1;
        let targets: Vec<usize> = match &actions[v] {
            Action::Delegate(t) if *t != v => vec![*t],
            Action::DelegateMany(ts) => ts.iter().copied().filter(|&t| t != v).collect(),
            _ => Vec::new(),
        };
        for t in targets {
            if t >= actions.len() {
                return Err(());
            }
            visit(actions, t, state, order)?;
        }
        state[v] = 2;
        order.push(v);
        Ok(())
    }
    for v in 0..n {
        if visit(actions, v, &mut state, &mut order).is_err() {
            return None;
        }
    }
    Some(order)
}

/// Largest electorate the brute-force ranked-resolution oracle will
/// score by enumerating every cycle-free maximal assignment.
pub const RANKED_BRUTE_MAX_N: usize = 10;

/// Assignment-count cap for [`ranked_brute_force`]; profiles whose
/// preference lists multiply out past this many combinations are skipped
/// rather than enumerated.
const RANKED_BRUTE_MAX_ASSIGNMENTS: u64 = 1 << 18;

/// What the brute-force ranked oracle concluded about a preference
/// profile, minimised over every *valid maximal assignment*: each
/// attainable ranked voter picks exactly one entry from its list, and
/// every chain of picks ends at a cast or abstain ballot (or a
/// self-entry) without cycling or running into an exhausted voter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedOracleReport {
    /// `attainable[v]`: whether `v` can terminate at all — terminals are
    /// attainable, and a ranked voter is attainable iff some list entry
    /// is itself or an attainable voter (least fixpoint). Unattainable
    /// voters are exactly the exhausted-list fallbacks.
    pub attainable: Vec<bool>,
    /// `min_depth[v]`: the smallest chain depth `v` achieves in any
    /// valid maximal assignment (`0` for terminals and self-entries),
    /// or `None` when `v` is unattainable.
    pub min_depth: Vec<Option<usize>>,
    /// The smallest total 1-based rank any valid maximal assignment
    /// spends across all assigned voters.
    pub min_rank_sum: u64,
    /// How many valid maximal assignments exist (at least one whenever
    /// the profile is well-formed).
    pub assignments: u64,
}

/// Scores a ranked preference profile the obvious way: compute the
/// attainable set by naive fixpoint iteration, then enumerate *every*
/// combination of list choices for the attainable ranked voters, keep
/// the ones whose chains all terminate, and minimise depth per voter and
/// total rank across them. Exponential and proud of it.
///
/// Returns `None` for electorates past [`RANKED_BRUTE_MAX_N`] voters or
/// profiles with more combinations than the internal cap.
pub fn ranked_brute_force(profile: &RankedProfile) -> Option<RankedOracleReport> {
    let n = profile.n();
    if n > RANKED_BRUTE_MAX_N {
        return None;
    }
    // Attainability: repeatedly promote any ranked voter with a usable
    // entry until nothing changes.
    let mut attainable: Vec<bool> = (0..n)
        .map(|v| !matches!(profile.ballot(v), RankedBallot::Ranked(_)))
        .collect();
    loop {
        let mut changed = false;
        for v in 0..n {
            if attainable[v] {
                continue;
            }
            if let RankedBallot::Ranked(list) = profile.ballot(v) {
                if list.iter().any(|&t| t == v || attainable[t]) {
                    attainable[v] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let choosers: Vec<usize> = (0..n)
        .filter(|&v| attainable[v] && matches!(profile.ballot(v), RankedBallot::Ranked(_)))
        .collect();
    let radices: Vec<usize> = choosers
        .iter()
        .map(|&v| match profile.ballot(v) {
            RankedBallot::Ranked(list) => list.len(),
            _ => unreachable!("choosers hold ranked ballots"),
        })
        .collect();
    let mut combos = 1u64;
    for &r in &radices {
        combos = combos.saturating_mul(r as u64);
        if combos > RANKED_BRUTE_MAX_ASSIGNMENTS {
            return None;
        }
    }
    let mut chooser_index = vec![None; n];
    for (i, &v) in choosers.iter().enumerate() {
        chooser_index[v] = Some(i);
    }
    // Chain depth of `v` under the current choice vector: chase picks
    // until a terminal ballot or self-entry, bailing out (`None`) on
    // cycles or on reaching an exhausted voter.
    let depth_of = |v: usize, choice: &[usize]| -> Option<usize> {
        let mut cur = v;
        let mut hops = 0usize;
        loop {
            match profile.ballot(cur) {
                RankedBallot::Cast | RankedBallot::Abstain => return Some(hops),
                RankedBallot::Ranked(list) => {
                    let ci = chooser_index[cur]?;
                    let t = list[choice[ci]];
                    if t == cur {
                        return Some(hops);
                    }
                    hops += 1;
                    if hops > n {
                        return None;
                    }
                    cur = t;
                }
            }
        }
    };
    let mut min_depth: Vec<Option<usize>> = (0..n)
        .map(|v| {
            if attainable[v] && chooser_index[v].is_none() {
                Some(0)
            } else {
                None
            }
        })
        .collect();
    let mut min_rank_sum = u64::MAX;
    let mut assignments = 0u64;
    let mut choice = vec![0usize; choosers.len()];
    loop {
        let depths: Option<Vec<usize>> = choosers.iter().map(|&v| depth_of(v, &choice)).collect();
        if let Some(depths) = depths {
            assignments += 1;
            let rank_sum: u64 = choice.iter().map(|&c| c as u64 + 1).sum();
            min_rank_sum = min_rank_sum.min(rank_sum);
            for (i, &v) in choosers.iter().enumerate() {
                min_depth[v] = Some(match min_depth[v] {
                    Some(d) => d.min(depths[i]),
                    None => depths[i],
                });
            }
        }
        let mut i = 0;
        loop {
            if i == choice.len() {
                return Some(RankedOracleReport {
                    attainable,
                    min_depth,
                    min_rank_sum: if assignments == 0 { 0 } else { min_rank_sum },
                    assignments,
                });
            }
            choice[i] += 1;
            if choice[i] < radices[i] {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

/// A Monte Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationEstimate {
    /// Sample mean of the per-trial credit.
    pub estimate: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of trials.
    pub trials: u64,
}

/// Direct-simulation estimator of the weighted-majority decision
/// probability: draw every sink's ballot, credit wins fully and exact
/// ties at `tie_credit`, and track the running variance (Welford).
pub fn simulate_majority(
    terms: &[(usize, f64)],
    total_votes: usize,
    tie_credit: f64,
    trials: u64,
    rng: &mut StdRng,
) -> SimulationEstimate {
    let mut mean = 0.0;
    let mut m2 = 0.0;
    for t in 1..=trials {
        let mut correct_weight = 0usize;
        for &(w, p) in terms {
            if rng.gen_bool(p) {
                correct_weight += w;
            }
        }
        let x = if 2 * correct_weight > total_votes {
            1.0
        } else if 2 * correct_weight == total_votes {
            tie_credit
        } else {
            0.0
        };
        let delta = x - mean;
        mean += delta / t as f64;
        m2 += delta * (x - mean);
    }
    let variance = if trials > 1 {
        m2 / (trials - 1) as f64
    } else {
        0.0
    };
    SimulationEstimate {
        estimate: mean,
        std_error: (variance / trials.max(1) as f64).sqrt(),
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_oracle_minimises_over_cycle_free_assignments() {
        // 0 and 1 rank each other first; the mutual edge is a cycle, so
        // only 3 of the 4 combinations survive.
        let profile = RankedProfile::new(vec![
            RankedBallot::Ranked(vec![1, 3]),
            RankedBallot::Ranked(vec![0, 3]),
            RankedBallot::Abstain,
            RankedBallot::Cast,
        ])
        .unwrap();
        let report = ranked_brute_force(&profile).unwrap();
        assert_eq!(report.attainable, vec![true, true, true, true]);
        assert_eq!(report.assignments, 3);
        assert_eq!(report.min_rank_sum, 3);
        assert_eq!(report.min_depth, vec![Some(1), Some(1), Some(0), Some(0)]);
    }

    #[test]
    fn ranked_oracle_marks_exhausted_voters_unattainable() {
        let profile = RankedProfile::new(vec![
            RankedBallot::Ranked(vec![1, 2]),
            RankedBallot::Ranked(vec![2, 0]),
            RankedBallot::Ranked(vec![0, 1]),
            RankedBallot::Cast,
        ])
        .unwrap();
        let report = ranked_brute_force(&profile).unwrap();
        assert_eq!(report.attainable, vec![false, false, false, true]);
        assert_eq!(report.min_depth, vec![None, None, None, Some(0)]);
        assert_eq!(report.assignments, 1);
        assert_eq!(report.min_rank_sum, 0);
    }

    #[test]
    fn ranked_oracle_agrees_with_the_optimised_rules() {
        use ld_core::ranked::DelegationRule;
        let profile = RankedProfile::new(vec![
            RankedBallot::Ranked(vec![1, 3]),
            RankedBallot::Ranked(vec![0, 3]),
            RankedBallot::Ranked(vec![1]),
            RankedBallot::Cast,
        ])
        .unwrap();
        let report = ranked_brute_force(&profile).unwrap();
        let sel = DelegationRule::MinSum.select(&profile).unwrap();
        assert_eq!(sel.rank_sum(), report.min_rank_sum);
        assert!(sel.exhausted().is_empty());
        for v in 0..profile.n() {
            assert!(report.attainable[v]);
        }
    }

    #[test]
    fn ranked_oracle_declines_large_electorates() {
        let ballots = vec![RankedBallot::Cast; RANKED_BRUTE_MAX_N + 1];
        let profile = RankedProfile::new(ballots).unwrap();
        assert!(ranked_brute_force(&profile).is_none());
    }

    #[test]
    fn recursive_resolver_handles_chains_and_abstention() {
        // 0 -> 1 -> 2 (votes), 3 -> 4 (abstains), 5 self-delegates.
        let actions = vec![
            Action::Delegate(1),
            Action::Delegate(2),
            Action::Vote,
            Action::Delegate(4),
            Action::Abstain,
            Action::Delegate(5),
        ];
        let OracleOutcome::Resolved(r) = resolve_recursive(&actions) else {
            panic!("expected resolution");
        };
        assert_eq!(
            r.sink_of,
            vec![Some(2), Some(2), Some(2), None, None, Some(5)]
        );
        assert_eq!(r.weight, vec![0, 0, 3, 0, 0, 1]);
        assert_eq!(r.discarded, 2);
        assert_eq!(r.longest_chain, 2);
    }

    #[test]
    fn recursive_resolver_rejects_in_validation_order() {
        let cyclic = vec![Action::Delegate(1), Action::Delegate(0)];
        assert_eq!(resolve_recursive(&cyclic), OracleOutcome::Cycle);
        let out_of_range = vec![Action::Vote, Action::Delegate(9)];
        assert_eq!(
            resolve_recursive(&out_of_range),
            OracleOutcome::TargetOutOfRange {
                voter: 1,
                target: 9
            }
        );
        // Multi-target wins over a later range error, as in the resolver.
        let multi = vec![Action::DelegateMany(vec![1]), Action::Delegate(9)];
        assert_eq!(resolve_recursive(&multi), OracleOutcome::MultiTarget);
    }

    #[test]
    fn brute_force_majority_matches_hand_computation() {
        // Two unit sinks at p = 0.5: win 0.25, tie 0.5.
        let terms = [(1usize, 0.5), (1usize, 0.5)];
        let strict = brute_force_majority(&terms, 2, 0.0).unwrap();
        assert!((strict - 0.25).abs() < 1e-12);
        let coin = brute_force_majority(&terms, 2, 0.5).unwrap();
        assert!((coin - 0.5).abs() < 1e-12);
        assert!(brute_force_majority(&vec![(1, 0.5); 21], 21, 0.0).is_none());
    }

    #[test]
    fn coin_brute_force_matches_sink_brute_force_on_single_target_graphs() {
        // 0 -> 2, 1 votes, 2 votes, 3 abstains: sinks {1: w1, 2: w2}.
        let actions = vec![
            Action::Delegate(2),
            Action::Vote,
            Action::Vote,
            Action::Abstain,
        ];
        let ps = vec![0.3, 0.6, 0.8, 0.5];
        let by_coins = brute_force_decision_by_coins(&actions, &ps).unwrap();
        let by_sinks = brute_force_majority(&[(1, 0.6), (2, 0.8)], 3, 0.0).unwrap();
        assert!(
            (by_coins - by_sinks).abs() < 1e-12,
            "{by_coins} vs {by_sinks}"
        );
    }

    #[test]
    fn coin_brute_force_handles_multi_target_ties() {
        // Voter 0 delegates to both 1 and 2; a 1-1 split falls back to 0's
        // own coin. p1 = 1, p2 = 0 forces the split, so the electorate is
        // (b0, correct, incorrect): majority correct iff b0 with 2-1.
        let actions = vec![Action::DelegateMany(vec![1, 2]), Action::Vote, Action::Vote];
        let ps = vec![0.7, 1.0, 0.0];
        let p = brute_force_decision_by_coins(&actions, &ps).unwrap();
        assert!((p - 0.7).abs() < 1e-12, "{p}");
    }

    #[test]
    fn simulation_estimator_converges_with_small_error() {
        use rand::SeedableRng;
        let terms = [(1usize, 0.7), (2usize, 0.6), (1usize, 0.4)];
        let exact = brute_force_majority(&terms, 4, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let est = simulate_majority(&terms, 4, 0.5, 4000, &mut rng);
        assert!(
            (est.estimate - exact).abs() <= 5.0 * est.std_error + 1e-9,
            "estimate {} vs exact {} (se {})",
            est.estimate,
            exact,
            est.std_error
        );
    }
}
