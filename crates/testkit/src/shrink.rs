//! Greedy structural shrinking of failing instances.
//!
//! When a structural check fails, the shrinker searches for a smaller
//! `(actions, competencies)` pair that still fails the same check:
//! removing voters one at a time (remapping delegation targets) and
//! simplifying individual actions to direct votes, iterated to a fixed
//! point. The result is the minimal instance attached to the mismatch
//! report — usually a handful of voters instead of a full grid cell.

use crate::checks::{recheck_structural, CheckContext, CheckId, CheckOutcome};
use ld_core::delegation::Action;

/// A shrunk failing instance together with the failure detail observed
/// on it.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// Minimal failing actions.
    pub actions: Vec<Action>,
    /// Matching competency vector.
    pub ps: Vec<f64>,
    /// The check's diagnostic on the minimal instance.
    pub detail: String,
}

/// Removes voter `v`, remapping every target `t > v` to `t - 1`.
/// Delegations *to* `v` become direct votes; multi-delegations drop `v`
/// from their target list (and become votes when the list empties).
fn remove_voter(actions: &[Action], ps: &[f64], v: usize) -> (Vec<Action>, Vec<f64>) {
    let remap = |t: usize| if t > v { t - 1 } else { t };
    let mut out = Vec::with_capacity(actions.len() - 1);
    for (i, a) in actions.iter().enumerate() {
        if i == v {
            continue;
        }
        out.push(match a {
            Action::Vote => Action::Vote,
            Action::Abstain => Action::Abstain,
            Action::Delegate(t) if *t == v => Action::Vote,
            Action::Delegate(t) => Action::Delegate(remap(*t)),
            Action::DelegateMany(ts) => {
                let kept: Vec<usize> = ts.iter().filter(|&&t| t != v).map(|&t| remap(t)).collect();
                if kept.is_empty() {
                    Action::Vote
                } else {
                    Action::DelegateMany(kept)
                }
            }
            // Future variants are kept as-is; shrinking may then stall
            // early, which only costs minimality, not soundness.
            other => other.clone(),
        });
    }
    let mut ps_out = ps.to_vec();
    if v < ps_out.len() {
        ps_out.remove(v);
    }
    (out, ps_out)
}

/// Upper bound on shrink fixed-point iterations, a safety valve against
/// oscillating checks (which would themselves be determinism bugs).
const MAX_PASSES: usize = 24;

/// Greedily shrinks a failing `(actions, ps)` pair for `check`,
/// returning the smallest still-failing instance found. Returns `None`
/// if the check is not shrinkable or the original input no longer fails
/// (a flaky check — worth surfacing unshrunk).
pub fn shrink_failure(
    check: CheckId,
    actions: &[Action],
    ps: &[f64],
    seed: u64,
    ctx: &CheckContext,
) -> Option<Shrunk> {
    if !check.shrinkable() {
        return None;
    }
    let CheckOutcome::Fail(mut detail) = recheck_structural(check, actions, ps, seed, ctx) else {
        return None;
    };
    let mut cur_actions = actions.to_vec();
    let mut cur_ps = ps.to_vec();
    let mut changed = true;
    let mut passes = 0;
    while changed && passes < MAX_PASSES {
        changed = false;
        passes += 1;
        // Try removing voters, highest index first so earlier candidate
        // indices stay valid after a successful removal.
        let mut v = cur_actions.len();
        while v > 0 {
            v -= 1;
            if cur_actions.len() <= 1 {
                break;
            }
            let (next_actions, next_ps) = remove_voter(&cur_actions, &cur_ps, v);
            if let CheckOutcome::Fail(d) =
                recheck_structural(check, &next_actions, &next_ps, seed, ctx)
            {
                cur_actions = next_actions;
                cur_ps = next_ps;
                detail = d;
                changed = true;
            }
        }
        // Try removing adjacent pairs: parity-sensitive failures (e.g. a
        // wrong tie-break credit, visible only for even tallies) survive
        // no single removal but shrink two voters at a time.
        let mut v = cur_actions.len();
        while v > 1 {
            v -= 1;
            if cur_actions.len() <= 2 || v >= cur_actions.len() {
                continue;
            }
            let (mid_actions, mid_ps) = remove_voter(&cur_actions, &cur_ps, v);
            let (next_actions, next_ps) = remove_voter(&mid_actions, &mid_ps, v - 1);
            if let CheckOutcome::Fail(d) =
                recheck_structural(check, &next_actions, &next_ps, seed, ctx)
            {
                cur_actions = next_actions;
                cur_ps = next_ps;
                detail = d;
                changed = true;
            }
        }
        // Try simplifying each remaining action to a direct vote.
        for i in 0..cur_actions.len() {
            if matches!(cur_actions[i], Action::Vote) {
                continue;
            }
            let mut next_actions = cur_actions.clone();
            next_actions[i] = Action::Vote;
            if let CheckOutcome::Fail(d) =
                recheck_structural(check, &next_actions, &cur_ps, seed, ctx)
            {
                cur_actions = next_actions;
                detail = d;
                changed = true;
            }
        }
    }
    Some(Shrunk {
        actions: cur_actions,
        ps: cur_ps,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::{
        CoinsImpl, CsrImpl, DynamicsImpl, RankedImpl, ServeImpl, TallyImpl, WalImpl,
    };

    #[test]
    fn remove_voter_remaps_targets() {
        let actions = vec![
            Action::Delegate(2),
            Action::Vote,
            Action::Vote,
            Action::DelegateMany(vec![1, 2]),
        ];
        let ps = vec![0.1, 0.2, 0.3, 0.4];
        let (out, ps_out) = remove_voter(&actions, &ps, 1);
        assert_eq!(
            out,
            vec![
                Action::Delegate(1),
                Action::Vote,
                Action::DelegateMany(vec![1]),
            ]
        );
        assert_eq!(ps_out, vec![0.1, 0.3, 0.4]);
        // Delegations to the removed voter become direct votes.
        let (out2, _) = remove_voter(&[Action::Delegate(1), Action::Vote], &[0.5, 0.5], 1);
        assert_eq!(out2, vec![Action::Vote]);
    }

    #[test]
    fn shrinking_a_mutated_tally_failure_reaches_a_tiny_instance() {
        // A 10-voter even electorate at p = 0.5 fails tally-oracle under
        // the tie-flip mutant; the shrinker should cut it down to two
        // voters (the smallest even electorate with tie mass).
        let actions = vec![Action::Vote; 10];
        let ps = vec![0.5; 10];
        let ctx = CheckContext {
            tally: TallyImpl::TieFlipped,
            csr: CsrImpl::Real,
            wal: WalImpl::Real,
            serve: ServeImpl::Real,
            coins: CoinsImpl::Real,
            dynamics: DynamicsImpl::Real,
            ranked: RankedImpl::Real,
        };
        let shrunk = shrink_failure(CheckId::TallyOracle, &actions, &ps, 1, &ctx)
            .expect("failure should shrink");
        assert_eq!(shrunk.actions.len(), 2, "shrunk to {:?}", shrunk.actions);
        assert!(shrunk.actions.iter().all(|a| *a == Action::Vote));
    }

    #[test]
    fn passing_input_does_not_shrink() {
        let ctx = CheckContext {
            tally: TallyImpl::Real,
            csr: CsrImpl::Real,
            wal: WalImpl::Real,
            serve: ServeImpl::Real,
            coins: CoinsImpl::Real,
            dynamics: DynamicsImpl::Real,
            ranked: RankedImpl::Real,
        };
        assert!(shrink_failure(CheckId::TallyOracle, &[Action::Vote], &[0.5], 1, &ctx).is_none());
    }
}
