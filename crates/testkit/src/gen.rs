//! Seeded structured instance generation over the conformance grid.
//!
//! A [`CellSpec`] names one cell of the grid: a topology family, a
//! competency profile, a delegation mechanism, and an electorate size.
//! Each cell derives its own seed from the master seed and its stable
//! string id, so adding or filtering cells never perturbs the instances
//! generated for the others.

use ld_core::delegation::{Action, DelegationGraph};
use ld_core::mechanisms::{
    Abstaining, ApprovalThreshold, DirectVoting, GreedyMax, Mechanism, MinDegreeFraction,
    ProbabilisticDelegation, SampledThreshold, WeightCapped, WeightedMajorityDelegation,
};
use ld_core::ranked::{RankedBallot, MAX_RANKS};
use ld_core::{CompetencyProfile, ProblemInstance};
use ld_graph::{generators, Graph};
use ld_prob::rng::{split_seed, stream_rng};
use rand::rngs::StdRng;
use rand::Rng;

/// Approval margin used for every generated instance. Strictly positive,
/// as the paper requires (it is what forbids mutual approval and hence
/// delegation cycles).
pub const ALPHA: f64 = 0.05;

/// Topology families swept by the conformance grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Complete graph `K_n`.
    Complete,
    /// Star with center `0`.
    Star,
    /// Cycle `C_n`.
    Cycle,
    /// Random `d`-regular graph.
    Regular(usize),
    /// Erdős–Rényi `G(n, p)`.
    ErdosRenyi(f64),
}

impl Topology {
    /// Stable identifier used in cell ids and seed derivation.
    pub fn id(&self) -> String {
        match self {
            Topology::Complete => "complete".to_string(),
            Topology::Star => "star".to_string(),
            Topology::Cycle => "cycle".to_string(),
            Topology::Regular(d) => format!("regular{d}"),
            Topology::ErdosRenyi(p) => format!("er{:02}", (p * 100.0).round() as u32),
        }
    }

    /// Builds the graph on `n` vertices.
    fn build(&self, n: usize, rng: &mut StdRng) -> Result<Graph, String> {
        match *self {
            Topology::Complete => Ok(generators::complete(n)),
            Topology::Star => Ok(generators::star(n)),
            Topology::Cycle => Ok(generators::cycle(n)),
            Topology::Regular(d) => {
                generators::random_regular(n, d, rng).map_err(|e| e.to_string())
            }
            Topology::ErdosRenyi(p) => {
                generators::erdos_renyi_gnp(n, p, rng).map_err(|e| e.to_string())
            }
        }
    }
}

/// Competency profile families swept by the conformance grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Profile {
    /// Linearly spaced competencies in `[lo, hi]`.
    Linear(f64, f64),
    /// Everyone shares competency `p`.
    Constant(f64),
    /// A low mass at `1/3` with `max(1, n/8)` experts at `2/3`.
    TwoPoint,
}

impl Profile {
    /// Stable identifier used in cell ids and seed derivation.
    pub fn id(&self) -> String {
        match self {
            Profile::Linear(..) => "linear".to_string(),
            Profile::Constant(p) => format!("constant{:02}", (p * 100.0).round() as u32),
            Profile::TwoPoint => "twopoint".to_string(),
        }
    }

    /// Builds the profile for `n` voters.
    fn build(&self, n: usize) -> Result<CompetencyProfile, String> {
        match *self {
            Profile::Linear(lo, hi) => {
                CompetencyProfile::linear(n, lo, hi).map_err(|e| e.to_string())
            }
            Profile::Constant(p) => CompetencyProfile::constant(n, p).map_err(|e| e.to_string()),
            Profile::TwoPoint => {
                let high = (n / 8).max(1).min(n);
                CompetencyProfile::two_point(n - high, 1.0 / 3.0, high, 2.0 / 3.0)
                    .map_err(|e| e.to_string())
            }
        }
    }
}

/// Delegation mechanisms swept by the conformance grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MechanismKind {
    /// Everyone votes directly.
    Direct,
    /// Algorithm 1: delegate when `|J(i)| ≥ j`.
    Approval(usize),
    /// Minimum-degree-fraction threshold (`|J(i)| ≥ deg/4`).
    Quarter,
    /// Delegate to the most competent approved neighbour.
    Greedy,
    /// Algorithm 2: sample `d` voters, delegate when `≥ j` approved.
    Sampled(usize, usize),
    /// Delegate with probability `q` when the approval set is non-empty.
    Probabilistic(f64),
    /// Abstain with probability `q`, otherwise Algorithm 1 with `j = 1`.
    Abstain(f64),
    /// Weighted majority vote over up to `k` approved delegates
    /// (produces [`ld_core::delegation::Action::DelegateMany`]).
    Weighted(usize),
    /// Algorithm 1 with sink weights capped at `w`.
    Capped(usize),
}

impl MechanismKind {
    /// Stable identifier used in cell ids and seed derivation.
    pub fn id(&self) -> String {
        match self {
            MechanismKind::Direct => "direct".to_string(),
            MechanismKind::Approval(j) => format!("approval{j}"),
            MechanismKind::Quarter => "quarter".to_string(),
            MechanismKind::Greedy => "greedy".to_string(),
            MechanismKind::Sampled(d, j) => format!("sampled{d}-{j}"),
            MechanismKind::Probabilistic(q) => {
                format!("prob{:02}", (q * 100.0).round() as u32)
            }
            MechanismKind::Abstain(q) => format!("abstain{:02}", (q * 100.0).round() as u32),
            MechanismKind::Weighted(k) => format!("weighted{k}"),
            MechanismKind::Capped(w) => format!("capped{w}"),
        }
    }

    /// Builds the boxed mechanism.
    pub fn build(&self) -> Result<Box<dyn Mechanism>, String> {
        Ok(match *self {
            MechanismKind::Direct => Box::new(DirectVoting),
            MechanismKind::Approval(j) => Box::new(ApprovalThreshold::new(j)),
            MechanismKind::Quarter => Box::new(MinDegreeFraction::quarter()),
            MechanismKind::Greedy => Box::new(GreedyMax),
            MechanismKind::Sampled(d, j) => Box::new(SampledThreshold::from_graph(d, j)),
            MechanismKind::Probabilistic(q) => Box::new(ProbabilisticDelegation::new(q)),
            MechanismKind::Abstain(q) => Box::new(Abstaining::new(ApprovalThreshold::new(1), q)),
            MechanismKind::Weighted(k) => {
                Box::new(WeightedMajorityDelegation::try_new(k, 1).map_err(|e| e.to_string())?)
            }
            MechanismKind::Capped(w) => Box::new(
                WeightCapped::try_new(ApprovalThreshold::new(1), w).map_err(|e| e.to_string())?,
            ),
        })
    }
}

/// One cell of the conformance grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Topology family.
    pub topology: Topology,
    /// Competency profile family.
    pub profile: Profile,
    /// Delegation mechanism.
    pub mechanism: MechanismKind,
    /// Electorate size.
    pub n: usize,
}

impl CellSpec {
    /// Stable cell identifier, e.g. `complete/linear/approval1/n16`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/n{}",
            self.topology.id(),
            self.profile.id(),
            self.mechanism.id(),
            self.n
        )
    }

    /// The cell's own seed, derived from the master seed and the cell id
    /// so that it is independent of the grid's composition.
    pub fn cell_seed(&self, master: u64) -> u64 {
        split_seed(master, fnv1a(&self.id()))
    }

    /// Generates the cell's instance and runs its mechanism, fully
    /// determined by `master`.
    pub fn build(&self, master: u64) -> Result<Case, String> {
        let seed = self.cell_seed(master);
        let mut graph_rng = stream_rng(seed, 0);
        let graph = self.topology.build(self.n, &mut graph_rng)?;
        let profile = self.profile.build(self.n)?;
        let instance = ProblemInstance::new(graph, profile, ALPHA).map_err(|e| e.to_string())?;
        let mechanism = self.mechanism.build()?;
        let mut act_rng = stream_rng(seed, 1);
        let dg = mechanism.run(&instance, &mut act_rng);
        Ok(Case {
            spec: *self,
            seed,
            instance,
            dg,
            mechanism,
        })
    }
}

/// A fully generated conformance case: the instance, the delegation graph
/// the mechanism produced on it, and the cell's derived seed.
pub struct Case {
    /// The grid cell this case instantiates.
    pub spec: CellSpec,
    /// Seed derived from the master seed and the cell id.
    pub seed: u64,
    /// The generated problem instance.
    pub instance: ProblemInstance,
    /// The delegation graph produced by the mechanism.
    pub dg: DelegationGraph,
    /// The mechanism itself (for locality probes).
    pub mechanism: Box<dyn Mechanism>,
}

/// The default conformance grid: topology × profile × mechanism × size.
///
/// `quick` restricts to the two smallest sizes for the CI gate; the full
/// grid adds an odd size (tie-free tallies) and a larger even one.
pub fn default_grid(quick: bool) -> Vec<CellSpec> {
    let topologies = [
        Topology::Complete,
        Topology::Star,
        Topology::Cycle,
        Topology::Regular(4),
        Topology::ErdosRenyi(0.3),
    ];
    let profiles = [
        Profile::Linear(0.2, 0.8),
        Profile::Constant(0.5),
        Profile::TwoPoint,
    ];
    let mechanisms = [
        MechanismKind::Direct,
        MechanismKind::Approval(1),
        MechanismKind::Quarter,
        MechanismKind::Greedy,
        MechanismKind::Sampled(6, 2),
        MechanismKind::Probabilistic(0.5),
        MechanismKind::Abstain(0.3),
        MechanismKind::Weighted(2),
        MechanismKind::Capped(3),
    ];
    let sizes: &[usize] = if quick { &[8, 16] } else { &[8, 16, 33, 64] };
    let mut grid = Vec::new();
    for &topology in &topologies {
        for &profile in &profiles {
            for &mechanism in &mechanisms {
                for &n in sizes {
                    grid.push(CellSpec {
                        topology,
                        profile,
                        mechanism,
                        n,
                    });
                }
            }
        }
    }
    grid
}

/// Salt separating the ranked-ballot derivation stream from the graph
/// (`stream 0`) and mechanism (`stream 1`) streams of a cell seed.
const RANKED_BALLOT_SALT: u64 = 0x7A4E_4B3D_0000_0000;

/// Derives a ranked ballot vector from a generated single-edge action
/// vector — a pure function of `(actions, seed)`, so the shrinker can
/// re-derive it after every structural shrink step.
///
/// Per voter: `Vote` becomes `Cast`, `Abstain` stays `Abstain`, a
/// `Delegate` edge seeds a preference list (usually rank 1, sometimes
/// deliberately dropped so cycles and exhaustion can arise) padded with
/// seeded extra candidates, and `DelegateMany` reads its target list as
/// a preference order directly. Each voter draws from its own
/// `split_seed` stream, so one voter's ballot never depends on another
/// voter's index.
pub fn ranked_ballots(actions: &[Action], seed: u64) -> Vec<RankedBallot> {
    let n = actions.len();
    actions
        .iter()
        .enumerate()
        .map(|(v, a)| {
            let mut rng = stream_rng(split_seed(seed, RANKED_BALLOT_SALT ^ v as u64), 0);
            match a {
                Action::Abstain => RankedBallot::Abstain,
                Action::Delegate(t) => {
                    // One derived profile in eight abandons the
                    // mechanism's edge entirely: only then can ranked
                    // cycles, rank-2 fallbacks, and exhausted lists
                    // arise, since mechanism graphs always terminate.
                    let keep_original = rng.gen_range(0..8u8) != 0;
                    let mut list = Vec::new();
                    if keep_original {
                        list.push(*t);
                    }
                    let extras = rng.gen_range(0..MAX_RANKS);
                    for _ in 0..extras {
                        let cand = rng.gen_range(0..n);
                        if !list.contains(&cand) && list.len() < MAX_RANKS {
                            list.push(cand);
                        }
                    }
                    if list.is_empty() {
                        list.push(*t);
                    }
                    RankedBallot::Ranked(list)
                }
                Action::DelegateMany(ts) => {
                    let mut list = Vec::new();
                    for &t in ts {
                        if !list.contains(&t) && list.len() < MAX_RANKS {
                            list.push(t);
                        }
                    }
                    if list.is_empty() {
                        RankedBallot::Cast
                    } else {
                        RankedBallot::Ranked(list)
                    }
                }
                _ => RankedBallot::Cast,
            }
        })
        .collect()
}

/// FNV-1a hash of a cell id, used to derive per-cell seed streams.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_ids_are_unique_across_the_full_grid() {
        let grid = default_grid(false);
        let mut ids: Vec<String> = grid.iter().map(CellSpec::id).collect();
        let total = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), total, "duplicate cell ids in the grid");
        assert_eq!(total, 5 * 3 * 9 * 4);
    }

    #[test]
    fn quick_grid_is_a_subset_of_the_full_grid() {
        let full: Vec<String> = default_grid(false).iter().map(CellSpec::id).collect();
        for spec in default_grid(true) {
            assert!(
                full.contains(&spec.id()),
                "{} missing from full grid",
                spec.id()
            );
        }
    }

    #[test]
    fn cell_seed_depends_only_on_master_and_id() {
        let spec = CellSpec {
            topology: Topology::Complete,
            profile: Profile::Constant(0.5),
            mechanism: MechanismKind::Direct,
            n: 8,
        };
        assert_eq!(spec.cell_seed(1), spec.cell_seed(1));
        assert_ne!(spec.cell_seed(1), spec.cell_seed(2));
    }

    #[test]
    fn ranked_ballots_are_deterministic_valid_and_mixed() {
        let mut saw_multi = false;
        let mut saw_single = false;
        for spec in default_grid(true).into_iter().take(24) {
            let case = spec.build(42).expect("build");
            let a = ranked_ballots(case.dg.actions(), case.seed);
            let b = ranked_ballots(case.dg.actions(), case.seed);
            assert_eq!(a, b, "derivation not deterministic on {}", spec.id());
            for ballot in &a {
                if let RankedBallot::Ranked(list) = ballot {
                    saw_multi |= list.len() > 1;
                    saw_single |= list.len() == 1;
                }
            }
            ld_core::ranked::RankedProfile::new(a).expect("derived ballots must validate");
        }
        assert!(saw_multi && saw_single, "derivation lost its length mix");
    }

    #[test]
    fn build_is_deterministic() {
        for spec in default_grid(true).into_iter().take(12) {
            let a = spec.build(42).expect("build");
            let b = spec.build(42).expect("build");
            assert_eq!(a.dg, b.dg, "cell {} not deterministic", spec.id());
            assert_eq!(
                a.instance.profile().as_slice(),
                b.instance.profile().as_slice()
            );
        }
    }
}
