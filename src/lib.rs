//! # `liquid-democracy` — when is liquid democracy possible?
//!
//! A production-quality Rust implementation and experimental reproduction of
//! Chatterjee, Gilbert, Schmid, Svoboda and Yeo, *When is Liquid Democracy
//! Possible? On the Manipulation of Variance* (PODC 2025).
//!
//! Liquid democracy lets each voter either cast their ballot directly or
//! delegate it — transitively — to a neighbour in a social graph. The paper
//! asks when *local* delegation mechanisms beat direct voting, and answers:
//! on graph families without much structural degree asymmetry (complete,
//! random `d`-regular, bounded-degree, bounded-min-degree graphs), simple
//! local mechanisms achieve **strong positive gain** while **doing no
//! harm**, because those topologies preserve enough *variance* in the
//! voting outcome to avoid dictatorships.
//!
//! This facade crate re-exports the four workspace layers:
//!
//! * [`graph`] (`ld-graph`) — voter-network substrate: graph types,
//!   generators for every topology in the paper, structural properties.
//! * [`prob`] (`ld-prob`) — probability substrate: exact weighted
//!   Poisson-binomial tallies, `erf`/normal machinery, Chernoff/Hoeffding
//!   bounds, and the paper's novel *recycle sampling* model.
//! * [`core`] (`ld-core`) — the model itself: problem instances, graph
//!   restrictions, local delegation mechanisms (Algorithms 1 and 2, the
//!   min-degree rule, abstention and weighted-majority extensions),
//!   delegation-graph resolution, exact gain computation, and empirical
//!   verdicts for the paper's desiderata (DNH / PG / SPG).
//! * [`sim`] (`ld-sim`) — a deterministic parallel Monte Carlo engine plus
//!   one experiment per figure/lemma/theorem of the paper.
//!
//! # Quickstart
//!
//! ```
//! use liquid_democracy::core::{
//!     CompetencyProfile, ProblemInstance,
//!     mechanisms::{ApprovalThreshold, DirectVoting},
//!     gain::estimate_gain,
//! };
//! use liquid_democracy::graph::generators;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 64 voters on a complete graph, competencies spread around 1/2.
//! let graph = generators::complete(64);
//! let profile = CompetencyProfile::linear(64, 0.35, 0.65)?;
//! let instance = ProblemInstance::new(graph, profile, 0.05)?;
//!
//! // Algorithm 1 with threshold j(n) = 8, against direct voting.
//! let mechanism = ApprovalThreshold::new(8);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let gain = estimate_gain(&instance, &mechanism, 256, &mut rng)?;
//! println!("gain over direct voting: {:+.4}", gain.gain());
//! # let _ = DirectVoting;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use ld_core as core;
pub use ld_graph as graph;
pub use ld_prob as prob;
pub use ld_sim as sim;
