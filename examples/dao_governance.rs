//! DAO governance: liquid democracy on a scale-free delegation network.
//!
//! Blockchain DAOs are one of the paper's motivating deployments (§1),
//! and its discussion (§6) singles out Barabási–Albert graphs as the
//! model for checking whether real networks satisfy Lemma 5's max-weight
//! condition. This example simulates a token-holder community on a BA
//! network, compares a healthy uniform-delegation rule against the
//! power-concentrating greedy rule, and applies the weight cap that
//! on-chain governance systems can enforce mechanically.
//!
//! ```text
//! cargo run --release --example dao_governance
//! ```

use liquid_democracy::core::distributions::CompetencyDistribution;
use liquid_democracy::core::gain::estimate_gain;
use liquid_democracy::core::mechanisms::{ApprovalThreshold, GreedyMax, Mechanism, WeightCapped};
use liquid_democracy::core::ProblemInstance;
use liquid_democracy::graph::{generators, properties};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1000;
    let mut rng = StdRng::seed_from_u64(7);

    // A preferential-attachment "who follows whom" graph: a few
    // high-degree whales, a long tail of small holders.
    let graph = generators::barabasi_albert(n, 3, &mut rng)?;
    println!(
        "DAO network: {} members, {} edges, structural asymmetry Δ/δ = {:.1}",
        graph.n(),
        graph.m(),
        properties::structural_asymmetry(&graph)
    );

    // Members are informed to varying degrees about the proposal; nobody
    // is clueless or omniscient (bounded competency — Lemma 3's regime).
    let profile = CompetencyDistribution::Uniform { lo: 0.35, hi: 0.65 }.sample(n, &mut rng)?;
    let instance = ProblemInstance::new(graph, profile, 0.05)?;
    println!(
        "P[direct vote passes correctly] = {:.4}\n",
        instance.direct_voting_probability()?
    );

    let cap = (n as f64).sqrt() as usize;
    let mechanisms: Vec<Box<dyn Mechanism + Sync>> = vec![
        Box::new(ApprovalThreshold::new(1)),
        Box::new(GreedyMax),
        Box::new(WeightCapped::new(GreedyMax, cap)),
    ];

    println!(
        "{:<42} {:>9} {:>12} {:>13}",
        "mechanism", "gain", "max weight", "delegators"
    );
    for mech in &mechanisms {
        let est = estimate_gain(&instance, mech.as_ref(), 64, &mut rng)?;
        println!(
            "{:<42} {:>+9.4} {:>12.1} {:>13.1}",
            mech.name(),
            est.gain(),
            est.mean_max_weight(),
            est.mean_delegators()
        );
    }

    println!(
        "\nLemma 5 comfort zone: max sink weight ≲ √n = {cap}. Mechanisms that keep \
         weights below it cannot asymptotically harm the DAO; unbounded \
         concentration (the greedy whale-following rule) risks the Figure 1 failure."
    );
    Ok(())
}
