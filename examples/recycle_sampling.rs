//! Recycle sampling: the paper's novel dependent-variable model, stand
//! alone.
//!
//! Section 3.1 introduces *recycle sampling* to capture what delegation
//! does to vote outcomes: a delegator's vote literally **becomes** a copy
//! of another voter's realized vote, creating positive correlation that
//! classical (negative-dependence) Chernoff extensions cannot handle.
//! Lemma 2 shows the sum still concentrates, losing only `c·ε·n / j^{1/3}`
//! to the dependence.
//!
//! This example builds the block-structured graphs delegation induces,
//! compares exact expectation/variance against simulation, and prints the
//! Lemma 2 ledger.
//!
//! ```text
//! cargo run --release --example recycle_sampling
//! ```

use liquid_democracy::prob::recycle::RecycleGraph;
use liquid_democracy::prob::stats::Welford;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1500;
    let j = 125; // fresh variables; Lemma 2's probability is 1 - e^{-Ω(j^{1/3})}
    let blocks = 5; // partition complexity c (≈ 1/α competency bands)
    let mut rng = StdRng::seed_from_u64(13);

    // Competencies rise block by block, like delegation toward better
    // voters; everyone recycles with probability 0.8.
    let sizes: Vec<usize> = {
        let mut s = vec![j];
        let per = (n - j) / blocks;
        s.extend(std::iter::repeat_n(per, blocks - 1));
        s.push(n - j - per * (blocks - 1));
        s
    };
    let total: usize = sizes.iter().sum();
    let ps: Vec<f64> = (0..total)
        .map(|i| 0.40 + 0.2 * i as f64 / total as f64)
        .collect();
    let graph = RecycleGraph::blocked(&sizes, &ps, 0.2)?;

    println!("(j, c, n)-recycle-sampling graph:");
    println!(
        "  n = {}, j = {}, partition complexity c = {}",
        graph.n(),
        graph.j(),
        graph.partition_complexity()
    );

    // Exact moments from the DPs — the paper only ever *bounds* these.
    let mu = graph.expected_sum();
    let var = graph.exact_variance().expect("n within the exact-DP limit");
    println!("\nexact E[X_n]  = {mu:.3}");
    println!("exact Var[X_n] = {var:.3}  (σ = {:.3})", var.sqrt());
    let indep_var: f64 = graph.expectations().iter().map(|e| e * (1.0 - e)).sum();
    println!(
        "independent-case variance would be {indep_var:.3} — recycling inflates it ×{:.2}",
        var / indep_var
    );

    // Simulate and compare.
    let mut sums = Welford::new();
    let trials = 20_000;
    for _ in 0..trials {
        sums.push(graph.realize(&mut rng).sum() as f64);
    }
    println!("\nsimulated over {trials} realizations:");
    println!("  mean {:.3} (exact {mu:.3})", sums.mean());
    println!("  var  {:.3} (exact {var:.3})", sums.sample_variance());

    // Lemma 2's ledger: shortfall vs the allowance c·ε·n / j^{1/3}.
    let epsilon = 0.5;
    let allowance =
        graph.partition_complexity() as f64 * epsilon * n as f64 / (j as f64).powf(1.0 / 3.0);
    let mut exceed = 0usize;
    for _ in 0..trials {
        let x = graph.realize(&mut rng).sum() as f64;
        if mu - x > allowance {
            exceed += 1;
        }
    }
    println!("\nLemma 2 check (ε = {epsilon}):");
    println!("  allowance c·ε·n/j^(1/3) = {allowance:.1}");
    println!(
        "  observed 3σ shortfall ≈ {:.1} — far inside the allowance",
        3.0 * var.sqrt()
    );
    println!("  P[X_n < μ − allowance] = {}/{trials}", exceed);
    Ok(())
}
