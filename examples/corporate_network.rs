//! Corporate voting: liquid democracy under bounded connectivity.
//!
//! The paper motivates local mechanisms with "corporate or social network
//! settings where voters might be unwilling to delegate to users that are
//! unfamiliar to them a priori" (§1.1). This example models an
//! organisation where each employee knows only a bounded number of
//! colleagues (Δ ≤ k — Theorem 4's class) and where everyone knows at
//! least a working group (δ ≥ k — Theorem 5's class), and shows both
//! theorems' mechanisms earning their strong positive gain.
//!
//! ```text
//! cargo run --release --example corporate_network
//! ```

use liquid_democracy::core::distributions::CompetencyDistribution;
use liquid_democracy::core::gain::estimate_gain;
use liquid_democracy::core::mechanisms::{ApprovalThreshold, MinDegreeFraction};
use liquid_democracy::core::{ProblemInstance, Restriction};
use liquid_democracy::graph::{generators, properties};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 600;
    let mut rng = StdRng::seed_from_u64(11);

    // Competencies hover just below a coin flip: the org gets hard
    // questions wrong slightly more often than right (PC = a).
    let dist = CompetencyDistribution::AroundHalf {
        a: 0.05,
        spread: 0.15,
    };

    // --- Theorem 4's world: bounded maximum degree -----------------------
    let cap = 20;
    let bounded = generators::random_bounded_degree(n, cap, n * cap / 4, &mut rng)?;
    let inst_bounded = ProblemInstance::new(bounded, dist.sample(n, &mut rng)?, 0.1)?;
    assert!(Restriction::MaxDegree { k: cap }.check(&inst_bounded));
    let est = estimate_gain(&inst_bounded, &ApprovalThreshold::new(1), 64, &mut rng)?;
    println!("Δ ≤ {cap} org chart ({} employees):", n);
    println!("  P[direct] = {:.4}", est.p_direct());
    println!(
        "  P[delegation] = {:.4}  → gain {:+.4}",
        est.p_mechanism(),
        est.gain()
    );
    println!(
        "  max weight {:.1} (Δ bounds any sink's reach), longest chain {:.1}\n",
        est.mean_max_weight(),
        est.mean_longest_chain()
    );

    // --- Theorem 5's world: bounded minimum degree -----------------------
    let floor = (n as f64).sqrt() as usize;
    let min_deg = generators::random_min_degree(n, floor, &mut rng)?;
    println!(
        "δ ≥ {floor} working-group graph (average degree {:.1}):",
        properties::average_degree(&min_deg)
    );
    let inst_min = ProblemInstance::new(min_deg, dist.sample(n, &mut rng)?, 0.1)?;
    assert!(Restriction::MinDegree { k: floor }.check(&inst_min));
    let est = estimate_gain(&inst_min, &MinDegreeFraction::quarter(), 64, &mut rng)?;
    println!("  P[direct] = {:.4}", est.p_direct());
    println!(
        "  P[delegation] = {:.4}  → gain {:+.4}",
        est.p_mechanism(),
        est.gain()
    );
    println!(
        "  quarter rule: delegate iff ≥ 1/4 of colleagues are approved \
         ({:.0} of {} employees delegated)",
        est.mean_delegators(),
        n
    );

    println!(
        "\nBoth topologies avoid structural degree asymmetry, which is exactly \
         the paper's criterion for liquid democracy being possible."
    );
    Ok(())
}
