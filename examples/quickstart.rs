//! Quickstart: build an instance, run a delegation mechanism, measure its
//! gain over direct voting.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use liquid_democracy::core::gain::estimate_gain;
use liquid_democracy::core::mechanisms::{ApprovalThreshold, DirectVoting, Mechanism};
use liquid_democracy::core::{CompetencyProfile, ProblemInstance, Restriction};
use liquid_democracy::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A social network: 200 voters who all know each other (K_n).
    let n = 200;
    let graph = generators::complete(n);

    // 2. Competencies: evenly spread around (slightly below) a coin flip.
    //    The paper calls this "plausible changeability" — the electorate
    //    is wrong often enough that delegation has room to help.
    let profile = CompetencyProfile::linear(n, 0.30, 0.68)?;
    let instance = ProblemInstance::new(graph, profile, 0.05)?;
    assert!(Restriction::Complete.check(&instance));
    println!("mean competency: {:.3}", instance.profile().mean());
    println!(
        "P[direct voting correct] = {:.4}",
        instance.direct_voting_probability()?
    );

    // 3. The paper's Algorithm 1: delegate to a uniformly random approved
    //    neighbour whenever at least j(n) neighbours are approved.
    let mechanism = ApprovalThreshold::new(3);
    let mut rng = StdRng::seed_from_u64(42);

    // 4. One concrete delegation draw, to look at the structure.
    let delegation = mechanism.run(&instance, &mut rng);
    let resolution = delegation.resolve()?;
    println!(
        "\none draw of {}: {} voters delegate, {} sinks, max weight {}, longest chain {}",
        mechanism.name(),
        resolution.delegators(),
        resolution.sink_count(),
        resolution.max_weight(),
        resolution.longest_chain(),
    );

    // 5. The headline number: gain over direct voting, averaged over the
    //    mechanism's randomness with exact per-draw tallies.
    let est = estimate_gain(&instance, &mechanism, 200, &mut rng)?;
    let (lo, hi) = est.gain_ci(1.96);
    println!(
        "\ngain(M, G) = {:+.4}  (95% CI [{:+.4}, {:+.4}], {} draws)",
        est.gain(),
        lo,
        hi,
        est.trials()
    );

    // Direct voting is the identity baseline: gain exactly 0.
    let baseline = estimate_gain(&instance, &DirectVoting, 1, &mut rng)?;
    assert!(baseline.gain().abs() < 1e-12);
    println!(
        "gain(D, G) = {:+.4}  (sanity: direct voting vs itself)",
        baseline.gain()
    );
    Ok(())
}
