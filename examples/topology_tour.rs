//! Topology tour: the same electorate and mechanism on every graph family
//! the paper studies — and on the one it warns about.
//!
//! The punchline of the paper is that *graph topology decides* whether
//! liquid democracy is possible. The tour runs two regimes:
//!
//! * a **contested** electorate (mean competency below 1/2): direct voting
//!   fails, and delegation rescues the decision on every topology — even a
//!   dictatorship beats a coin-flipping crowd;
//! * a **competent** electorate (everyone above 1/2): direct voting is
//!   already near-perfect, so the only question is *harm* — and only the
//!   structurally asymmetric star harms, by collapsing the outcome onto
//!   one hub (Figure 1's lesson).
//!
//! ```text
//! cargo run --release --example topology_tour
//! ```

use liquid_democracy::core::gain::estimate_gain;
use liquid_democracy::core::mechanisms::ApprovalThreshold;
use liquid_democracy::core::{CompetencyProfile, ProblemInstance};
use liquid_democracy::graph::{generators, properties, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topologies(
    n: usize,
    rng: &mut StdRng,
) -> Result<Vec<(&'static str, Graph)>, Box<dyn std::error::Error>> {
    Ok(vec![
        ("complete K_n", generators::complete(n)),
        ("random 16-regular", generators::random_regular(n, 16, rng)?),
        (
            "bounded degree Δ ≤ 12",
            generators::random_bounded_degree(n, 12, n * 3, rng)?,
        ),
        (
            "min degree δ ≥ 20",
            generators::random_min_degree(n, 20, rng)?,
        ),
        (
            "Watts-Strogatz small world",
            generators::watts_strogatz(n, 16, 0.1, rng)?,
        ),
        (
            "Barabási-Albert scale-free",
            generators::barabasi_albert(n, 3, rng)?,
        ),
        ("star (Figure 1)", generators::star(n)),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 400;
    let mut rng = StdRng::seed_from_u64(3);
    let mechanism = ApprovalThreshold::new(1);

    let regimes: [(&str, CompetencyProfile); 2] = [
        (
            "contested electorate (mean < 1/2): delegation rescues every topology",
            CompetencyProfile::linear(n, 0.30, 0.66)?,
        ),
        (
            "competent electorate (all > 1/2): only the star harms",
            CompetencyProfile::linear(n, 0.52, 0.70)?,
        ),
    ];

    for (title, profile) in regimes {
        println!("— {title}\n");
        println!(
            "{:<28} {:>8} {:>10} {:>9} {:>12} {:>8}",
            "topology", "Δ/δ", "P[direct]", "gain", "max weight", "gini"
        );
        for (name, graph) in topologies(n, &mut rng)? {
            let asym = properties::structural_asymmetry(&graph);
            let instance = ProblemInstance::new(graph, profile.clone(), 0.05)?;
            let est = estimate_gain(&instance, &mechanism, 48, &mut rng)?;
            println!(
                "{:<28} {:>8.1} {:>10.4} {:>+9.4} {:>12.1} {:>8.3}",
                name,
                asym,
                est.p_direct(),
                est.gain(),
                est.mean_max_weight(),
                est.mean_weight_gini()
            );
        }
        println!();
    }

    println!(
        "Reading guide: in the contested regime delegation gains everywhere — the\n\
         theorems' SPG. In the competent regime the symmetric topologies do no harm\n\
         (gain ≈ 0) while the star's concentrated weight (gini → 1) drags the gain\n\
         negative: exactly the variance story the paper's title refers to."
    );
    Ok(())
}
